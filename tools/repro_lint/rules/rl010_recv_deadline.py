"""RL010 — blocking-recv discipline for the sharded dispatcher.

PR 9's fault-tolerance contract says ``ShardedEngine.run_batch`` can
never hang on a wedged worker: every blocking pipe wait on the gather
path flows through one supervised chokepoint that arms the per-scatter
deadline (``multiprocessing.connection.wait(conns, timeout)``) before
any ``recv``.  Nothing in the type system enforces that — a future
"quick fix" calling ``conn.recv()`` directly in the dispatch loop
compiles, passes the happy-path tests, and reintroduces the unbounded
hang the supervisor exists to prevent.

RL010 proves the discipline over the shared call graph, mirroring the
RL007 BFS-to-barrier pattern:

    every blocking wait — a ``.recv(...)`` call, or a ``.wait(...)``
    call with no timeout argument — reachable from
    ``ShardedEngine.run_batch`` must sit inside a *deadline barrier*.

A deadline barrier is the audited supervisor chokepoint
(``ShardedEngine._poll_workers``) or any function annotated
``# repro-lint: deadline-wait`` on/above its ``def`` after audit.
Traversal stops at barriers; a blocking wait reached without passing
one is reported with the full witness chain from ``run_batch``.

Worker-side ``recv`` calls are out of scope by construction: the worker
loop is a spawn *target*, not a callee of ``run_batch``, and its idle
``recv`` is supposed to block.  No-op for trees without a
``ShardedEngine.run_batch``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.repro_lint.callgraph import CallGraph, call_graph
from tools.repro_lint.core import Finding, Project, Rule, register_rule
from tools.repro_lint.symbols import FunctionInfo, SymbolTable, symbol_table

#: ``# repro-lint: deadline-wait`` on/above a ``def`` line: the function
#: is an audited deadline chokepoint — its waits are bounded by the
#: supervisor's timeout arithmetic.
DEADLINE_WAIT_RE = re.compile(r"#\s*repro-lint:\s*deadline-wait\b")

#: (class name, method name) chokepoints trusted without annotation,
#: matched by qualname suffix like RL007's CHARGING_METHODS.
DEADLINE_WAIT_METHODS = frozenset(
    {
        ("ShardedEngine", "_poll_workers"),
    }
)

#: The entry point whose reachable set must honor the discipline.
ENTRY_METHOD = ("ShardedEngine", "run_batch")


def _qualname_matches(qualname: str, pair: Tuple[str, str]) -> bool:
    parts = qualname.rsplit(".", 2)
    if len(parts) < 2:
        return False
    return (parts[-2], parts[-1]) == pair


def _has_timeout_argument(call: ast.Call) -> bool:
    """``wait(conns, 5.0)`` / ``wait(conns, timeout=...)`` are bounded."""
    if len(call.args) >= 2:
        return True
    return any(kw.arg == "timeout" for kw in call.keywords)


def _blocking_wait_lines(fn_node: ast.AST) -> List[Tuple[int, str]]:
    """(line, description) for every blocking-wait call in a function.

    ``.recv(...)`` blocks until the peer writes or dies — unbounded
    unless a deadline-armed ``wait`` proved readability first.  A
    ``.wait(...)`` with no timeout argument blocks outright.
    """
    out: List[Tuple[int, str]] = []
    for node in ast.walk(fn_node):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr == "recv":
            out.append((node.lineno, ".recv()"))
        elif node.func.attr == "wait" and not _has_timeout_argument(node):
            out.append((node.lineno, ".wait() without a timeout"))
    return sorted(out)


def _is_deadline_barrier(fn: FunctionInfo) -> bool:
    if any(_qualname_matches(fn.qualname, pair) for pair in DEADLINE_WAIT_METHODS):
        return True
    line = fn.node.lineno
    comment = fn.file.comment_in_range(max(1, line - 2), line)
    return bool(DEADLINE_WAIT_RE.search(comment))


@register_rule
class RecvDeadlineDiscipline(Rule):
    id = "RL010"
    name = "recv-deadline-discipline"
    severity = "error"
    description = (
        "every blocking pipe wait reachable from ShardedEngine.run_batch "
        "must flow through the supervised deadline chokepoint"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        table = symbol_table(project)
        entries = [
            fn
            for qualname, fn in table.functions.items()
            if _qualname_matches(qualname, ENTRY_METHOD)
        ]
        if not entries:
            return  # nothing to prove without the supervised entry point
        graph = call_graph(project)
        barriers = {
            qualname
            for qualname, fn in table.functions.items()
            if _is_deadline_barrier(fn)
        }

        # BFS from run_batch, stopping at deadline barriers; parent
        # pointers reconstruct the witness chain (the RL007 pattern).
        parent: Dict[str, Optional[str]] = {}
        queue: List[str] = []
        for fn in entries:
            if fn.qualname not in parent:
                parent[fn.qualname] = None
                queue.append(fn.qualname)
        while queue:
            current = queue.pop(0)
            if current in barriers:
                continue  # deadline-armed from here on down
            for callee in sorted(graph.callees(current)):
                if callee not in parent:
                    parent[callee] = current
                    queue.append(callee)

        reported: Set[str] = set()
        for qualname in sorted(parent):
            if qualname in barriers or qualname in reported:
                continue
            fn = table.functions.get(qualname)
            if fn is None:
                continue
            waits = _blocking_wait_lines(fn.node)
            if not waits:
                continue
            reported.add(qualname)
            chain: List[str] = []
            cursor: Optional[str] = qualname
            while cursor is not None:
                chain.append(cursor)
                cursor = parent[cursor]
            chain.reverse()
            line, what = waits[0]
            yield self.finding(
                fn.file,
                line,
                0,
                "unbounded blocking wait on the supervised gather path: "
                + " -> ".join(chain)
                + f" reaches {what} without flowing through the deadline "
                "chokepoint (ShardedEngine._poll_workers); route the wait "
                "through the supervisor or annotate an audited helper "
                "with `# repro-lint: deadline-wait`",
            )
