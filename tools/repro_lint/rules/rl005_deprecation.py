"""RL005 — deprecation firewall.

``ReachabilityEngine.s_query/m_query/r_query`` and
``QueryService.query/s_query/m_query/r_query`` are deprecated
compatibility shims kept alive for external callers.  Internal code in
``src/repro/`` must use ``Request``/``execute`` so the shims can be
removed without an archaeology pass.  This rule flags:

* any ``.s_query(`` / ``.m_query(`` / ``.r_query(`` attribute call in
  ``src/repro`` (the shim *definitions* are ``def`` statements, not
  calls, so they do not trip the rule), and
* ``.query(`` calls whose receiver looks like a service
  (a name containing ``service`` or an attribute named ``service``),
  which is the ``QueryService.query`` shim.

It also keeps ``__all__`` honest in modules that declare one:

* every name listed in ``__all__`` must be defined or imported at
  module top level, and
* every public (non-underscore) top-level ``def``/``class`` defined in
  the module must appear in ``__all__`` (imports are exempt — modules
  may re-export selectively).

The second check is a warning: it signals drift, not breakage.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from tools.repro_lint.core import (
    Finding,
    Project,
    Rule,
    SourceFile,
    enclosing_statement_line,
    register_rule,
)

SHIM_METHODS = frozenset({"s_query", "m_query", "r_query"})


def _in_src_repro(rel: str) -> bool:
    norm = "/" + rel.replace("\\", "/")
    return "/src/repro/" in norm or norm.startswith("/repro/")


def _servicey_receiver(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return "service" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "service" in node.attr.lower()
    return False


# Shared with the symbol table: one definition of "bound at top level".
from tools.repro_lint.symbols import top_level_names as _top_level_names


def _module_all(tree: ast.Module) -> Optional[ast.Assign]:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            return stmt
    return None


@register_rule
class DeprecationFirewall(Rule):
    id = "RL005"
    name = "deprecation-firewall"
    severity = "error"
    description = (
        "internal code must not call the deprecated s_query/m_query/r_query/"
        "QueryService.query shims; __all__ must match defined exports"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for src in project.iter_parsed():
            assert src.tree is not None
            yield from self._check_shim_calls(src)
            yield from self._check_all(src)

    def _check_shim_calls(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):  # type: ignore[arg-type]
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            if attr in SHIM_METHODS:
                yield self.finding(
                    src,
                    node.lineno,
                    node.col_offset,
                    f"call to deprecated shim .{attr}(); use a Request envelope "
                    "with execute()/submit() instead",
                    anchor=enclosing_statement_line(node),
                )
            elif attr == "query" and _servicey_receiver(node.func.value):
                yield self.finding(
                    src,
                    node.lineno,
                    node.col_offset,
                    "call to deprecated QueryService.query(); use "
                    "QueryService.execute(Request(...)) instead",
                    anchor=enclosing_statement_line(node),
                )

    def _check_all(self, src: SourceFile) -> Iterator[Finding]:
        tree = src.tree
        assert tree is not None
        all_assign = _module_all(tree)
        if all_assign is None:
            return
        value = all_assign.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            return
        exported: List[str] = [
            e.value for e in value.elts if isinstance(e, ast.Constant) and isinstance(e.value, str)
        ]
        defined = _top_level_names(tree)
        for name in exported:
            if name not in defined:
                yield self.finding(
                    src,
                    all_assign.lineno,
                    all_assign.col_offset,
                    f"__all__ exports {name!r}, which is not defined or "
                    "imported at module top level",
                )
        exported_set = set(exported)
        for stmt in tree.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                and not stmt.name.startswith("_")
                and stmt.name not in exported_set
            ):
                yield Finding(
                    rule=self.id,
                    severity="warning",
                    path=src.rel,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    message=(
                        f"public {'class' if isinstance(stmt, ast.ClassDef) else 'function'} "
                        f"{stmt.name!r} is not listed in __all__"
                    ),
                )
        seen: Set[str] = set()
        for name in exported:
            if name in seen:
                yield self.finding(
                    src,
                    all_assign.lineno,
                    all_assign.col_offset,
                    f"__all__ lists {name!r} more than once",
                )
            seen.add(name)
