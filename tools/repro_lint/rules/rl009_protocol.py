"""RL009 — serving protocol exhaustiveness.

The dispatcher/worker pipe protocol is a closed set of ``MSG_*`` string
constants in ``serving/protocol.py``.  Nothing type-checks a pickle
tuple, so drift here surfaces as a hang: a kind one side sends and the
other never handles sits in the pipe forever.  The rule statically
classifies each kind by who *sends* it (a ``.send((MSG_X, ...))`` call)
and then requires:

* every kind is sent by exactly one side (a kind nobody sends is dead
  protocol surface; a kind both sides send has no direction);
* every kind sent by the dispatcher is *handled* — compared against —
  in the worker, exactly once (the dispatch loop);
* every kind sent by the worker is handled in the dispatcher (the
  gather loop must distinguish ``ok`` from ``error`` from garbage);
* the worker has an unknown-kind fallback (a reply with ``MSG_ERROR``
  outside any ``except`` handler) and an error path (a reply with
  ``MSG_ERROR`` inside an ``except`` handler), so a malformed frame
  gets a clean error back instead of killing the worker loop.

No-op for trees without a ``serving/protocol.py`` defining ``MSG_*``
constants.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.repro_lint.core import (
    Finding,
    Project,
    Rule,
    SourceFile,
    ancestors,
    register_rule,
)


def _msg_constants(sf: SourceFile) -> Dict[str, Tuple[str, int]]:
    """MSG_* name -> (string value, line)."""
    out: Dict[str, Tuple[str, int]] = {}
    if sf.tree is None:
        return out
    for stmt in sf.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if (
                isinstance(target, ast.Name)
                and target.id.startswith("MSG_")
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                out[target.id] = (stmt.value.value, stmt.lineno)
    return out


def _msg_names_in(node: ast.AST, known: Set[str]) -> Set[str]:
    return {
        sub.id
        for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and sub.id in known
    }


def _send_sites(sf: SourceFile, known: Set[str]) -> List[Tuple[str, ast.Call]]:
    """(MSG name, call node) for `.send((MSG_X, ...))`-shaped calls."""
    out: List[Tuple[str, ast.Call]] = []
    if sf.tree is None:
        return out
    for node in ast.walk(sf.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "send"
            and node.args
        ):
            continue
        payload = node.args[0]
        if isinstance(payload, ast.Tuple) and payload.elts:
            head = payload.elts[0]
            if isinstance(head, ast.Name) and head.id in known:
                out.append((head.id, node))
    return out


def _handled_kinds(sf: SourceFile, known: Set[str]) -> Dict[str, int]:
    """MSG name -> number of comparison (handler) sites in the module."""
    counts: Dict[str, int] = {}
    if sf.tree is None:
        return counts
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Compare):
            names = _msg_names_in(node, known)
            for name in names:
                counts[name] = counts.get(name, 0) + 1
        elif isinstance(node, ast.Match):  # pragma: no cover - future-proof
            for case in node.cases:
                for name in _msg_names_in(case.pattern, known):
                    counts[name] = counts.get(name, 0) + 1
    return counts


def _in_except_handler(node: ast.AST) -> bool:
    for parent in ancestors(node):
        if isinstance(parent, ast.ExceptHandler):
            return True
    return False


@register_rule
class ProtocolExhaustiveness(Rule):
    id = "RL009"
    name = "protocol-exhaustiveness"
    severity = "error"
    description = (
        "every serving protocol message kind has one sender side, is "
        "handled by its peer, and the worker covers unknown/error paths"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        protocol = project.find("serving/protocol.py")
        if protocol is None:
            return
        constants = _msg_constants(protocol)
        if not constants:
            return
        known = set(constants)
        worker = project.find("serving/worker.py")
        dispatcher = project.find("serving/dispatcher.py")

        sides: Dict[str, Optional[SourceFile]] = {
            "worker": worker,
            "dispatcher": dispatcher,
        }
        senders: Dict[str, Set[str]] = {name: set() for name in known}
        for side, sf in sides.items():
            if sf is None:
                continue
            for name, _node in _send_sites(sf, known):
                senders[name].add(side)

        handled = {
            side: _handled_kinds(sf, known) if sf is not None else {}
            for side, sf in sides.items()
        }
        peer = {"worker": "dispatcher", "dispatcher": "worker"}

        for name in sorted(known):
            _, line = constants[name]
            sent_by = senders[name]
            if not sent_by:
                yield self.finding(
                    protocol,
                    line,
                    0,
                    f"protocol message {name} is never sent by the worker "
                    "or the dispatcher (dead protocol surface)",
                )
                continue
            if len(sent_by) > 1:
                yield self.finding(
                    protocol,
                    line,
                    0,
                    f"protocol message {name} is sent by both sides; the "
                    "pipe protocol is directional",
                )
                continue
            sender = next(iter(sent_by))
            receiver = peer[sender]
            receiver_sf = sides[receiver]
            if receiver_sf is None:
                continue
            count = handled[receiver].get(name, 0)
            if count == 0:
                yield self.finding(
                    receiver_sf,
                    1,
                    0,
                    f"protocol message {name} (sent by the {sender}) is "
                    f"never handled in the {receiver}: an unexpected reply "
                    "would be silently misinterpreted or hang the pipe",
                )
            elif receiver == "worker" and count > 1:
                yield self.finding(
                    receiver_sf,
                    1,
                    0,
                    f"protocol message {name} has {count} handler "
                    "comparisons in the worker; the dispatch loop must "
                    "handle each kind exactly once",
                )

        if worker is not None and "MSG_ERROR" in known:
            error_sends = [
                node for name, node in _send_sites(worker, known) if name == "MSG_ERROR"
            ]
            if not any(_in_except_handler(node) for node in error_sends):
                yield self.finding(
                    worker,
                    1,
                    0,
                    "worker has no error path: executing a request must "
                    "reply (MSG_ERROR, traceback) from an except handler "
                    "instead of killing the worker loop",
                )
            if not any(not _in_except_handler(node) for node in error_sends):
                yield self.finding(
                    worker,
                    1,
                    0,
                    "worker has no unknown-message fallback: an "
                    "unrecognized kind must be answered with MSG_ERROR, "
                    "not ignored",
                )
