"""RL008 — QueryCost counter drift.

Every cost counter the executors maintain must make it all the way to
the user, and everything the docs promise must exist.  Concretely, for
each field of the ``QueryCost`` dataclass (located via the shared
symbol table; the rule is a no-op for trees without one):

* **aggregation** — the field is referenced inside the ``BatchReport``
  class body (batch totals) and, when a ``_merge_costs`` helper exists
  (the sharded dispatcher's cross-process merge), there too;
* **rendering** — the field is referenced by at least one rendering
  surface: the ``BatchReport`` body, the CLI module, or the
  ``--explain`` renderer;
* **docs** — the field appears as a backticked token in
  ``docs/api.md``.

And vice versa: the bulleted counter list in ``docs/api.md`` under the
``QueryCost`` section must only name real fields — a doc entry for a
renamed or removed counter is drift, not documentation.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

from tools.repro_lint.core import Finding, Project, Rule, SourceFile, register_rule
from tools.repro_lint.symbols import ClassInfo, symbol_table

BACKTICK_RE = re.compile(r"`([A-Za-z_][A-Za-z0-9_.]*)`")

#: `- `field`` or `- `a` / `b` — ...` bullets in the docs counter list.
DOC_BULLET_RE = re.compile(r"^-\s+(`[a-z_][a-z0-9_]*`(?:\s*/\s*`[a-z_][a-z0-9_]*`)*)\s")


def _dataclass_fields(cls: ClassInfo) -> List[Tuple[str, int]]:
    out: List[Tuple[str, int]] = []
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            out.append((stmt.target.id, stmt.lineno))
    return out


def _attribute_names(node: ast.AST) -> Set[str]:
    return {
        sub.attr for sub in ast.walk(node) if isinstance(sub, ast.Attribute)
    } | {
        kw.arg
        for sub in ast.walk(node)
        if isinstance(sub, ast.Call)
        for kw in sub.keywords
        if kw.arg is not None
    }


def _docs_file(project: Project, name: str) -> Optional[Path]:
    seen: Set[Path] = set()
    for root in project.roots:
        base = root if root.is_dir() else root.parent
        for candidate in (base / "docs" / name, base.parent / "docs" / name):
            if candidate in seen:
                continue
            seen.add(candidate)
            if candidate.is_file():
                return candidate
    return None


def _module_file(project: Project, *suffixes: str) -> Optional[SourceFile]:
    for suffix in suffixes:
        found = project.find(suffix)
        if found is not None:
            return found
    return None


def _doc_cost_tokens(text: str) -> List[Tuple[str, int]]:
    """Backticked leading tokens of the QueryCost bullet list in api.md."""
    lines = text.splitlines()
    anchor = None
    for i, line in enumerate(lines):
        if "QueryCost" in line and "`" in line:
            anchor = i
            break
    if anchor is None:
        return []
    out: List[Tuple[str, int]] = []
    for i in range(anchor, len(lines)):
        line = lines[i]
        if line.startswith("## ") and i > anchor:
            break
        match = DOC_BULLET_RE.match(line.strip())
        if match:
            for token in BACKTICK_RE.findall(match.group(1)):
                out.append((token, i + 1))
    return out


@register_rule
class CounterDrift(Rule):
    id = "RL008"
    name = "counter-drift"
    severity = "error"
    description = (
        "every QueryCost field must be aggregated (BatchReport/_merge_costs), "
        "rendered (CLI/--explain), and documented (docs/api.md) — and vice versa"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        table = symbol_table(project)
        cost_candidates = [
            cls
            for cls in table.classes_by_name.get("QueryCost", [])
            if cls.module.endswith("core.query") or len(table.classes_by_name.get("QueryCost", [])) == 1
        ]
        if not cost_candidates:
            return
        cost = cost_candidates[0]
        fields = _dataclass_fields(cost)
        if not fields:
            return
        field_names = {name for name, _ in fields}

        report_candidates = table.classes_by_name.get("BatchReport", [])
        report = report_candidates[0] if report_candidates else None
        merge = next(
            (
                fn
                for qualname, fn in sorted(table.functions.items())
                if fn.name == "_merge_costs"
            ),
            None,
        )
        cli = _module_file(project, "repro/cli.py")
        explain = _module_file(project, "core/explain.py")

        report_attrs = _attribute_names(report.node) if report is not None else None
        merge_attrs = _attribute_names(merge.node) if merge is not None else None
        render_attrs: Optional[Set[str]] = None
        render_sources = []
        if report is not None:
            render_sources.append(report.node)
        for sf in (cli, explain):
            if sf is not None and sf.tree is not None:
                render_sources.append(sf.tree)
        if render_sources:
            render_attrs = set()
            for node in render_sources:
                render_attrs |= _attribute_names(node)

        doc_path = _docs_file(project, "api.md")
        doc_text = doc_path.read_text(encoding="utf-8") if doc_path else None
        doc_tokens = set(BACKTICK_RE.findall(doc_text)) if doc_text else None
        doc_token_tails = (
            {t.rsplit(".", 1)[-1] for t in doc_tokens} if doc_tokens else None
        )

        for name, line in fields:
            if report_attrs is not None and name not in report_attrs:
                yield self.finding(
                    cost.file,
                    line,
                    0,
                    f"QueryCost.{name} is not aggregated by BatchReport "
                    "(batch totals would silently drop it)",
                )
            if merge_attrs is not None and name not in merge_attrs:
                yield self.finding(
                    cost.file,
                    line,
                    0,
                    f"QueryCost.{name} is not merged by the sharded "
                    "dispatcher's _merge_costs (cross-process batches would "
                    "silently drop it)",
                )
            if render_attrs is not None and name not in render_attrs:
                yield self.finding(
                    cost.file,
                    line,
                    0,
                    f"QueryCost.{name} is never rendered (BatchReport rows, "
                    "CLI, or --explain must surface it)",
                )
            if doc_token_tails is not None and name not in doc_token_tails:
                yield self.finding(
                    cost.file,
                    line,
                    0,
                    f"QueryCost.{name} is undocumented in docs/api.md",
                )

        if doc_text is not None:
            for token, doc_line in _doc_cost_tokens(doc_text):
                if token not in field_names:
                    yield self.finding(
                        cost.file,
                        1,
                        0,
                        f"docs/api.md line {doc_line} documents cost counter "
                        f"`{token}` which is not a QueryCost field",
                    )
