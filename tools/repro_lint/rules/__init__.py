"""Rule modules register themselves on import via ``@register_rule``."""

from tools.repro_lint.rules import (  # noqa: F401
    rl001_locks,
    rl002_io,
    rl003_spawn,
    rl004_registry,
    rl005_deprecation,
    rl006_lock_order,
    rl007_accounting_flow,
    rl008_counter_drift,
    rl009_protocol,
    rl010_recv_deadline,
    rl011_durability,
)
