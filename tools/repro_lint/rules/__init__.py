"""Rule modules register themselves on import via ``@register_rule``."""

from tools.repro_lint.rules import (  # noqa: F401
    rl001_locks,
    rl002_io,
    rl003_spawn,
    rl004_registry,
    rl005_deprecation,
)
