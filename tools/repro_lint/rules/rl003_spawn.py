"""RL003 — spawn safety of serving payloads.

Shard worker processes are started with the ``spawn`` method, so every
payload dataclass shipped to a worker must pickle cleanly and must not
smuggle a reference back into the parent engine.  This rule discovers
payload dataclasses in ``serving/`` modules — any ``@dataclass`` whose
name ends in ``Payload`` or that carries a ``# repro-lint: payload``
comment on/above its ``class`` line — then transitively walks the
annotated types of their fields (following other project dataclasses by
name) and flags:

* fields whose annotation mentions a lock/thread/executor/queue type,
* weakref types (dead on arrival after pickling),
* ``Callable`` / ``lambda`` values (unpicklable or identity-breaking),
* back-references to engine/service/client/index/storage objects
  (defeats process isolation and ships unpicklable lock state), and
* unannotated class-body assignments (not dataclass fields — silent
  contract drift).

The denylist is intentionally name-based: payloads are plain-data by
construction (dicts, tuples, bytes, ints), so any appearance of these
names in an annotation is a bug, not a style issue.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.repro_lint.core import Finding, Project, Rule, SourceFile, register_rule
from tools.repro_lint.symbols import symbol_table

PAYLOAD_MARK_RE = re.compile(r"#\s*repro-lint:\s*payload\b")

DENY_EXACT = frozenset(
    {
        # concurrency primitives — unpicklable or meaningless across spawn
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "Thread",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "Future",
        "Queue",
        "SimpleQueue",
        # weakrefs die on pickling
        "weakref",
        "ref",
        "ReferenceType",
        "WeakMethod",
        "WeakValueDictionary",
        "WeakKeyDictionary",
        "WeakSet",
        # callables can't be shipped reliably under spawn
        "Callable",
        "FunctionType",
        "LambdaType",
        # engine back-references: process isolation + embedded locks
        "ReachabilityEngine",
        "ShardedEngine",
        "QueryService",
        "ReachabilityClient",
        "BatchStream",
        "STIndex",
        "ConnectionIndex",
        "SimulatedDisk",
        "BufferPool",
        "PageStore",
        "RegionCache",
        "ExecutionContext",
    }
)


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _annotation_names(node: ast.AST) -> Set[str]:
    """All identifier tokens appearing in an annotation expression,
    including names inside string ("forward reference") annotations."""
    names: Set[str] = set()
    stack: List[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, ast.Name):
            names.add(cur.id)
        elif isinstance(cur, ast.Attribute):
            names.add(cur.attr)
            stack.append(cur.value)
        elif isinstance(cur, ast.Constant) and isinstance(cur.value, str):
            try:
                stack.append(ast.parse(cur.value, mode="eval").body)
            except SyntaxError:
                names.update(re.findall(r"[A-Za-z_]\w*", cur.value))
        else:
            stack.extend(ast.iter_child_nodes(cur))
    return names


def _class_map(project: Project) -> Dict[str, Tuple[SourceFile, ast.ClassDef]]:
    """Project-wide map of dataclass name -> definition (first wins).

    Sourced from the shared symbol table so the transitive field walk
    follows the same class universe the other rules resolve against.
    """
    out: Dict[str, Tuple[SourceFile, ast.ClassDef]] = {}
    for cls in symbol_table(project).classes.values():
        if _is_dataclass(cls.node):
            out.setdefault(cls.name, (cls.file, cls.node))
    return out


def _payload_classes(project: Project) -> List[Tuple[SourceFile, ast.ClassDef]]:
    found: List[Tuple[SourceFile, ast.ClassDef]] = []
    for src in project.iter_parsed():
        if "/serving/" not in "/" + src.rel.replace("\\", "/"):
            continue
        assert src.tree is not None
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
                continue
            first = node.decorator_list[0].lineno if node.decorator_list else node.lineno
            comment = src.comment_in_range(first - 1, node.lineno)
            if node.name.endswith("Payload") or PAYLOAD_MARK_RE.search(comment):
                found.append((src, node))
    return found


@register_rule
class SpawnSafety(Rule):
    id = "RL003"
    name = "spawn-safety"
    severity = "error"
    description = (
        "serving payload dataclasses must stay plain picklable data: no "
        "locks, threads, weakrefs, callables, or engine back-references "
        "(checked transitively through annotated dataclass fields)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        classes = _class_map(project)
        for src, cls in _payload_classes(project):
            yield from self._check_payload(src, cls, classes, chain=(cls.name,), seen=set())

    def _check_payload(
        self,
        src: SourceFile,
        cls: ast.ClassDef,
        classes: Dict[str, Tuple[SourceFile, ast.ClassDef]],
        chain: Tuple[str, ...],
        seen: Set[str],
    ) -> Iterator[Finding]:
        if cls.name in seen:
            return
        seen.add(cls.name)
        via = "" if len(chain) == 1 else f" (reached via {' -> '.join(chain)})"
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                field_name = stmt.target.id
                names = _annotation_names(stmt.annotation)
                bad = sorted(names & DENY_EXACT)
                if bad:
                    yield self.finding(
                        src,
                        stmt.lineno,
                        stmt.col_offset,
                        f"payload field {cls.name}.{field_name} has spawn-unsafe "
                        f"type {'/'.join(bad)}{via}",
                    )
                if stmt.value is not None and any(
                    isinstance(n, ast.Lambda) for n in ast.walk(stmt.value)
                ):
                    yield self.finding(
                        src,
                        stmt.lineno,
                        stmt.col_offset,
                        f"payload field {cls.name}.{field_name} has a lambda "
                        f"default — unpicklable under spawn{via}",
                    )
                # Recurse into project dataclasses referenced by the annotation.
                for name in sorted(names):
                    entry = classes.get(name)
                    if entry is not None and name not in chain:
                        nested_src, nested_cls = entry
                        yield from self._check_payload(
                            nested_src, nested_cls, classes, chain + (name,), seen
                        )
            elif isinstance(stmt, ast.Assign) and len(chain) == 1:
                targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
                plain = [t for t in targets if not t.startswith("__")]
                if plain:
                    yield self.finding(
                        src,
                        stmt.lineno,
                        stmt.col_offset,
                        f"unannotated assignment {cls.name}.{plain[0]} in payload "
                        "body — not a dataclass field; annotate it or move it out",
                    )
