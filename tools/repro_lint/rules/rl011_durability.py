"""RL011 — durability-discipline dataflow proof.

The durable storage tier promises that every byte it writes to the real
filesystem is crash-safe: snapshot files go through ``atomic_replace``
(write temp -> fsync -> rename -> fsync dir) and journal appends go
through ``FileBackedDisk._journal_append_locked`` (append -> fsync,
torn-tail recovery on replay).  A later edit that "just writes the
file" — ``path.write_bytes(...)``, ``open(p, "wb")`` — silently
reintroduces the torn-write windows the whole tier exists to close, and
no test notices until a crash lands inside one.

RL011 turns the promise into an RL007-style reachability proof over the
shared call graph:

    every path from a durable-write entry point (``save_store`` /
    ``save_st_index``, ``FileBackedDisk.commit`` / ``checkpoint``,
    ``STIndex.append_trajectories`` / ``ReachabilityEngine
    .append_trajectories``) to a raw file-write sink must traverse a
    durability barrier first.

A barrier is a function annotated ``# repro-lint: durable-barrier``
after audit (the shipped ones: ``atomic_replace``, the journal append,
and the journal-replay tail truncate, whose only write is an idempotent
recovery trim).  Sinks are the syntactic forms that put bytes on disk:
``open(..., <literal write/append mode>)``, ``os.open``, ``Path
.write_bytes`` / ``.write_text``, and ``os.write`` / ``os.pwrite`` /
``os.truncate`` / ``os.ftruncate``.  ``os.replace`` is *not* a sink —
atomic rename is precisely the primitive the barriers are built from.
Any sink reached without passing a barrier is reported with the full
witness chain from the entry point.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.repro_lint.callgraph import CallGraph, call_graph
from tools.repro_lint.core import Finding, Project, Rule, register_rule
from tools.repro_lint.symbols import FunctionInfo, SymbolTable, symbol_table

#: ``# repro-lint: durable-barrier`` on/above a ``def``: the function is
#: an audited crash-safe write chokepoint; traversal stops here.
DURABLE_BARRIER_RE = re.compile(r"#\s*repro-lint:\s*durable-barrier\b")

#: (class name, method name) durable-write entry points, matched by
#: resolved qualname suffix like RL007's charging methods.
ENTRY_METHODS = frozenset(
    {
        ("STIndex", "append_trajectories"),
        ("ReachabilityEngine", "append_trajectories"),
        ("FileBackedDisk", "commit"),
        ("FileBackedDisk", "checkpoint"),
    }
)

#: Module-level durable-write entry functions (any module: fixture trees
#: keep their layout).  ``save_dataset`` is deliberately absent — the
#: dataset builder is a one-shot offline artifact, not the durable tier.
ENTRY_FUNCTIONS = frozenset({"save_store", "save_st_index"})

#: ``os.<name>`` calls that put bytes on disk.  ``os.replace`` is the
#: atomic primitive itself and deliberately absent.
OS_WRITE_NAMES = frozenset({"open", "write", "pwrite", "truncate", "ftruncate"})

#: ``<obj>.<attr>(...)`` calls that put bytes on disk regardless of the
#: receiver (pathlib's one-shot writers).
PATH_WRITE_ATTRS = frozenset({"write_bytes", "write_text"})


def _is_entry(fn: FunctionInfo) -> bool:
    if fn.cls is None:
        return fn.name in ENTRY_FUNCTIONS
    cls_name = fn.cls.rsplit(".", 1)[-1]
    return (cls_name, fn.name) in ENTRY_METHODS


def _literal_write_mode(call: ast.Call) -> bool:
    """True when ``open(...)`` is called with a literal write/append mode."""
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
        return False  # absent -> "r"; non-literal -> out of static reach
    return any(ch in mode.value for ch in "wax+")


def _sink_lines(fn_node: ast.AST) -> List[Tuple[int, str]]:
    out: List[Tuple[int, str]] = []
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            if _literal_write_mode(node):
                out.append((node.lineno, "open(..., <write mode>)"))
        elif isinstance(func, ast.Attribute):
            if func.attr in PATH_WRITE_ATTRS:
                out.append((node.lineno, f".{func.attr}(...)"))
            elif (
                isinstance(func.value, ast.Name)
                and func.value.id == "os"
                and func.attr in OS_WRITE_NAMES
            ):
                out.append((node.lineno, f"os.{func.attr}(...)"))
    return sorted(out)


def _comment_block_above(fn: FunctionInfo) -> str:
    """The contiguous comment block directly above a ``def``.

    Wider than the symbol table's one-line window on purpose: barrier
    annotations stack with ``holds=`` lines and prose audit notes.
    """
    node = fn.node
    decorators = getattr(node, "decorator_list", [])
    first = decorators[0].lineno if decorators else node.lineno
    comments = fn.file.comments
    parts: List[str] = []
    line = first - 1
    while line in comments:
        parts.append(comments[line])
        line -= 1
    return " ".join(parts)


def _durable_barriers(table: SymbolTable) -> Set[str]:
    return {
        qualname
        for qualname, fn in table.functions.items()
        if DURABLE_BARRIER_RE.search(_comment_block_above(fn))
    }


@register_rule
class DurabilityFlow(Rule):
    id = "RL011"
    name = "durability-dataflow"
    severity = "error"
    description = (
        "every call path from a durable-write entry point to a raw "
        "file-write sink must traverse an audited durability barrier "
        "(atomic snapshot replace or fsynced journal append)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        table = symbol_table(project)
        entries = [fn for fn in table.functions.values() if _is_entry(fn)]
        if not entries:
            return  # nothing to prove without durable entry points
        graph = call_graph(project)
        barriers = _durable_barriers(table)

        # BFS from every entry point, stopping at barriers; parent
        # pointers reconstruct the witness chain (RL007's shape).
        parent: Dict[str, Optional[str]] = {}
        queue: List[str] = []
        for fn in sorted(entries, key=lambda f: f.qualname):
            if fn.qualname not in parent:
                parent[fn.qualname] = None
                queue.append(fn.qualname)
        while queue:
            current = queue.pop(0)
            if current in barriers:
                continue  # crash-safe from here on down
            for callee in sorted(graph.callees(current)):
                if callee not in parent:
                    parent[callee] = current
                    queue.append(callee)

        reported: Set[str] = set()
        for qualname in sorted(parent):
            if qualname in barriers or qualname in reported:
                continue
            fn = table.functions.get(qualname)
            if fn is None:
                continue
            sinks = _sink_lines(fn.node)
            if not sinks:
                continue
            reported.add(qualname)
            chain: List[str] = []
            cursor: Optional[str] = qualname
            while cursor is not None:
                chain.append(cursor)
                cursor = parent[cursor]
            chain.reverse()
            line, form = sinks[0]
            yield self.finding(
                fn.file,
                line,
                0,
                "unsafe durable-write path: "
                + " -> ".join(chain)
                + f" reaches a raw file write ({form}) without traversing "
                "a durability barrier; route the write through "
                "atomic_replace / the journal append, or annotate an "
                "audited helper with `# repro-lint: durable-barrier`",
            )
