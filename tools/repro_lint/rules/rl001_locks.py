"""RL001 — lock discipline.

A field assigned in ``__init__`` with a trailing ``# guarded_by: <lock>``
comment may only be read or written:

* inside a ``with self.<lock>:`` block (any enclosing ``with`` whose
  context expression is exactly ``self.<lock>``), or
* inside a method annotated ``# repro-lint: holds=<lock>`` on the
  ``def`` line (or the comment line directly above the ``def`` /
  first decorator), or
* inside ``__init__`` itself (construction happens before the object
  escapes to other threads).

The declaration comment may name the lock as ``_lock`` or
``self._lock``.  Multiple locks can be stacked by separating holds
annotations with commas: ``# repro-lint: holds=_lock,_tail_lock``.

This is a purely intra-class analysis: accesses through other objects
(``other._field``) and aliased locks (``lk = self._lock; with lk:``)
are out of scope by design — the codebase does not use those shapes
for guarded fields, and the annotations in src/repro keep it that way.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.repro_lint.core import (
    Finding,
    Project,
    Rule,
    SourceFile,
    ancestors,
    enclosing_statement_line,
    register_rule,
)

GUARDED_RE = re.compile(r"#\s*guarded_by:\s*(?:self\.)?([A-Za-z_]\w*)")
HOLDS_RE = re.compile(r"#\s*repro-lint:\s*holds=((?:(?:self\.)?[A-Za-z_]\w*)(?:\s*,\s*(?:self\.)?[A-Za-z_]\w*)*)")


def _self_attr(node: ast.AST) -> Optional[str]:
    """Return F when *node* is ``self.F``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _guarded_fields(src: SourceFile, cls: ast.ClassDef) -> Dict[str, Tuple[str, int]]:
    """Map field name -> (lock name, declaration line) from ``__init__``."""
    out: Dict[str, Tuple[str, int]] = {}
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            for stmt in ast.walk(item):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                names = [f for f in (_self_attr(t) for t in targets) if f]
                if not names:
                    continue
                end = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
                comment = src.comment_in_range(stmt.lineno, end)
                m = GUARDED_RE.search(comment)
                if m:
                    for name in names:
                        out[name] = (m.group(1), stmt.lineno)
            break
    return out


def _held_locks(src: SourceFile, fn: ast.FunctionDef) -> Set[str]:
    """Locks declared held via ``# repro-lint: holds=`` on/above the def."""
    first = fn.decorator_list[0].lineno if fn.decorator_list else fn.lineno
    comment = src.comment_in_range(first - 1, fn.lineno)
    held: Set[str] = set()
    for m in HOLDS_RE.finditer(comment):
        for part in m.group(1).split(","):
            held.add(part.strip().removeprefix("self."))
    return held


def _with_locks(node: ast.AST, stop_at: ast.AST) -> Set[str]:
    """Locks held via enclosing ``with self.<lock>:`` blocks between
    *node* and the enclosing function *stop_at*."""
    held: Set[str] = set()
    for anc in ancestors(node):
        if anc is stop_at:
            break
        if isinstance(anc, (ast.With, ast.AsyncWith)):
            for item in anc.items:
                lock = _self_attr(item.context_expr)
                if lock:
                    held.add(lock)
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    return held


def _enclosing_function(node: ast.AST) -> Optional[ast.FunctionDef]:
    for anc in ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc  # type: ignore[return-value]
    return None


@register_rule
class LockDiscipline(Rule):
    id = "RL001"
    name = "lock-discipline"
    severity = "error"
    description = (
        "fields declared '# guarded_by: <lock>' must be accessed under "
        "'with self.<lock>:' or in a method annotated "
        "'# repro-lint: holds=<lock>'"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for src in project.iter_parsed():
            assert src.tree is not None
            for cls in [n for n in ast.walk(src.tree) if isinstance(n, ast.ClassDef)]:
                guarded = _guarded_fields(src, cls)
                if not guarded:
                    continue
                yield from self._check_class(src, cls, guarded)

    def _check_class(
        self,
        src: SourceFile,
        cls: ast.ClassDef,
        guarded: Dict[str, Tuple[str, int]],
    ) -> Iterator[Finding]:
        methods = [
            n
            for n in cls.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for fn in methods:
            if fn.name == "__init__":
                continue
            held_by_annotation = _held_locks(src, fn)
            for node in ast.walk(fn):
                name = _self_attr(node)
                if name is None or name not in guarded:
                    continue
                lock, _decl_line = guarded[name]
                # Accessing the lock object itself is always fine.
                if name == lock:
                    continue
                enclosing = _enclosing_function(node)
                fn_held = (
                    _held_locks(src, enclosing)
                    if enclosing is not None and enclosing is not fn
                    else held_by_annotation
                )
                if lock in fn_held:
                    continue
                if lock in _with_locks(node, fn):
                    continue
                ctx = getattr(node, "ctx", None)
                verb = "written" if isinstance(ctx, (ast.Store, ast.Del)) else "read"
                yield self.finding(
                    src,
                    node.lineno,
                    node.col_offset,
                    f"self.{name} is guarded by self.{lock} but {verb} in "
                    f"{cls.name}.{fn.name} without holding it",
                    anchor=enclosing_statement_line(node),
                )
