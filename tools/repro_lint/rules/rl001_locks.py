"""RL001 — lock discipline.

A field assigned in ``__init__`` with a trailing ``# guarded_by: <lock>``
comment may only be read or written:

* inside a ``with self.<lock>:`` block (any enclosing ``with`` whose
  context expression is exactly ``self.<lock>``), or
* inside a method annotated ``# repro-lint: holds=<lock>`` on the
  ``def`` line (or the comment line directly above the ``def`` /
  first decorator), or
* inside ``__init__`` itself (construction happens before the object
  escapes to other threads).

The declaration comment may name the lock as ``_lock`` or
``self._lock``.  Multiple locks can be stacked by separating holds
annotations with commas: ``# repro-lint: holds=_lock,_tail_lock``.

Guarded fields and holds annotations come from the shared symbol table
(:mod:`tools.repro_lint.symbols`), so RL001 and the interprocedural
lock-order rule RL006 agree on what is guarded and what is held.  This
remains a purely intra-class analysis: accesses through other objects
(``other._field``) and aliased locks (``lk = self._lock; with lk:``)
are out of scope by design — the codebase does not use those shapes
for guarded fields, and the annotations in src/repro keep it that way.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from tools.repro_lint.core import (
    Finding,
    Project,
    Rule,
    SourceFile,
    ancestors,
    enclosing_statement_line,
    register_rule,
)
from tools.repro_lint.symbols import HOLDS_RE, ClassInfo, symbol_table


def _self_attr(node: ast.AST) -> Optional[str]:
    """Return F when *node* is ``self.F``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _held_locks(src: SourceFile, fn: ast.AST) -> Set[str]:
    """Locks declared held via ``# repro-lint: holds=`` on/above a def.

    Used for nested functions, which the symbol table attributes to
    their enclosing method; top-level methods use FunctionInfo.holds.
    """
    decorators = getattr(fn, "decorator_list", [])
    first = decorators[0].lineno if decorators else fn.lineno
    comment = src.comment_in_range(first - 1, fn.lineno)
    held: Set[str] = set()
    for m in HOLDS_RE.finditer(comment):
        for part in m.group(1).split(","):
            held.add(part.strip().removeprefix("self."))
    return held


def _with_locks(node: ast.AST, stop_at: ast.AST) -> Set[str]:
    """Locks held via enclosing ``with self.<lock>:`` blocks between
    *node* and the enclosing function *stop_at*."""
    held: Set[str] = set()
    for anc in ancestors(node):
        if anc is stop_at:
            break
        if isinstance(anc, (ast.With, ast.AsyncWith)):
            for item in anc.items:
                lock = _self_attr(item.context_expr)
                if lock:
                    held.add(lock)
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    return held


def _enclosing_function(node: ast.AST) -> Optional[ast.FunctionDef]:
    for anc in ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc  # type: ignore[return-value]
    return None


@register_rule
class LockDiscipline(Rule):
    id = "RL001"
    name = "lock-discipline"
    severity = "error"
    description = (
        "fields declared '# guarded_by: <lock>' must be accessed under "
        "'with self.<lock>:' or in a method annotated "
        "'# repro-lint: holds=<lock>'"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        table = symbol_table(project)
        for cls in table.classes.values():
            if cls.guarded_fields:
                yield from self._check_class(cls)

    def _check_class(self, cls: ClassInfo) -> Iterator[Finding]:
        src = cls.file
        guarded: Dict[str, Tuple[str, int]] = cls.guarded_fields
        for method in cls.methods.values():
            if method.name == "__init__":
                continue
            fn = method.node
            held_by_annotation = set(method.holds)
            for node in ast.walk(fn):
                name = _self_attr(node)
                if name is None or name not in guarded:
                    continue
                lock, _decl_line = guarded[name]
                # Accessing the lock object itself is always fine.
                if name == lock:
                    continue
                enclosing = _enclosing_function(node)
                fn_held = (
                    _held_locks(src, enclosing)
                    if enclosing is not None and enclosing is not fn
                    else held_by_annotation
                )
                if lock in fn_held:
                    continue
                if lock in _with_locks(node, fn):
                    continue
                ctx = getattr(node, "ctx", None)
                verb = "written" if isinstance(ctx, (ast.Store, ast.Del)) else "read"
                yield self.finding(
                    src,
                    node.lineno,
                    node.col_offset,
                    f"self.{name} is guarded by self.{lock} but {verb} in "
                    f"{cls.name}.{fn.name} without holding it",
                    anchor=enclosing_statement_line(node),
                )
