"""RL006 — interprocedural lock-order (deadlock) detection.

Built on the shared symbol table and call graph: every ``with
self.<lock>:`` block and ``# repro-lint: holds=`` annotation contributes
lock acquisitions, held-lock sets propagate along call edges (registry
dispatch included), and the resulting global lock-order graph must be a
DAG.  Findings:

* a **cycle** among distinct locks — a potential ABBA deadlock: two
  threads taking the same pair of locks in opposite orders;
* a **self-deadlock** — re-acquiring a non-reentrant ``threading.Lock``
  (directly or through a call chain) while it is already held;
* an **unresolvable acquisition** — a ``with`` statement that looks like
  a lock (``*lock*`` in the attribute name) but cannot be mapped to a
  known ``self.x = threading.Lock()`` attribute, which would silently
  escape the analysis.

The full graph is exported to ``tools/repro_lint/lock_order.json`` via
``python -m tools.repro_lint --write-lock-graph`` (see
``docs/architecture.md`` for the rendered hierarchy); CI re-extracts it
and fails on divergence, so the committed artifact is always current.
"""

from __future__ import annotations

from typing import Iterator

from tools.repro_lint.callgraph import call_graph
from tools.repro_lint.core import Finding, Project, Rule, register_rule
from tools.repro_lint.lockorder import LockOrderGraph, build_lock_order
from tools.repro_lint.symbols import symbol_table


def lock_order_for(project: Project) -> LockOrderGraph:
    """Cached lock-order graph for a project (shared with the CLI)."""
    cached = getattr(project, "_lock_order", None)
    if cached is None:
        cached = build_lock_order(symbol_table(project), call_graph(project))
        project._lock_order = cached  # type: ignore[attr-defined]
    return cached


@register_rule
class LockOrder(Rule):
    id = "RL006"
    name = "lock-order"
    severity = "error"
    description = (
        "the global lock-order graph (propagated over the call graph) "
        "must be acyclic; non-reentrant locks must never be re-acquired"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        graph = lock_order_for(project)
        for problem in graph.problems:
            sf = project._by_rel.get(problem.file_rel)
            if sf is None:
                continue
            yield self.finding(sf, problem.line, 0, problem.message)
        for cycle in graph.cycles():
            # Anchor deterministically at the first acquisition site of
            # the lexicographically smallest lock in the cycle.
            anchor = graph.sites.get(cycle[0])
            if anchor is None:
                continue
            sf = project._by_rel.get(anchor[0])
            if sf is None:
                continue
            edges = []
            cycle_set = set(cycle)
            for (src, dst), edge in sorted(graph.edges.items()):
                if src in cycle_set and dst in cycle_set:
                    witness = sorted(edge.witnesses)[0] if edge.witnesses else ""
                    edges.append(f"{src} -> {dst} (via {witness})")
            yield self.finding(
                sf,
                anchor[1],
                0,
                "potential ABBA deadlock: lock-order cycle among "
                + ", ".join(cycle)
                + "; "
                + "; ".join(edges),
            )
