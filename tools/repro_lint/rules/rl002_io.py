"""RL002 — I/O-accounting contract.

``SimulatedDisk`` read paths charge :class:`DiskStats` exactly once per
page, in scalar order.  That exactness guarantee (the repo's figures
are *counted*, not sampled) only holds if every component outside the
storage layer reaches pages through ``BufferPool`` / ``PageStore``.

This rule flags, in any file outside ``storage/`` (and outside
``tools/``):

* calls to the raw charging/IO methods ``read_page``, ``charge_reads``,
  ``extent_bytes``, ``write_page`` on any receiver, and
* attribute access to the private page buffers ``_buf`` / ``_used``.

Deliberate, audited exceptions carry a
``# repro-lint: disable=RL002`` comment explaining why the access does
not double- or under-charge.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.core import (
    Finding,
    Project,
    Rule,
    enclosing_statement_line,
    register_rule,
)

# Shared with RL007's dataflow proof (tools/repro_lint/symbols.py): the
# firewall (this rule) and the reachability proof must agree on what
# "raw" means or a method could pass one and fail the other.
from tools.repro_lint.symbols import RAW_BUFFER_ATTRS, RAW_IO_METHODS

EXEMPT_PATH_PARTS = ("/storage/", "/tools/")


def _exempt(rel: str) -> bool:
    norm = "/" + rel.replace("\\", "/")
    return any(part in norm for part in EXEMPT_PATH_PARTS)


@register_rule
class IoAccounting(Rule):
    id = "RL002"
    name = "io-accounting"
    severity = "error"
    description = (
        "raw SimulatedDisk access (read_page/charge_reads/extent_bytes/"
        "write_page/_buf/_used) outside storage/ breaks DiskStats exactness; "
        "go through BufferPool/PageStore"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for src in project.iter_parsed():
            if _exempt(src.rel):
                continue
            assert src.tree is not None
            for node in ast.walk(src.tree):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if node.func.attr in RAW_IO_METHODS:
                        yield self.finding(
                            src,
                            node.lineno,
                            node.col_offset,
                            f"raw disk call .{node.func.attr}() outside storage/ "
                            "bypasses BufferPool/PageStore accounting",
                            anchor=enclosing_statement_line(node),
                        )
                elif isinstance(node, ast.Attribute) and node.attr in RAW_BUFFER_ATTRS:
                    # Skip self._buf/self._used on non-storage classes only if
                    # they are that class's own fields named identically —
                    # still flag: nothing outside storage/ should own these
                    # names, and a local reuse is cheap to rename or suppress.
                    yield self.finding(
                        src,
                        node.lineno,
                        node.col_offset,
                        f"direct page-buffer access .{node.attr} outside storage/",
                        anchor=enclosing_statement_line(node),
                    )
