"""RL007 — I/O-accounting dataflow proof.

RL002 is a module firewall: raw ``SimulatedDisk`` access methods may
only be *named* inside ``storage/`` (and tools).  That says nothing
about whether a call *path* from query execution to a raw page access
actually charges the read.  RL007 upgrades the contract to a
reachability proof over the shared call graph:

    every path from an executor entry point (the RL004 registry) to a
    function that directly performs a raw page access
    (``.read_page(...)`` / ``.extent_bytes(...)``) must traverse a
    *charging* function first.

A charging function is one of the audited accounting chokepoints
(``BufferPool.get_page``/``get_pages``, ``PageStore.read``/
``read_many``, ``SimulatedDisk.charge_reads``), any function that
itself calls one of them (the charge-then-decode pattern:
``STIndex.gather_window_columns`` charges pages via ``get_pages`` and
then decodes the pre-charged extents), or a function annotated
``# repro-lint: charged`` after audit.  Traversal stops at charging
functions; any raw access reached without passing one is an uncharged
read path, reported with the full call chain from the executor.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from tools.repro_lint.callgraph import CallGraph, call_graph
from tools.repro_lint.core import Finding, Project, Rule, register_rule
from tools.repro_lint.symbols import RAW_READ_METHODS, SymbolTable, symbol_table

#: Raw page *accesses*: reading page bytes out of the simulated disk.
#: The read-side slice of the RL002 raw-I/O contract (symbols.py).
RAW_ACCESS_METHODS = RAW_READ_METHODS

#: (class name, method name) accounting chokepoints.  Matched by
#: resolved callee qualname suffix so fixture trees with same-named
#: classes behave identically.
CHARGING_METHODS = frozenset(
    {
        ("BufferPool", "get_page"),
        ("BufferPool", "get_pages"),
        ("PageStore", "read"),
        ("PageStore", "read_many"),
        ("SimulatedDisk", "charge_reads"),
    }
)


#: Charging method names distinctive enough to trust without resolving
#: the receiver (``read`` alone would match file objects and pipes).
SYNTACTIC_CHARGING_NAMES = frozenset({"get_page", "get_pages", "read_many", "charge_reads"})


def _is_charging_qualname(qualname: str) -> bool:
    parts = qualname.rsplit(".", 2)
    if len(parts) < 2:
        return False
    return (parts[-2], parts[-1]) in CHARGING_METHODS


def _raw_access_lines(fn_node: ast.AST) -> List[int]:
    out = []
    for node in ast.walk(fn_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in RAW_ACCESS_METHODS
        ):
            out.append(node.lineno)
    return sorted(out)


def _charging_barriers(table: SymbolTable, graph: CallGraph) -> Set[str]:
    barriers: Set[str] = set()
    for qualname, fn in table.functions.items():
        if _is_charging_qualname(qualname) or fn.charged:
            barriers.add(qualname)
            continue
        for callee in graph.callees(qualname):
            if _is_charging_qualname(callee):
                barriers.add(qualname)
                break
        else:
            # Untyped receivers miss the resolved-callee check above, so
            # also accept syntactic calls to the *distinctive* charging
            # method names (bare `.read(` is too generic to trust).
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in SYNTACTIC_CHARGING_NAMES
                ):
                    barriers.add(qualname)
                    break
    return barriers


@register_rule
class AccountingFlow(Rule):
    id = "RL007"
    name = "accounting-dataflow"
    severity = "error"
    description = (
        "every call path from an executor to a raw disk page access "
        "must traverse a charging function (pages charged exactly once)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        table = symbol_table(project)
        if not table.executors:
            return  # nothing to prove without entry points
        graph = call_graph(project)
        barriers = _charging_barriers(table, graph)

        # BFS from every executor entry point, stopping at barriers;
        # parent pointers reconstruct the witness chain.
        parent: Dict[str, Optional[str]] = {}
        queue: List[str] = []
        for reg in table.executors:
            if reg.func.qualname not in parent:
                parent[reg.func.qualname] = None
                queue.append(reg.func.qualname)
        while queue:
            current = queue.pop(0)
            if current in barriers:
                continue  # charged from here on down
            for callee in sorted(graph.callees(current)):
                if callee not in parent:
                    parent[callee] = current
                    queue.append(callee)

        reported: Set[str] = set()
        for qualname in sorted(parent):
            if qualname in barriers or qualname in reported:
                continue
            fn = table.functions.get(qualname)
            if fn is None:
                continue
            lines = _raw_access_lines(fn.node)
            if not lines:
                continue
            reported.add(qualname)
            chain: List[str] = []
            cursor: Optional[str] = qualname
            while cursor is not None:
                chain.append(cursor)
                cursor = parent[cursor]
            chain.reverse()
            yield self.finding(
                fn.file,
                lines[0],
                0,
                "uncharged disk-read path: "
                + " -> ".join(chain)
                + " reaches a raw page access without traversing a "
                "charging function (BufferPool.get_page(s)/PageStore."
                "read(_many)/SimulatedDisk.charge_reads); route the read "
                "through the buffer pool or annotate an audited helper "
                "with `# repro-lint: charged`",
            )
