"""RL004 — executor registry / router completeness.

The executor registry (``@register_executor(kind, name)``) is the
single source of truth for algorithm names.  Three other surfaces refer
to those names and silently rot when they drift: the Router's rule
table (``api/router.py``), the CLI ``--algorithm`` choices
(``cli.py``), and the documented routing tables (``docs/*.md``).  This
rule statically rebuilds the registry and cross-checks all three:

* every module under ``core/executors/`` (except ``__init__``) must
  register at least one executor — an unregistered module is dead code
  the Router can never reach;
* every algorithm literal in ``router.py`` (``decide(...)`` first
  arguments, ``PAPER_ALGORITHMS`` values keyed by kind,
  ``ES_FAMILY`` members, ``ROUTING_TABLE`` route strings) must resolve
  in the registry;
* every CLI ``--algorithm`` must either derive its ``choices`` from
  ``executor_names()`` / use literals that resolve, or (when free-form)
  live in a module that validates via ``has_executor``;
* every algorithm-ish token in the docs (anything containing ``_tbs``
  anywhere; ``es``-family names inside a routing table's ``route``
  column) must resolve.

Docs are scanned as text because they are Markdown; everything else is
AST-based.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

from tools.repro_lint.core import Finding, Project, Rule, SourceFile, register_rule
from tools.repro_lint.symbols import symbol_table

WORD_RE = re.compile(r"[A-Za-z_]\w*")
TBS_TOKEN_RE = re.compile(r"\b[a-z][a-z0-9_]*_tbs(?:_[a-z0-9_]+)?\b")
BACKTICK_RE = re.compile(r"`([^`]+)`")
ES_FAMILY_TOKEN_RE = re.compile(r"^es(?:_[a-z0-9]+)*$")


def _registry(project: Project) -> Tuple[Set[Tuple[str, str]], bool]:
    """(kind, name) pairs registered via @register_executor with constant
    args, plus whether any dynamic (non-constant) registration exists.

    Thin view over the shared symbol table's executor registry — the
    same table the interprocedural rules dispatch through, so RL004 and
    RL006/RL007 can never disagree about what is registered.
    """
    table = symbol_table(project)
    pairs = {(reg.kind, reg.name) for reg in table.executors}
    return pairs, bool(table.dynamic_registrations)


def _algorithmish(token: str) -> bool:
    return "_tbs" in token or bool(ES_FAMILY_TOKEN_RE.match(token))


@register_rule
class RegistryCompleteness(Rule):
    id = "RL004"
    name = "registry-completeness"
    severity = "error"
    description = (
        "executor modules must register via @register_executor, and every "
        "algorithm name in the router rule table, CLI --algorithm choices "
        "and docs routing tables must resolve in the registry"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        pairs, dynamic = _registry(project)
        if not pairs:
            # Scanning a tree without the executors package (e.g. a lint of
            # benchmarks/ alone): nothing to cross-check.
            return
        names = {name for _, name in pairs}
        names_by_kind = {}
        for kind, name in pairs:
            names_by_kind.setdefault(kind, set()).add(name)

        yield from self._check_executor_modules(project)
        yield from self._check_router(project, pairs, names, dynamic)
        yield from self._check_cli(project, names, dynamic)
        yield from self._check_docs(project, names, dynamic)

    # -- executors/ modules -------------------------------------------------

    def _check_executor_modules(self, project: Project) -> Iterator[Finding]:
        for src in project.iter_parsed():
            norm = "/" + src.rel.replace("\\", "/")
            if "/core/executors/" not in norm or norm.endswith("__init__.py"):
                continue
            assert src.tree is not None
            registers = any(
                isinstance(dec, ast.Call)
                and (
                    (isinstance(dec.func, ast.Name) and dec.func.id == "register_executor")
                    or (isinstance(dec.func, ast.Attribute) and dec.func.attr == "register_executor")
                )
                for node in ast.walk(src.tree)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                for dec in node.decorator_list
            )
            if not registers:
                yield self.finding(
                    src,
                    1,
                    0,
                    "executor module registers nothing via @register_executor — "
                    "dead code the Router can never dispatch to",
                )

    # -- router -------------------------------------------------------------

    def _check_router(
        self,
        project: Project,
        pairs: Set[Tuple[str, str]],
        names: Set[str],
        dynamic: bool,
    ) -> Iterator[Finding]:
        src = project.find("api/router.py")
        if src is None or src.tree is None or dynamic:
            return
        tree = src.tree
        for node in ast.walk(tree):
            # decide("<algo>", ...) literals inside Router._auto
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "decide"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                algo = node.args[0].value
                if algo not in names:
                    yield self.finding(
                        src,
                        node.lineno,
                        node.col_offset,
                        f"router routes to unregistered algorithm {algo!r}",
                    )
            # PAPER_ALGORITHMS = {"kind": "name", ...} — kind-aware check
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "PAPER_ALGORITHMS" for t in node.targets
            ):
                if isinstance(node.value, ast.Dict):
                    for k, v in zip(node.value.keys, node.value.values):
                        if (
                            isinstance(k, ast.Constant)
                            and isinstance(v, ast.Constant)
                            and (str(k.value), str(v.value)) not in pairs
                        ):
                            yield self.finding(
                                src,
                                v.lineno,
                                v.col_offset,
                                f"PAPER_ALGORITHMS maps kind {k.value!r} to "
                                f"{v.value!r}, which is not registered for that kind",
                            )
            # ES_FAMILY = frozenset({...})
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "ES_FAMILY" for t in node.targets
            ):
                for const in ast.walk(node.value):
                    if isinstance(const, ast.Constant) and isinstance(const.value, str):
                        if const.value not in names:
                            yield self.finding(
                                src,
                                const.lineno,
                                const.col_offset,
                                f"ES_FAMILY member {const.value!r} is not a "
                                "registered algorithm",
                            )
            # ROUTING_TABLE route strings (third element of each row)
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "ROUTING_TABLE" for t in node.targets
            ):
                value = node.value
                rows = value.elts if isinstance(value, ast.Tuple) else []
                for row in rows:
                    if not (isinstance(row, ast.Tuple) and len(row.elts) == 3):
                        continue
                    route = row.elts[2]
                    if isinstance(route, ast.Constant) and isinstance(route.value, str):
                        for token in WORD_RE.findall(route.value):
                            if _algorithmish(token) and token not in names:
                                yield self.finding(
                                    src,
                                    route.lineno,
                                    route.col_offset,
                                    f"ROUTING_TABLE route mentions {token!r}, "
                                    "which is not a registered algorithm",
                                )

    # -- CLI ----------------------------------------------------------------

    def _check_cli(
        self, project: Project, names: Set[str], dynamic: bool
    ) -> Iterator[Finding]:
        src = project.find("repro/cli.py") or project.find("cli.py")
        if src is None or src.tree is None or dynamic:
            return
        tree = src.tree
        module_text = src.text
        validates_at_runtime = "has_executor(" in module_text
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == "--algorithm"
            ):
                continue
            choices_kw = next((kw for kw in node.keywords if kw.arg == "choices"), None)
            if choices_kw is None:
                if not validates_at_runtime:
                    yield self.finding(
                        src,
                        node.lineno,
                        node.col_offset,
                        "--algorithm takes free-form input but the module never "
                        "validates it with has_executor()",
                    )
                continue
            derives = any(
                isinstance(sub, ast.Call)
                and (
                    (isinstance(sub.func, ast.Name) and sub.func.id == "executor_names")
                    or (
                        isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "executor_names"
                    )
                )
                for sub in ast.walk(choices_kw.value)
            )
            literal_choices = [
                c.value
                for c in ast.walk(choices_kw.value)
                if isinstance(c, ast.Constant) and isinstance(c.value, str)
            ]
            unknown = [c for c in literal_choices if c not in names and c != "auto"]
            if not derives and unknown:
                yield self.finding(
                    src,
                    node.lineno,
                    node.col_offset,
                    f"--algorithm choices include unregistered name(s) "
                    f"{', '.join(repr(u) for u in sorted(unknown))}",
                )
            if not derives and not literal_choices:
                yield self.finding(
                    src,
                    node.lineno,
                    node.col_offset,
                    "--algorithm choices are neither registry-derived "
                    "(executor_names) nor resolvable literals",
                )

    # -- docs ---------------------------------------------------------------

    def _check_docs(
        self, project: Project, names: Set[str], dynamic: bool
    ) -> Iterator[Finding]:
        if dynamic:
            return
        # Only look for docs/ next to (or one level above) the scanned
        # roots — never fall back to the CWD, or linting a fixture tree
        # would cross-check the real repo's docs against fixture registries.
        docs_dir: Optional[Path] = None
        for root in project.roots:
            base = root if root.is_dir() else root.parent
            for candidate in (base / "docs", base.parent / "docs"):
                if candidate.is_dir():
                    docs_dir = candidate
                    break
            if docs_dir:
                break
        if docs_dir is None:
            return
        for md in sorted(docs_dir.glob("*.md")):
            try:
                text = md.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):  # pragma: no cover
                continue
            rel = md.as_posix()
            lines = text.splitlines()
            route_col: Optional[int] = None
            for i, line in enumerate(lines, start=1):
                stripped = line.strip()
                is_table_row = stripped.startswith("|") and stripped.endswith("|")
                if is_table_row:
                    cells = [c.strip() for c in stripped.strip("|").split("|")]
                    headerish = [c.strip("`* ").lower() for c in cells]
                    if "route" in headerish:
                        route_col = headerish.index("route")
                        continue
                else:
                    route_col = None
                # Global: anything containing _tbs must resolve, table or not.
                for token in set(TBS_TOKEN_RE.findall(line)):
                    if token not in names:
                        yield Finding(
                            rule=self.id,
                            severity=self.severity,
                            path=rel,
                            line=i,
                            col=0,
                            message=(
                                f"docs mention algorithm {token!r}, which is "
                                "not registered"
                            ),
                        )
                # Route column: es-family names must resolve too.
                if is_table_row and route_col is not None and route_col < len(cells):
                    if set(c.strip("-: ") for c in cells) <= {""}:
                        continue  # separator row
                    for tick in BACKTICK_RE.findall(cells[route_col]):
                        for token in WORD_RE.findall(tick):
                            # _tbs tokens are covered by the global check above.
                            if "_tbs" in token:
                                continue
                            if _algorithmish(token) and token not in names:
                                yield Finding(
                                    rule=self.id,
                                    severity=self.severity,
                                    path=rel,
                                    line=i,
                                    col=0,
                                    message=(
                                        f"docs routing table routes to "
                                        f"{token!r}, which is not registered"
                                    ),
                                )
    # NOTE: docs findings use Finding() directly because markdown files are
    # not part of the Python Project; suppressions do not apply to them.
