"""Static call graph over a repro-lint symbol table.

Nodes are the functions and methods of :class:`~tools.repro_lint.symbols.
SymbolTable`; edges are resolved call sites.  Resolution is deliberately
modest — exactly the forms the repro codebase uses — and everything it
cannot resolve is recorded in :attr:`CallGraph.unresolved` rather than
silently dropped, so the lock-order artifact can show its blind spots.

Resolved forms:

* ``func(...)`` — module-local functions and imported project functions;
* ``ClassName(...)`` — constructor calls, resolved to ``__init__``
  (through project-resolvable bases when the class defines none);
* ``self.method(...)`` — own class, then bases;
* ``obj.method(...)`` — when ``obj`` is a typed attribute, an annotated
  parameter, or a local assigned from a constructor / annotated call;
* ``executor = get_executor(...); executor(...)`` — registry dispatch,
  fanned out to every statically registered executor (RL004's table);
* name fallback — an untyped receiver whose method name is defined by
  project classes (and is not a common builtin-container method) gets an
  edge to **every** candidate, tagged ``"name"``.

Unresolved (recorded, not traversed): calls through untyped receivers
with unknown method names, and function references passed as callbacks
(the callee runs them on another thread or outside the caller's locks,
so traversing them would invent lock-order edges that cannot happen).

Nested ``def``s are attributed to their enclosing named function: a
closure's calls belong to the function that created it for reachability
purposes (the dominant pattern here is ``compute`` callbacks built and
run within one call frame).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.repro_lint.core import Project
from tools.repro_lint.symbols import (
    FunctionInfo,
    SymbolTable,
    annotation_class,
    symbol_table,
)

#: Method names never resolved by name: they collide with builtin
#: container/IO/concurrency methods, so an untyped receiver is far more
#: likely a list or a pipe than a project class.
BUILTIN_METHOD_NAMES = frozenset(
    {
        "add", "append", "clear", "close", "copy", "count", "discard",
        "extend", "get", "index", "insert", "items", "join", "keys",
        "pop", "popitem", "put", "read", "recv", "release", "remove",
        "reverse", "send", "set", "setdefault", "sort", "split",
        "start", "strip", "submit", "terminate", "tolist", "update",
        "values", "wait", "write",
    }
)


@dataclass
class CallSite:
    caller: str
    callee: str
    line: int
    kind: str  # direct | constructor | method | name | registry
    node: ast.Call


@dataclass
class UnresolvedCall:
    caller: str
    target: str  # best-effort textual form
    line: int
    reason: str


@dataclass
class CallGraph:
    table: SymbolTable
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    sites: List[CallSite] = field(default_factory=list)
    unresolved: List[UnresolvedCall] = field(default_factory=list)
    #: per-function call sites, for held-lock traversals
    sites_by_caller: Dict[str, List[CallSite]] = field(default_factory=dict)

    def add(self, site: CallSite) -> None:
        self.edges.setdefault(site.caller, set()).add(site.callee)
        self.sites.append(site)
        self.sites_by_caller.setdefault(site.caller, []).append(site)

    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        head = _dotted(node.value)
        return f"{head}.{node.attr}" if head else None
    return None


def _call_repr(call: ast.Call) -> str:
    return _dotted(call.func) or type(call.func).__name__


def _constructor(table: SymbolTable, qualname: str) -> Optional[FunctionInfo]:
    cls = table.classes.get(qualname)
    if cls is None:
        return None
    return table.method_on(cls, "__init__")


class _FunctionResolver:
    """Per-function local-type environment + call resolution."""

    def __init__(self, graph: CallGraph, fn: FunctionInfo) -> None:
        self.graph = graph
        self.table = graph.table
        self.fn = fn
        self.module = fn.module
        self.locals: Dict[str, str] = {}  # var -> class qualname
        self.registry_vars: Set[str] = set()  # vars holding get_executor results
        for name, annotation in self._params().items():
            resolved = annotation_class(self.table, self.module, annotation)
            if resolved is not None:
                self.locals[name] = resolved

    def _params(self) -> Dict[str, ast.AST]:
        out: Dict[str, ast.AST] = {}
        args = getattr(self.fn.node, "args", None)
        if args is None:
            return out
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                out[arg.arg] = arg.annotation
        return out

    # -- typing ------------------------------------------------------------

    def _value_class(self, value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Call):
            target = self._resolve_callable(value.func)
            if target is not None:
                kind, info = target
                if kind == "constructor":
                    return info.cls
                if info.return_class is not None:
                    return info.return_class
            return None
        if isinstance(value, ast.Name):
            return self.locals.get(value.id)
        if isinstance(value, ast.Attribute):
            receiver = self._receiver_class(value.value)
            if receiver is not None:
                cls = self.table.classes.get(receiver)
                if cls is not None:
                    return cls.attr_types.get(value.attr)
            return None
        if isinstance(value, ast.IfExp):
            return self._value_class(value.body) or self._value_class(value.orelse)
        if isinstance(value, ast.BoolOp):
            for operand in value.values:
                got = self._value_class(operand)
                if got:
                    return got
        return None

    def _receiver_class(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            if node.id == "self" and self.fn.cls is not None:
                return self.fn.cls
            return self.locals.get(node.id)
        if isinstance(node, ast.Attribute):
            owner = self._receiver_class(node.value)
            if owner is not None:
                cls = self.table.classes.get(owner)
                if cls is not None:
                    return cls.attr_types.get(node.attr)
        return None

    # -- call resolution ---------------------------------------------------

    def _resolve_callable(
        self, func: ast.AST
    ) -> Optional[Tuple[str, FunctionInfo]]:
        """Resolve a call's func expression to ("direct"|"constructor"|"method", fn)."""
        table = self.table
        if isinstance(func, ast.Name):
            name = func.id
            mod = table.modules.get(self.module)
            if mod is not None and name in mod.functions:
                return ("direct", mod.functions[name])
            if mod is not None and name in mod.classes:
                ctor = _constructor(table, mod.classes[name].qualname)
                if ctor is not None:
                    return ("constructor", ctor)
                return None
            cls = table.resolve_class_name(name, self.module)
            if cls is not None:
                ctor = _constructor(table, cls.qualname)
                return ("constructor", ctor) if ctor is not None else None
            if mod is not None:
                target = mod.imports.get(name)
                if target is not None and target in table.functions:
                    return ("direct", table.functions[target])
            return None
        if isinstance(func, ast.Attribute):
            receiver = self._receiver_class(func.value)
            if receiver is not None:
                cls = table.classes.get(receiver)
                if cls is not None:
                    method = table.method_on(cls, func.attr)
                    if method is not None:
                        return ("method", method)
                    return None
            # module-qualified function: `mod.func(...)`
            dotted = _dotted(func)
            if dotted is not None:
                head = dotted.split(".")[0]
                mod = table.modules.get(self.module)
                target = mod.imports.get(head) if mod is not None else None
                if target is not None:
                    resolved = dotted.replace(head, target, 1)
                    if resolved in table.functions:
                        return ("direct", table.functions[resolved])
                    cls = table.classes.get(resolved)
                    if cls is not None:
                        ctor = _constructor(table, cls.qualname)
                        if ctor is not None:
                            return ("constructor", ctor)
        return None

    def _is_get_executor(self, call: ast.Call) -> bool:
        name = _dotted(call.func)
        return bool(name) and name.rsplit(".", 1)[-1] == "get_executor"

    def _record(self, call: ast.Call, kind: str, callee: FunctionInfo) -> None:
        self.graph.add(
            CallSite(
                caller=self.fn.qualname,
                callee=callee.qualname,
                line=call.lineno,
                kind=kind,
                node=call,
            )
        )

    def _unresolved(self, call: ast.Call, reason: str) -> None:
        self.graph.unresolved.append(
            UnresolvedCall(
                caller=self.fn.qualname,
                target=_call_repr(call),
                line=call.lineno,
                reason=reason,
            )
        )

    def visit(self) -> None:
        # First pass: local assignments, in source order.
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Call) and self._is_get_executor(value):
                self.registry_vars.add(target.id)
                continue
            inferred = self._value_class(value)
            if inferred is not None:
                self.locals.setdefault(target.id, inferred)
        # Second pass: every call expression in the function (nested defs
        # included — they belong to this function).
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Call):
                self._visit_call(node)

    def _visit_call(self, call: ast.Call) -> None:
        table = self.table
        func = call.func
        # Registry dispatch: calling a variable bound from get_executor().
        if isinstance(func, ast.Name) and func.id in self.registry_vars:
            if not table.executors:
                self._unresolved(call, "registry dispatch with no static registry")
                return
            for reg in table.executors:
                self._record(call, "registry", reg.func)
            return
        resolved = self._resolve_callable(func)
        if resolved is not None:
            kind, callee = resolved
            self._record(call, kind, callee)
            return
        if isinstance(func, ast.Attribute):
            # ``super().method(...)`` — resolve on the enclosing class's
            # project-resolvable bases (the zero-argument form, which is
            # the only one the codebase uses).  Without this the call
            # would fall through to the name fallback and fan out to
            # every same-named method — e.g. an exception subclass's
            # ``super().__init__`` growing edges to every ``__init__``
            # in the project.
            if (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
                and not func.value.args
                and self.fn.cls is not None
            ):
                cls = table.classes.get(self.fn.cls)
                if cls is not None:
                    for base in cls.bases:
                        base_cls = table.resolve_class_name(base, cls.module)
                        if base_cls is None:
                            continue
                        method = table.method_on(base_cls, func.attr)
                        if method is not None:
                            self._record(call, "method", method)
                            return
                # The base chain leaves the project (e.g. Exception):
                # external method, out of scope — same as a typed
                # receiver resolving to a non-project class.
                return
            receiver = self._receiver_class(func.value)
            if receiver is not None:
                # Typed receiver but unknown method: a project class is
                # being called in a way the table cannot see.
                self._unresolved(
                    call, f"method {func.attr!r} not found on {receiver}"
                )
                return
            name = func.attr
            if name in BUILTIN_METHOD_NAMES:
                return  # almost certainly a builtin container/pipe method
            candidates = table.methods_by_name.get(name, [])
            candidates = [c for c in candidates if c.cls is not None]
            if candidates:
                for candidate in candidates:
                    self._record(call, "name", candidate)
                return
            return  # external library method — out of scope
        if isinstance(func, ast.Name):
            # Unknown bare name: builtin or external; only record project
            # functions passed around as values (callbacks) explicitly.
            mod = table.modules.get(self.module)
            if mod is not None and func.id in self.locals:
                self._unresolved(call, "call through typed value (no __call__ model)")
            return
        self._unresolved(call, "unsupported call form")

    def record_callbacks(self) -> None:
        """Record (not traverse) project functions passed as arguments."""
        for node in ast.walk(self.fn.node):
            if not isinstance(node, ast.Call):
                continue
            for arg in [*node.args, *[k.value for k in node.keywords]]:
                target: Optional[str] = None
                if isinstance(arg, ast.Attribute) and isinstance(
                    arg.value, ast.Name
                ):
                    receiver = self._receiver_class(arg.value)
                    if receiver is not None:
                        cls = self.table.classes.get(receiver)
                        if cls is not None and self.table.method_on(cls, arg.attr):
                            target = f"{receiver}.{arg.attr}"
                elif isinstance(arg, ast.Name):
                    mod = self.table.modules.get(self.module)
                    if mod is not None and arg.id in mod.functions:
                        target = mod.functions[arg.id].qualname
                if target is not None:
                    self.graph.unresolved.append(
                        UnresolvedCall(
                            caller=self.fn.qualname,
                            target=target,
                            line=node.lineno,
                            reason="callback reference (not traversed)",
                        )
                    )


def build_call_graph(table: SymbolTable) -> CallGraph:
    graph = CallGraph(table=table)
    for fn in table.functions.values():
        resolver = _FunctionResolver(graph, fn)
        resolver.visit()
        resolver.record_callbacks()
    return graph


def call_graph(project: Project) -> CallGraph:
    """Cached accessor: one call graph per Project instance."""
    cached = getattr(project, "_call_graph", None)
    if cached is None:
        cached = build_call_graph(symbol_table(project))
        project._call_graph = cached  # type: ignore[attr-defined]
    return cached


def reachable_from(graph: CallGraph, roots: Iterator[str]) -> Set[str]:
    seen: Set[str] = set()
    stack = list(roots)
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        stack.extend(graph.callees(cur) - seen)
    return seen
