"""Command-line entry point: ``python -m tools.repro_lint``.

Exit codes: 0 = clean (or ``--report-only``), 1 = non-baselined
findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.repro_lint.core import (
    all_rules,
    apply_baseline,
    load_baseline,
    report_json,
    report_text,
    run_paths,
    write_baseline,
)

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repro_lint",
        description="AST-based invariant checkers for the repro codebase.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to scan")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline file of grandfathered findings (default: %(default)s)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="always exit 0; report findings without gating",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--write-lock-graph",
        metavar="FILE",
        default=None,
        help="extract the RL006 lock-order graph from PATHS, write it as "
        "JSON, and exit 0 (1 if the graph has a cycle)",
    )
    parser.add_argument(
        "--check-lock-graph",
        metavar="FILE",
        default=None,
        help="extract the lock-order graph from PATHS and exit 1 if it "
        "differs from the committed FILE or contains a cycle",
    )
    return parser


def _lock_graph_json(paths: list[str]) -> tuple[dict, list[list[str]]]:
    from tools.repro_lint.callgraph import call_graph
    from tools.repro_lint.core import build_project
    from tools.repro_lint.rules.rl006_lock_order import lock_order_for

    project = build_project(paths)
    graph = lock_order_for(project)
    unresolved = sorted(
        {
            f"{u.caller} :: {u.target} ({u.reason})"
            for u in call_graph(project).unresolved
        }
    )
    return graph.to_json(unresolved), graph.cycles()


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; pass through.
        return int(exc.code or 0)

    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id} [{rule.severity}] {rule.name}: {rule.description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("python -m tools.repro_lint: error: the following arguments are required: paths", file=sys.stderr)
        return 2

    if args.write_lock_graph or args.check_lock_graph:
        rendered_json, cycles = _lock_graph_json(args.paths)
        payload = json.dumps(rendered_json, indent=2, sort_keys=True) + "\n"
        if args.write_lock_graph:
            Path(args.write_lock_graph).write_text(payload, encoding="utf-8")
            print(
                f"repro-lint: wrote lock-order graph "
                f"({len(rendered_json['locks'])} locks, "
                f"{len(rendered_json['edges'])} edges) to {args.write_lock_graph}"
            )
        else:
            committed_path = Path(args.check_lock_graph)
            if not committed_path.is_file():
                print(
                    f"repro-lint: no committed lock graph at {committed_path}; "
                    "run --write-lock-graph and commit the result",
                    file=sys.stderr,
                )
                return 1
            committed = committed_path.read_text(encoding="utf-8")
            if json.loads(committed) != rendered_json:
                print(
                    "repro-lint: extracted lock-order graph diverges from "
                    f"{committed_path}; regenerate it with\n"
                    f"  python -m tools.repro_lint {' '.join(args.paths)} "
                    f"--write-lock-graph {committed_path}\n"
                    "and review docs/architecture.md",
                    file=sys.stderr,
                )
                return 1
            print(f"repro-lint: lock-order graph matches {committed_path}")
        if cycles:
            for cycle in cycles:
                print(
                    "repro-lint: lock-order cycle: " + " -> ".join(cycle),
                    file=sys.stderr,
                )
            return 1
        return 0

    select = [s.strip() for s in args.select.split(",") if s.strip()] if args.select else None
    known = set(all_rules())
    if select and not set(s.upper() for s in select) <= known:
        unknown = sorted(set(s.upper() for s in select) - known)
        print(f"repro-lint: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    project, findings = run_paths(args.paths, select=select)

    if args.write_baseline:
        write_baseline(Path(args.baseline), findings)
        print(f"repro-lint: wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    if args.no_baseline:
        fresh = list(findings)
    else:
        baseline = load_baseline(Path(args.baseline))
        fresh = apply_baseline(findings, baseline)

    if args.format == "json":
        rendered = json.dumps(report_json(project, fresh), indent=2)
    else:
        rendered = report_text(project, fresh)
    print(rendered)
    if args.out:
        Path(args.out).write_text(rendered + "\n", encoding="utf-8")

    if args.report_only:
        return 0
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())
