"""repro-lint: AST-based invariant checkers for the repro codebase.

The linter enforces cross-cutting conventions that ordinary tests cannot
see: lock discipline around shared mutable state (RL001), the DiskStats
I/O-accounting contract (RL002), spawn-safety of serving payloads
(RL003), executor registry/router completeness (RL004), and the
deprecation firewall around legacy query shims (RL005).

Usage::

    python -m tools.repro_lint src/ --format text
    python -m tools.repro_lint src/ --format json --out report.json
    python -m tools.repro_lint benchmarks/ examples/ --report-only

Inline controls (see docs/invariants.md):

``# guarded_by: <lock>``
    On a ``self.<field> = ...`` assignment in ``__init__``: declares the
    field as protected by ``self.<lock>`` (RL001).

``# repro-lint: holds=<lock>``
    On a ``def`` line (or the line above): the method is only ever
    called with ``self.<lock>`` already held (RL001).

``# repro-lint: disable=RL001[,RL002...]`` / ``disable=all``
    Suppresses findings on that line (or the statement starting there).

``# repro-lint: payload``
    On a class definition: marks a dataclass as a spawn-shipped payload
    even if its name does not end in ``Payload`` (RL003).
"""

from tools.repro_lint.core import (  # noqa: F401
    Finding,
    Project,
    Rule,
    all_rules,
    load_baseline,
    run_paths,
    write_baseline,
)

__version__ = "1.0.0"

__all__ = [
    "Finding",
    "Project",
    "Rule",
    "all_rules",
    "load_baseline",
    "run_paths",
    "write_baseline",
    "__version__",
]
