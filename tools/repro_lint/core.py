"""Framework core for repro-lint: source model, rule registry, baseline.

Design notes
------------
Every rule sees the whole :class:`Project` (all parsed files) rather than
one file at a time, because several invariants are inherently
cross-file: RL003 walks dataclass annotations across modules, RL004
cross-checks the executor registry against the router, the CLI and the
docs.  Per-file rules simply iterate ``project.files``.

Comments are recovered with :mod:`tokenize` (the ``ast`` module drops
them) and indexed by line so that rules can look up ``# guarded_by:``
declarations, ``# repro-lint: holds=`` method annotations and
``# repro-lint: disable=`` suppressions in O(1).

Baselines fingerprint findings by ``(rule, path, message)`` — without
line numbers — so that unrelated edits shifting code around do not churn
the baseline file.  Each baseline entry carries a free-form
``justification`` string; the committed baseline doubles as the ledger
of grandfathered debt.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

JSON_SCHEMA_VERSION = 1

_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s|]+)")

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    severity: str
    path: str  # POSIX-style, relative to the scan root where possible
    line: int
    col: int
    message: str
    # First line of the enclosing statement, when the finding sits inside a
    # multi-line statement: suppressions there cover the whole statement.
    # Not part of the JSON schema or the baseline fingerprint.
    anchor_line: Optional[int] = field(default=None, compare=False)

    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.rule}|{self.path}|{self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"


class SourceFile:
    """A parsed Python source file plus its comment/suppression index."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        # line -> full comment text (including the leading '#')
        self.comments: Dict[int, str] = {}
        # line -> set of rule ids disabled there ("all" disables everything)
        self.suppressions: Dict[int, Set[str]] = {}
        try:
            self.tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:  # pragma: no cover - exercised via fixtures
            self.parse_error = exc
        self._index_comments()

    def _index_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    line = tok.start[0]
                    existing = self.comments.get(line)
                    self.comments[line] = (existing + " " + tok.string) if existing else tok.string
        except (tokenize.TokenError, SyntaxError, IndentationError):
            # Fall back to a crude per-line scan; good enough for comments
            # that start a line or follow code without embedded '#' strings.
            for i, raw in enumerate(self.lines, start=1):
                stripped = raw.lstrip()
                if stripped.startswith("#"):
                    self.comments[i] = stripped
        for line, comment in self.comments.items():
            m = _DISABLE_RE.search(comment)
            if m:
                rules = {
                    part.strip().upper() if part.strip().lower() != "all" else "all"
                    for part in re.split(r"[,|]", m.group(1))
                    if part.strip()
                }
                self.suppressions[line] = rules

    def comment_on(self, line: int) -> str:
        """Comment text attached to *line* (empty string when none)."""
        return self.comments.get(line, "")

    def comment_in_range(self, start: int, end: int) -> str:
        """Concatenated comments over an inclusive line range."""
        parts = [self.comments[i] for i in range(start, end + 1) if i in self.comments]
        return " ".join(parts)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True if *rule* is disabled on *line* or on a comment-only line
        immediately above it."""
        for candidate in (line, line - 1):
            rules = self.suppressions.get(candidate)
            if not rules:
                continue
            if candidate == line - 1:
                # Only honor the previous line when it is a pure comment
                # line; otherwise a disable on an unrelated statement
                # would leak downward.
                raw = self.lines[candidate - 1].lstrip() if candidate - 1 < len(self.lines) else ""
                if not raw.startswith("#"):
                    continue
            if "all" in rules or rule.upper() in rules:
                return True
        return False


class Project:
    """All source files under the scanned paths, plus lookup helpers."""

    def __init__(self, files: Sequence[SourceFile], roots: Sequence[Path]) -> None:
        self.files = list(files)
        self.roots = list(roots)
        self._by_rel = {f.rel: f for f in self.files}

    def find(self, suffix: str) -> Optional[SourceFile]:
        """First file whose relative path ends with *suffix*."""
        norm = suffix.replace("\\", "/")
        for f in self.files:
            if f.rel == norm or f.rel.endswith("/" + norm) or f.rel.endswith(norm):
                return f
        return None

    def iter_parsed(self) -> Iterator[SourceFile]:
        for f in self.files:
            if f.tree is not None:
                yield f


class Rule:
    """Base class for checkers.  Subclasses set id/name/severity and
    implement :meth:`check`."""

    id: str = "RL000"
    name: str = "unnamed"
    severity: str = "error"
    description: str = ""

    def check(self, project: Project) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self,
        src: SourceFile,
        line: int,
        col: int,
        message: str,
        anchor: Optional[int] = None,
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=src.rel,
            line=line,
            col=col,
            message=message,
            anchor_line=anchor,
        )


_RULES: Dict[str, Rule] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"rule {rule.id}: bad severity {rule.severity!r}")
    _RULES[rule.id] = rule
    return cls


def all_rules() -> Dict[str, Rule]:
    _ensure_rules_loaded()
    return dict(_RULES)


def _ensure_rules_loaded() -> None:
    # Import for side effect: each rule module registers itself.
    from tools.repro_lint import rules  # noqa: F401


# ---------------------------------------------------------------------------
# Parent-pointer walking (ast has no parent links)
# ---------------------------------------------------------------------------


def attach_parents(tree: ast.AST) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    cur = getattr(node, "_repro_parent", None)
    while cur is not None:
        yield cur
        cur = getattr(cur, "_repro_parent", None)


def enclosing_statement_line(node: ast.AST) -> int:
    """Line of the outermost simple statement containing *node* — used so a
    suppression on the first line of a multi-line statement covers the
    whole statement."""
    for anc in ancestors(node):
        if isinstance(anc, ast.stmt):
            return getattr(anc, "lineno", getattr(node, "lineno", 1))
    return getattr(node, "lineno", 1)


# ---------------------------------------------------------------------------
# File discovery / engine
# ---------------------------------------------------------------------------


def _discover(paths: Sequence[str]) -> List[Tuple[Path, str]]:
    out: List[Tuple[Path, str]] = []
    seen: Set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_file() and p.suffix == ".py":
            rp = p.resolve()
            if rp not in seen:
                seen.add(rp)
                out.append((p, p.as_posix()))
        elif p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if "__pycache__" in f.parts:
                    continue
                rf = f.resolve()
                if rf not in seen:
                    seen.add(rf)
                    out.append((f, f.as_posix()))
    return out


def build_project(paths: Sequence[str]) -> Project:
    files: List[SourceFile] = []
    for path, rel in _discover(paths):
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):  # pragma: no cover - defensive
            continue
        src = SourceFile(path, rel, text)
        if src.tree is not None:
            attach_parents(src.tree)
        files.append(src)
    return Project(files, [Path(p) for p in paths])


def run_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
) -> Tuple[Project, List[Finding]]:
    """Scan *paths* with the selected rules (default: all registered).

    Returns the project and findings sorted by (path, line, rule), with
    inline suppressions already applied.  Syntax errors surface as
    RL000 findings so broken files fail the gate rather than being
    silently skipped.
    """
    _ensure_rules_loaded()
    project = build_project(paths)
    wanted = {s.upper() for s in select} if select else None
    findings: List[Finding] = []
    for src in project.files:
        if src.parse_error is not None:
            findings.append(
                Finding(
                    rule="RL000",
                    severity="error",
                    path=src.rel,
                    line=src.parse_error.lineno or 1,
                    col=(src.parse_error.offset or 1) - 1,
                    message=f"syntax error: {src.parse_error.msg}",
                )
            )
    for rule_id, rule in sorted(_RULES.items()):
        if wanted is not None and rule_id not in wanted:
            continue
        for f in rule.check(project):
            src = project._by_rel.get(f.path)
            if src is not None and src.is_suppressed(f.rule, f.line):
                continue
            if (
                src is not None
                and f.anchor_line is not None
                and f.anchor_line != f.line
                and src.is_suppressed(f.rule, f.anchor_line)
            ):
                continue
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return project, findings


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


@dataclass
class Baseline:
    """Grandfathered findings: fingerprint -> allowed count."""

    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def allowed(self, fingerprint: str) -> int:
        entry = self.entries.get(fingerprint)
        if not entry:
            return 0
        return int(entry.get("count", 1))


def load_baseline(path: Path) -> Baseline:
    if not path.exists():
        return Baseline()
    data = json.loads(path.read_text(encoding="utf-8"))
    entries: Dict[str, Dict[str, object]] = {}
    for item in data.get("findings", []):
        fp = f"{item['rule']}|{item['path']}|{item['message']}"
        entries[fp] = {
            "count": int(item.get("count", 1)),
            "justification": item.get("justification", ""),
        }
    return Baseline(entries)


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    counts: Counter = Counter(f.fingerprint() for f in findings)
    reps: Dict[str, Finding] = {}
    for f in findings:
        reps.setdefault(f.fingerprint(), f)
    items = []
    for fp, count in sorted(counts.items()):
        f = reps[fp]
        items.append(
            {
                "rule": f.rule,
                "path": f.path,
                "message": f.message,
                "count": count,
                "justification": "",
            }
        )
    payload = {"version": JSON_SCHEMA_VERSION, "findings": items}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(findings: Sequence[Finding], baseline: Baseline) -> List[Finding]:
    """Return the findings NOT covered by the baseline."""
    budget = {fp: baseline.allowed(fp) for fp in {f.fingerprint() for f in findings}}
    fresh: List[Finding] = []
    for f in findings:
        fp = f.fingerprint()
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
        else:
            fresh.append(f)
    return fresh


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def report_json(project: Project, findings: Sequence[Finding]) -> Dict[str, object]:
    by_rule: Counter = Counter(f.rule for f in findings)
    return {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": len(project.files),
        "findings": [f.to_json() for f in findings],
        "summary": {
            "total": len(findings),
            "errors": sum(1 for f in findings if f.severity == "error"),
            "warnings": sum(1 for f in findings if f.severity == "warning"),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }


def report_text(project: Project, findings: Sequence[Finding]) -> str:
    lines = [f.render() for f in findings]
    lines.append(
        f"repro-lint: {len(findings)} finding(s) in {len(project.files)} file(s)"
        if findings
        else f"repro-lint: clean ({len(project.files)} file(s) scanned)"
    )
    return "\n".join(lines)
