"""Project-wide symbol table shared by every repro-lint rule.

One pass over a :class:`~tools.repro_lint.core.Project` produces a
:class:`SymbolTable`: modules with their import maps, classes with
resolved attribute types and lock inventories, functions with their
``# repro-lint: holds=`` / ``# repro-lint: charged`` annotations, and
the statically-rebuilt executor registry that RL004 pioneered.  The
interprocedural rules (RL006-RL009) build their call graph on top of
this table; the older intraprocedural rules (RL001-RL005) consume the
per-class extracts so every rule agrees on what a lock, a guarded
field, or a registered executor *is*.

Resolution here is deliberately static and conservative:

* attribute types come from ``__init__`` assignments whose right-hand
  side is a project-class constructor call or an annotated parameter
  (string annotations and ``X | None`` unions are unwrapped);
* lock attributes are ``self.x = threading.Lock()`` / ``RLock()``
  assignments (the kind distinguishes reentrant from plain locks);
* anything that cannot be resolved is simply absent — callers such as
  the call-graph builder record their own explicit ``unresolved``
  entries instead of guessing.

The table is cached per :class:`Project` instance; building it twice is
harmless but wasteful.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.repro_lint.core import Project, SourceFile

#: ``# guarded_by: <lock>`` on a ``self.<field> = ...`` line in ``__init__``.
GUARDED_RE = re.compile(r"#\s*guarded_by:\s*(?:self\.)?([A-Za-z_]\w*)")

#: ``# repro-lint: holds=<lock>[,<lock>...]`` on/above a ``def`` line.
HOLDS_RE = re.compile(
    r"#\s*repro-lint:\s*holds=((?:(?:self\.)?[A-Za-z_]\w*)(?:\s*,\s*(?:self\.)?[A-Za-z_]\w*)*)"
)

#: ``# repro-lint: charged`` on/above a ``def`` line: the function's raw
#: page accesses are pre-charged by an audited sibling call (RL007).
CHARGED_RE = re.compile(r"#\s*repro-lint:\s*charged\b")

LOCK_FACTORY_KINDS = {"Lock": "lock", "RLock": "rlock"}

#: The raw-I/O contract, shared by RL002 (syntactic firewall: no raw disk
#: calls outside storage/) and RL007 (dataflow proof: every executor path
#: to a raw read traverses a charging function).  One definition so the
#: two rules can never disagree about what counts as "raw".
RAW_IO_METHODS = frozenset({"read_page", "charge_reads", "extent_bytes", "write_page"})
RAW_BUFFER_ATTRS = frozenset({"_buf", "_used"})

#: The read-side subset of :data:`RAW_IO_METHODS` that RL007 proves
#: charging coverage for (writes and the charging entry point itself are
#: not "uncharged read" sinks).
RAW_READ_METHODS = frozenset({"read_page", "extent_bytes"})


def module_name_for(rel: str) -> str:
    """Dotted module name for a repo-relative posix path.

    ``src/repro/core/query.py`` -> ``repro.core.query``;
    ``tools/repro_lint/core.py`` -> ``tools.repro_lint.core``;
    package ``__init__.py`` files map to the package name.
    """
    parts = list(rel.split("/"))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    # Drop everything up to (and including) the last `src` layout root.
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "src":
            parts = parts[i + 1 :]
            break
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    parts = [p for p in parts if p not in ("", ".")]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One top-level function or method; nested defs belong to their parent."""

    name: str
    qualname: str  # module.func or module.Class.func
    module: str
    cls: Optional[str]  # owning class qualname, or None
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    file: SourceFile
    holds: Tuple[str, ...] = ()  # lock attr names from holds= annotation
    charged: bool = False  # repro-lint: charged annotation
    return_class: Optional[str] = None  # resolved class qualname


@dataclass
class ClassInfo:
    name: str
    qualname: str
    module: str
    node: ast.ClassDef
    file: SourceFile
    bases: Tuple[str, ...] = ()  # raw base expressions (dotted names)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)  # attr -> class qualname
    lock_attrs: Dict[str, str] = field(default_factory=dict)  # attr -> lock|rlock
    #: field -> (guarding lock attr, declaration line) from `# guarded_by:`
    guarded_fields: Dict[str, Tuple[str, int]] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    name: str
    file: SourceFile
    imports: Dict[str, str] = field(default_factory=dict)  # local name -> dotted target
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    top_level_names: Set[str] = field(default_factory=set)


@dataclass
class ExecutorRegistration:
    kind: str
    name: str
    func: FunctionInfo


@dataclass
class SymbolTable:
    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)  # incl. methods
    classes_by_name: Dict[str, List[ClassInfo]] = field(default_factory=dict)
    methods_by_name: Dict[str, List[FunctionInfo]] = field(default_factory=dict)
    #: statically rebuilt ``@register_executor(kind, name)`` registry
    executors: List[ExecutorRegistration] = field(default_factory=list)
    #: registrations whose arguments are not string literals
    dynamic_registrations: List[Tuple[SourceFile, int]] = field(default_factory=list)

    # -- resolution helpers -------------------------------------------------

    def resolve_class_name(self, name: str, module: str) -> Optional[ClassInfo]:
        """Resolve a (possibly dotted) class name seen in *module*."""
        mod = self.modules.get(module)
        head, _, rest = name.partition(".")
        if mod is not None:
            if not rest and head in mod.classes:
                return mod.classes[head]
            target = mod.imports.get(head)
            if target is not None:
                dotted = target + ("." + rest if rest else "")
                if dotted in self.classes:
                    return self.classes[dotted]
                # `import repro.core.st_index as m; m.STIndex`
                owner = self.modules.get(target)
                if owner is not None and rest in owner.classes:
                    return owner.classes[rest]
        if not rest:
            candidates = self.classes_by_name.get(head, [])
            if len(candidates) == 1:
                return candidates[0]
        elif name in self.classes:
            return self.classes[name]
        return None

    def method_on(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Look *name* up on *cls* and (project-resolvable) bases."""
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            cur = stack.pop(0)
            if cur.qualname in seen:
                continue
            seen.add(cur.qualname)
            if name in cur.methods:
                return cur.methods[name]
            for base in cur.bases:
                resolved = self.resolve_class_name(base, cur.module)
                if resolved is not None:
                    stack.append(resolved)
        return None

    def lock_owner(self, attr: str) -> Optional[Tuple[ClassInfo, str]]:
        """The unique class owning a lock attribute named *attr*, if any."""
        owners = [
            (cls, cls.lock_attrs[attr])
            for cls in self.classes.values()
            if attr in cls.lock_attrs
        ]
        if len(owners) == 1:
            return owners[0]
        return None


# ---------------------------------------------------------------------------
# extraction


def _comment_on_or_above(sf: SourceFile, node: ast.AST) -> str:
    """Comment text on/above a ``def``, first decorator included."""
    decorators = getattr(node, "decorator_list", [])
    first = decorators[0].lineno if decorators else node.lineno
    return sf.comment_in_range(first - 1, node.lineno)


def _holds_for(sf: SourceFile, node: ast.AST) -> Tuple[str, ...]:
    blob = _comment_on_or_above(sf, node)
    out = []
    for match in HOLDS_RE.finditer(blob):
        for part in match.group(1).split(","):
            name = part.strip().removeprefix("self.")
            if name:
                out.append(name)
    return tuple(out)


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        head = _dotted(node.value)
        return f"{head}.{node.attr}" if head else None
    return None


def _lock_kind(value: ast.AST) -> Optional[str]:
    if not isinstance(value, ast.Call):
        return None
    name = _dotted(value.func)
    if name is None:
        return None
    return LOCK_FACTORY_KINDS.get(name.rsplit(".", 1)[-1])


def _unwrap_annotation(node: ast.AST) -> Iterator[ast.AST]:
    """Yield candidate class-name expressions inside an annotation."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return
        yield from _unwrap_annotation(parsed)
    elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        yield from _unwrap_annotation(node.left)
        yield from _unwrap_annotation(node.right)
    elif isinstance(node, ast.Subscript):
        # Optional[X] / list[X]: look inside, the container itself is not
        # a project class.
        name = _dotted(node.value)
        if name and name.rsplit(".", 1)[-1] == "Optional":
            yield from _unwrap_annotation(node.slice)
    elif isinstance(node, (ast.Name, ast.Attribute)):
        name = _dotted(node)
        if name and name != "None":
            yield node


def annotation_class(
    table: SymbolTable, module: str, node: Optional[ast.AST]
) -> Optional[str]:
    """Resolve an annotation to a project class qualname, if possible."""
    if node is None:
        return None
    for candidate in _unwrap_annotation(node):
        name = _dotted(candidate)
        if name is None:
            continue
        cls = table.resolve_class_name(name, module)
        if cls is not None:
            return cls.qualname
    return None


def _param_annotations(node: ast.AST) -> Dict[str, ast.AST]:
    out: Dict[str, ast.AST] = {}
    args = getattr(node, "args", None)
    if args is None:
        return out
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.annotation is not None:
            out[arg.arg] = arg.annotation
    return out


def _register_executor_call(dec: ast.AST) -> Optional[ast.Call]:
    if isinstance(dec, ast.Call):
        name = _dotted(dec.func)
        if name and name.rsplit(".", 1)[-1] == "register_executor":
            return dec
    return None


def _collect_functions(
    sf: SourceFile,
    module: str,
    body: Sequence[ast.stmt],
    cls: Optional[ClassInfo],
) -> Dict[str, FunctionInfo]:
    out: Dict[str, FunctionInfo] = {}
    prefix = cls.qualname if cls is not None else module
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[stmt.name] = FunctionInfo(
                name=stmt.name,
                qualname=f"{prefix}.{stmt.name}",
                module=module,
                cls=cls.qualname if cls is not None else None,
                node=stmt,
                file=sf,
                holds=_holds_for(sf, stmt),
                charged=bool(CHARGED_RE.search(_comment_on_or_above(sf, stmt))),
            )
    return out


def top_level_names(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (defs, classes, assignments,
    imports), including conditional branches (RL005's export check and
    the symbol table share this definition)."""
    names: Set[str] = set()

    def collect(body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    if isinstance(t, ast.Name):
                        names.add(t.id)
                    elif isinstance(t, (ast.Tuple, ast.List)):
                        for e in t.elts:
                            if isinstance(e, ast.Name):
                                names.add(e.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, (ast.If, ast.Try)):
                collect(stmt.body)
                for handler in getattr(stmt, "handlers", []):
                    collect(handler.body)
                collect(stmt.orelse)
                collect(getattr(stmt, "finalbody", []))

    collect(tree.body)
    return names


def _module_imports(module: str, tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    package = module.rsplit(".", 1)[0] if "." in module else ""
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
                if alias.asname:
                    imports[alias.asname] = alias.name
        elif isinstance(stmt, ast.ImportFrom):
            base = stmt.module or ""
            if stmt.level:
                parts = package.split(".") if package else []
                parts = parts[: len(parts) - (stmt.level - 1)] if stmt.level > 1 else parts
                base = ".".join([p for p in parts if p] + ([base] if base else []))
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def _infer_value_class(
    table: SymbolTable,
    module: str,
    value: ast.AST,
    params: Dict[str, ast.AST],
) -> Optional[str]:
    """Class qualname of an assigned expression, or None."""
    if isinstance(value, ast.Call):
        name = _dotted(value.func)
        if name is not None:
            cls = table.resolve_class_name(name, module)
            if cls is not None:
                return cls.qualname
        return None
    if isinstance(value, ast.Name) and value.id in params:
        return annotation_class(table, module, params[value.id])
    if isinstance(value, ast.IfExp):
        return _infer_value_class(table, module, value.body, params) or _infer_value_class(
            table, module, value.orelse, params
        )
    if isinstance(value, ast.BoolOp):
        for operand in value.values:
            got = _infer_value_class(table, module, operand, params)
            if got:
                return got
    return None


def _populate_class_details(table: SymbolTable) -> None:
    """Second pass: attribute types, lock attrs, guarded fields, returns."""
    for cls in table.classes.values():
        for method in cls.methods.values():
            params = _param_annotations(method.node)
            for stmt in ast.walk(method.node):
                target: Optional[ast.AST] = None
                value: Optional[ast.AST] = None
                annotation: Optional[ast.AST] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value, annotation = stmt.target, stmt.value, stmt.annotation
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                if value is not None:
                    kind = _lock_kind(value)
                    if kind is not None:
                        cls.lock_attrs.setdefault(attr, kind)
                        continue
                inferred = None
                if value is not None:
                    inferred = _infer_value_class(table, cls.module, value, params)
                if inferred is None and annotation is not None:
                    inferred = annotation_class(table, cls.module, annotation)
                if inferred is not None:
                    cls.attr_types.setdefault(attr, inferred)
        init = cls.methods.get("__init__")
        if init is not None:
            for stmt in ast.walk(init.node):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                names = [
                    t.attr
                    for t in targets
                    if isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                ]
                if not names:
                    continue
                end = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
                comment = cls.file.comment_in_range(stmt.lineno, end)
                match = GUARDED_RE.search(comment)
                if match:
                    for name in names:
                        cls.guarded_fields.setdefault(
                            name, (match.group(1), stmt.lineno)
                        )
    for fn in table.functions.values():
        returns = getattr(fn.node, "returns", None)
        fn.return_class = annotation_class(table, fn.module, returns)


def _collect_executors(table: SymbolTable) -> None:
    for fn in table.functions.values():
        for dec in getattr(fn.node, "decorator_list", []):
            call = _register_executor_call(dec)
            if call is None:
                continue
            args = list(call.args)
            consts = [
                a.value
                for a in args
                if isinstance(a, ast.Constant) and isinstance(a.value, str)
            ]
            if len(consts) == len(args) and len(consts) >= 2:
                table.executors.append(
                    ExecutorRegistration(kind=consts[0], name=consts[1], func=fn)
                )
            else:
                table.dynamic_registrations.append((fn.file, call.lineno))
    table.executors.sort(key=lambda r: (r.kind, r.name, r.func.qualname))
    table.dynamic_registrations.sort(key=lambda d: (d[0].rel, d[1]))


def build_symbol_table(project: Project) -> SymbolTable:
    table = SymbolTable()
    for sf in project.iter_parsed():
        module = module_name_for(sf.rel)
        assert sf.tree is not None
        info = ModuleInfo(name=module, file=sf)
        info.imports = _module_imports(module, sf.tree)
        info.top_level_names = top_level_names(sf.tree)
        info.functions = _collect_functions(sf, module, sf.tree.body, None)
        for stmt in sf.tree.body:
            if isinstance(stmt, ast.ClassDef):
                cls = ClassInfo(
                    name=stmt.name,
                    qualname=f"{module}.{stmt.name}",
                    module=module,
                    node=stmt,
                    file=sf,
                    bases=tuple(
                        b for b in (_dotted(base) for base in stmt.bases) if b
                    ),
                )
                cls.methods = _collect_functions(sf, module, stmt.body, cls)
                info.classes[stmt.name] = cls
        # Last-writer-wins keeps duplicate module names (rare in fixture
        # trees) deterministic without raising.
        table.modules[module] = info
        for cls in info.classes.values():
            table.classes[cls.qualname] = cls
            table.classes_by_name.setdefault(cls.name, []).append(cls)
            for m in cls.methods.values():
                table.functions[m.qualname] = m
                table.methods_by_name.setdefault(m.name, []).append(m)
        for fn in info.functions.values():
            table.functions[fn.qualname] = fn
    _populate_class_details(table)
    _collect_executors(table)
    return table


def symbol_table(project: Project) -> SymbolTable:
    """Cached accessor: one table per Project instance."""
    cached = getattr(project, "_symbol_table", None)
    if cached is None:
        cached = build_symbol_table(project)
        project._symbol_table = cached  # type: ignore[attr-defined]
    return cached
