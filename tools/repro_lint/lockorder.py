"""Interprocedural lock-order extraction (the RL006 engine).

A lock *node* is a class-qualified lock attribute — every instance of
``repro.storage.pagestore._PoolShard.lock`` is one node, the standard
lock-order abstraction.  Within each function the walker tracks the set
of locks held at every statement: ``with self.<lock>:`` blocks push a
lock for the duration of their body, and a ``# repro-lint: holds=``
annotation means the whole body runs with that lock already held.

Order edges ``A -> B`` are emitted when

* a ``with`` acquiring ``B`` executes while ``A`` is held (nested
  blocks), or
* a call executes while ``A`` is held and the callee *eventually*
  acquires ``B`` — "eventually" being a fixpoint of direct acquisitions
  over the call graph, so the edge sees through arbitrarily deep call
  chains, registry dispatch included.

Re-acquiring a reentrant lock (``threading.RLock``) is legal and emits
nothing; re-acquiring a plain ``Lock`` is reported as a self-deadlock.
Any cycle among distinct locks is a potential ABBA deadlock.

The whole graph serializes deterministically (sorted, no line numbers)
to ``tools/repro_lint/lock_order.json`` so CI can diff a fresh
extraction against the committed artifact.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.repro_lint.callgraph import CallGraph
from tools.repro_lint.symbols import ClassInfo, FunctionInfo, SymbolTable

MAX_WITNESSES = 4


@dataclass
class LockEdge:
    src: str
    dst: str
    witnesses: Set[str] = field(default_factory=set)


@dataclass
class LockProblem:
    """A finding-to-be: self-deadlock or unresolvable acquisition."""

    kind: str  # self_deadlock | unresolved_acquisition
    message: str
    file_rel: str
    line: int


@dataclass
class LockOrderGraph:
    locks: Dict[str, str] = field(default_factory=dict)  # name -> lock|rlock
    edges: Dict[Tuple[str, str], LockEdge] = field(default_factory=dict)
    problems: List[LockProblem] = field(default_factory=list)
    #: first acquisition site per lock, for anchoring cycle findings
    sites: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    def add_edge(self, src: str, dst: str, witness: str) -> None:
        edge = self.edges.setdefault((src, dst), LockEdge(src=src, dst=dst))
        edge.witnesses.add(witness)

    def cycles(self) -> List[List[str]]:
        """Strongly connected components with more than one lock, sorted."""
        adjacency: Dict[str, Set[str]] = {name: set() for name in self.locks}
        for (src, dst) in self.edges:
            adjacency.setdefault(src, set()).add(dst)
            adjacency.setdefault(dst, set())
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        out: List[List[str]] = []

        def strongconnect(v: str) -> None:
            # Iterative Tarjan: (node, iterator-position) frames.
            work = [(v, iter(sorted(adjacency[v])))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(sorted(adjacency[w]))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: List[str] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        component.append(w)
                        if w == node:
                            break
                    if len(component) > 1:
                        out.append(sorted(component))

        for name in sorted(adjacency):
            if name not in index:
                strongconnect(name)
        return sorted(out)

    def to_json(self, unresolved_calls: Sequence[str] = ()) -> Dict[str, object]:
        return {
            "version": 1,
            "locks": [
                {"name": name, "kind": self.locks[name]}
                for name in sorted(self.locks)
            ],
            "edges": [
                {
                    "from": edge.src,
                    "to": edge.dst,
                    "witnesses": sorted(edge.witnesses)[:MAX_WITNESSES],
                }
                for (_, _), edge in sorted(self.edges.items())
            ],
            "unresolved_calls": sorted(set(unresolved_calls)),
        }


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        head = _dotted(node.value)
        return f"{head}.{node.attr}" if head else None
    return None


def _class_lock(table: SymbolTable, cls: ClassInfo, attr: str) -> Optional[Tuple[str, str]]:
    """(lock qualname, kind) for `self.<attr>` on cls, following bases."""
    seen: Set[str] = set()
    stack = [cls]
    while stack:
        cur = stack.pop(0)
        if cur.qualname in seen:
            continue
        seen.add(cur.qualname)
        if attr in cur.lock_attrs:
            return (f"{cur.qualname}.{attr}", cur.lock_attrs[attr])
        for base in cur.bases:
            resolved = table.resolve_class_name(base, cur.module)
            if resolved is not None:
                stack.append(resolved)
    return None


def _resolve_lock_expr(
    table: SymbolTable, fn: FunctionInfo, expr: ast.AST
) -> Optional[Tuple[str, str]]:
    """Resolve a with-statement context expression to (lock node, kind)."""
    if not isinstance(expr, ast.Attribute):
        return None
    attr = expr.attr
    if isinstance(expr.value, ast.Name) and expr.value.id == "self" and fn.cls:
        cls = table.classes.get(fn.cls)
        if cls is not None:
            found = _class_lock(table, cls, attr)
            if found is not None:
                return found
    owner = table.lock_owner(attr)
    if owner is not None:
        cls, kind = owner
        return (f"{cls.qualname}.{attr}", kind)
    return None


def _looks_like_lock(expr: ast.AST) -> bool:
    """Heuristic: is this with-context plausibly a lock acquisition?"""
    name = _dotted(expr)
    if name is None:
        return False
    tail = name.rsplit(".", 1)[-1].lower()
    return "lock" in tail or "mutex" in tail


def _holds_locks(table: SymbolTable, fn: FunctionInfo) -> List[Tuple[str, str]]:
    out: List[Tuple[str, str]] = []
    for attr in fn.holds:
        resolved: Optional[Tuple[str, str]] = None
        if fn.cls:
            cls = table.classes.get(fn.cls)
            if cls is not None:
                resolved = _class_lock(table, cls, attr)
        if resolved is None:
            owner = table.lock_owner(attr)
            if owner is not None:
                resolved = (f"{owner[0].qualname}.{attr}", owner[1])
        if resolved is not None:
            out.append(resolved)
    return out


def _direct_acquisitions(
    table: SymbolTable, fn: FunctionInfo, graph_out: LockOrderGraph
) -> Set[str]:
    """All lock nodes this function acquires anywhere in its body."""
    out: Set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                resolved = _resolve_lock_expr(table, fn, item.context_expr)
                if resolved is not None:
                    name, kind = resolved
                    out.add(name)
                    graph_out.locks.setdefault(name, kind)
                    graph_out.sites.setdefault(
                        name, (fn.file.rel, item.context_expr.lineno)
                    )
                elif _looks_like_lock(item.context_expr):
                    graph_out.problems.append(
                        LockProblem(
                            kind="unresolved_acquisition",
                            message=(
                                f"cannot resolve lock acquisition "
                                f"`with {_dotted(item.context_expr)}:` in "
                                f"{fn.qualname} to a known lock attribute"
                            ),
                            file_rel=fn.file.rel,
                            line=item.context_expr.lineno,
                        )
                    )
    return out


def build_lock_order(table: SymbolTable, graph: CallGraph) -> LockOrderGraph:
    out = LockOrderGraph()

    # Register annotated locks and direct acquisitions.
    direct: Dict[str, Set[str]] = {}
    for fn in table.functions.values():
        direct[fn.qualname] = _direct_acquisitions(table, fn, out)
        for name, kind in _holds_locks(table, fn):
            out.locks.setdefault(name, kind)

    # Fixpoint: locks eventually acquired by each function.
    eventual: Dict[str, Set[str]] = {q: set(s) for q, s in direct.items()}
    changed = True
    while changed:
        changed = False
        for caller, callees in graph.edges.items():
            bucket = eventual.setdefault(caller, set())
            before = len(bucket)
            for callee in callees:
                bucket |= eventual.get(callee, set())
            if len(bucket) != before:
                changed = True

    # Per-function traversal with held-lock tracking.
    for fn in table.functions.values():
        _emit_edges(table, graph, fn, eventual, out)
    return out


def _emit_edges(
    table: SymbolTable,
    graph: CallGraph,
    fn: FunctionInfo,
    eventual: Dict[str, Set[str]],
    out: LockOrderGraph,
) -> None:
    callsites: Dict[int, List] = {}
    for site in graph.sites_by_caller.get(fn.qualname, []):
        callsites.setdefault(id(site.node), []).append(site)
    entry_held = tuple(name for name, _ in _holds_locks(table, fn))
    decorators = {id(d) for d in getattr(fn.node, "decorator_list", [])}

    def acquire(lock: str, kind: str, held: Tuple[str, ...], line: int) -> None:
        if lock in held:
            if kind == "lock":
                out.problems.append(
                    LockProblem(
                        kind="self_deadlock",
                        message=(
                            f"{fn.qualname} acquires non-reentrant lock "
                            f"{lock} while already holding it"
                        ),
                        file_rel=fn.file.rel,
                        line=line,
                    )
                )
            return
        for h in held:
            out.add_edge(h, lock, fn.qualname)

    def visit(node: ast.AST, held: Tuple[str, ...]) -> None:
        if id(node) in decorators:
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            new_held = held
            for item in node.items:
                for sub in ast.walk(item.context_expr):
                    if isinstance(sub, ast.Call):
                        handle_call(sub, held)
                resolved = _resolve_lock_expr(table, fn, item.context_expr)
                if resolved is not None:
                    name, kind = resolved
                    acquire(name, kind, new_held, item.context_expr.lineno)
                    if name not in new_held:
                        new_held = new_held + (name,)
            for child in node.body:
                visit(child, new_held)
            return
        if isinstance(node, ast.Call):
            handle_call(node, held)
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    def handle_call(node: ast.Call, held: Tuple[str, ...]) -> None:
        if not held:
            return
        for site in callsites.get(id(node), []):
            for lock in sorted(eventual.get(site.callee, set())):
                kind = out.locks.get(lock, "lock")
                if lock in held:
                    if kind == "lock":
                        out.problems.append(
                            LockProblem(
                                kind="self_deadlock",
                                message=(
                                    f"{fn.qualname} calls {site.callee} while "
                                    f"holding non-reentrant lock {lock}, which "
                                    f"the callee re-acquires"
                                ),
                                file_rel=fn.file.rel,
                                line=node.lineno,
                            )
                        )
                    continue
                for h in held:
                    out.add_edge(h, lock, f"{fn.qualname} -> {site.callee}")

    for child in ast.iter_child_nodes(fn.node):
        visit(child, entry_held)
