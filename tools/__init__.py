"""Developer tooling for the repro codebase (not shipped with the package)."""
