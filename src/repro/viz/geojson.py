"""GeoJSON export of reachable regions.

Result segments become LineString features in WGS84 (projected around the
paper's Shenzhen query location, §4.2.1), each carrying the segment id,
road level and — where the query computed one — the reachability
probability.  The convex hull of the region is emitted as a Polygon feature
so the exported file renders like the paper's dashed region outlines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.query import QueryResult
from repro.network.model import RoadNetwork
from repro.spatial.geometry import to_lonlat
from repro.spatial.hull import convex_hull


def _segment_feature(
    network: RoadNetwork, segment_id: int, probability: float | None
) -> dict[str, Any]:
    segment = network.segment(segment_id)
    coordinates = [list(to_lonlat(p)) for p in segment.shape]
    properties: dict[str, Any] = {
        "segment_id": segment_id,
        "level": segment.level.name.lower(),
        "length_m": round(segment.length, 1),
    }
    if probability is not None:
        properties["probability"] = round(probability, 4)
    return {
        "type": "Feature",
        "geometry": {"type": "LineString", "coordinates": coordinates},
        "properties": properties,
    }


def region_to_geojson(
    result: QueryResult, network: RoadNetwork, include_hull: bool = True
) -> dict[str, Any]:
    """Build a GeoJSON FeatureCollection for a query result."""
    features = [
        _segment_feature(network, sid, result.probabilities.get(sid))
        for sid in sorted(result.segments)
    ]
    if include_hull and len(result.segments) >= 3:
        hull = convex_hull(
            [network.segment(s).midpoint for s in result.segments]
        )
        if len(hull) >= 3:
            ring = [list(to_lonlat(p)) for p in hull]
            ring.append(ring[0])
            features.append(
                {
                    "type": "Feature",
                    "geometry": {"type": "Polygon", "coordinates": [ring]},
                    "properties": {"role": "region_outline"},
                }
            )
    return {"type": "FeatureCollection", "features": features}


def write_geojson(
    result: QueryResult,
    network: RoadNetwork,
    path: str | Path,
    include_hull: bool = True,
) -> Path:
    """Write a query result to a ``.geojson`` file and return its path."""
    path = Path(path)
    payload = region_to_geojson(result, network, include_hull=include_hull)
    path.write_text(json.dumps(payload, indent=2))
    return path
