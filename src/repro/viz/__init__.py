"""Region visualisation: GeoJSON export and ASCII maps.

Stand-ins for the paper's Leaflet screenshots (Figs 4.2, 4.4, 4.6, 4.9):
:mod:`~repro.viz.geojson` exports result regions as GeoJSON (loadable in
any web map), :mod:`~repro.viz.ascii_map` renders them in a terminal.
"""

from repro.viz.geojson import region_to_geojson, write_geojson
from repro.viz.ascii_map import render_region

__all__ = ["region_to_geojson", "write_geojson", "render_region"]
