"""Terminal rendering of reachable regions.

A quick visual check standing in for the paper's map screenshots: the road
network is rasterised onto a character grid, with reachable segments drawn
bright (``#`` primary, ``+`` secondary), unreachable ones dim (``.``), the
start location(s) as ``@`` and empty cells blank.
"""

from __future__ import annotations

from repro.core.query import QueryResult
from repro.network.model import RoadLevel, RoadNetwork
from repro.spatial.geometry import Point


def render_region(
    result: QueryResult,
    network: RoadNetwork,
    width: int = 72,
    height: int = 30,
) -> str:
    """Render a query result as ASCII art.

    Args:
        result: the query result to highlight.
        network: the road network to draw.
        width / height: character-grid dimensions.
    """
    bounds = network.bounds()
    if bounds.width <= 0 or bounds.height <= 0:
        return "(degenerate network)"
    grid = [[" "] * width for _ in range(height)]
    priority = {" ": 0, ".": 1, "+": 2, "#": 3, "@": 4}

    def cell_of(point: Point) -> tuple[int, int]:
        col = int((point.x - bounds.min_x) / bounds.width * (width - 1))
        row = int((bounds.max_y - point.y) / bounds.height * (height - 1))
        return max(0, min(height - 1, row)), max(0, min(width - 1, col))

    def draw(point: Point, char: str) -> None:
        row, col = cell_of(point)
        if priority[char] > priority[grid[row][col]]:
            grid[row][col] = char

    for segment in network.segments():
        reachable = segment.segment_id in result.segments
        if reachable:
            char = "#" if segment.level == RoadLevel.PRIMARY else "+"
        else:
            char = "."
        # Sample a few points along the segment so long roads draw as lines.
        start, end = segment.shape[0], segment.shape[-1]
        for i in range(5):
            t = i / 4.0
            draw(
                Point(
                    start.x + t * (end.x - start.x),
                    start.y + t * (end.y - start.y),
                ),
                char,
            )
    for start_segment in result.start_segments:
        if network.has_segment(start_segment):
            draw(network.segment(start_segment).midpoint, "@")
    legend = "@ start   # reachable primary   + reachable secondary   . unreachable"
    return "\n".join("".join(row) for row in grid) + "\n" + legend
