"""Synthetic road-network generators.

Substitute for the (proprietary) Shenzhen road network.  Three generators:

* :func:`grid_city` — a Manhattan grid with designated primary arterials,
  the workhorse for evaluation (rush-hour dynamics show up as the paper's
  highway-vs-local-road asymmetry, §4.2.1);
* :func:`ring_radial_city` — ring roads plus radial spokes, a common Chinese
  metropolis topology;
* :func:`random_planar_city` — a random planar graph via Delaunay
  triangulation, for robustness tests.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import math
import random

from repro.network.model import RoadLevel, RoadNetwork, RoadSegment
from repro.spatial.geometry import Point


def _add_road(
    network: RoadNetwork,
    node_a: int,
    node_b: int,
    level: RoadLevel,
    two_way: bool = True,
) -> list[int]:
    """Add a straight road between two nodes; returns created segment ids."""
    point_a = network.node_point(node_a)
    point_b = network.node_point(node_b)
    forward_id = network.next_segment_id()
    if two_way:
        backward_id = forward_id + 1
        network.add_segment(
            RoadSegment(
                segment_id=forward_id,
                start_node=node_a,
                end_node=node_b,
                shape=(point_a, point_b),
                level=level,
                twin_id=backward_id,
            )
        )
        network.add_segment(
            RoadSegment(
                segment_id=backward_id,
                start_node=node_b,
                end_node=node_a,
                shape=(point_b, point_a),
                level=level,
                twin_id=forward_id,
            )
        )
        return [forward_id, backward_id]
    network.add_segment(
        RoadSegment(
            segment_id=forward_id,
            start_node=node_a,
            end_node=node_b,
            shape=(point_a, point_b),
            level=level,
            twin_id=None,
        )
    )
    return [forward_id]


def grid_city(
    rows: int = 12,
    cols: int = 12,
    spacing: float = 500.0,
    primary_every: int = 4,
    seed: int = 7,
    jitter: float = 0.0,
    center_origin: bool = True,
) -> RoadNetwork:
    """A rows x cols Manhattan grid.

    Args:
        rows: number of horizontal streets (node rows).
        cols: number of vertical streets (node columns).
        spacing: distance between adjacent intersections, metres.
        primary_every: every k-th row/column is a PRIMARY arterial
            (0 disables arterials).
        seed: RNG seed for jitter.
        jitter: max random offset applied to intersection coordinates, to
            break exact grid symmetry (metres).
        center_origin: place the grid centre at (0, 0) so the paper's query
            location maps near the middle of the city.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid needs at least 2x2 intersections")
    rng = random.Random(seed)
    network = RoadNetwork()
    offset_x = -(cols - 1) * spacing / 2.0 if center_origin else 0.0
    offset_y = -(rows - 1) * spacing / 2.0 if center_origin else 0.0
    for row in range(rows):
        for col in range(cols):
            dx = rng.uniform(-jitter, jitter) if jitter else 0.0
            dy = rng.uniform(-jitter, jitter) if jitter else 0.0
            network.add_node(
                row * cols + col,
                Point(offset_x + col * spacing + dx, offset_y + row * spacing + dy),
            )

    def level_for(row: int | None, col: int | None) -> RoadLevel:
        if primary_every and row is not None and row % primary_every == 0:
            return RoadLevel.PRIMARY
        if primary_every and col is not None and col % primary_every == 0:
            return RoadLevel.PRIMARY
        return RoadLevel.SECONDARY

    for row in range(rows):
        for col in range(cols):
            node = row * cols + col
            if col + 1 < cols:
                _add_road(network, node, node + 1, level_for(row, None))
            if row + 1 < rows:
                _add_road(network, node, node + cols, level_for(None, col))
    return network


def ring_radial_city(
    rings: int = 4,
    spokes: int = 8,
    ring_spacing: float = 800.0,
    seed: int = 7,
) -> RoadNetwork:
    """Concentric ring roads connected by radial spokes.

    Rings are PRIMARY (they model urban expressway loops); spokes alternate
    primary/secondary.  A centre node joins the innermost spoke ends.
    """
    if rings < 1 or spokes < 3:
        raise ValueError("need >= 1 ring and >= 3 spokes")
    network = RoadNetwork()
    network.add_node(0, Point(0.0, 0.0))
    node_id = 1
    ring_nodes: list[list[int]] = []
    for ring in range(1, rings + 1):
        radius = ring * ring_spacing
        nodes = []
        for spoke in range(spokes):
            angle = 2.0 * math.pi * spoke / spokes
            network.add_node(
                node_id, Point(radius * math.cos(angle), radius * math.sin(angle))
            )
            nodes.append(node_id)
            node_id += 1
        ring_nodes.append(nodes)
    for ring, nodes in enumerate(ring_nodes):
        for i, node in enumerate(nodes):
            _add_road(network, node, nodes[(i + 1) % spokes], RoadLevel.PRIMARY)
        for i, node in enumerate(nodes):
            level = RoadLevel.PRIMARY if i % 2 == 0 else RoadLevel.SECONDARY
            inner = 0 if ring == 0 else ring_nodes[ring - 1][i]
            _add_road(network, inner, node, level)
    return network


def random_planar_city(
    num_nodes: int = 80,
    extent: float = 5000.0,
    seed: int = 7,
    primary_fraction: float = 0.15,
) -> RoadNetwork:
    """A random planar network from a Delaunay triangulation of random sites.

    Long triangulation edges (top ``primary_fraction`` by length) become
    PRIMARY roads, mimicking arterials that cut across neighbourhoods.
    """
    from scipy.spatial import Delaunay  # local import: scipy only needed here
    import numpy as np

    if num_nodes < 4:
        raise ValueError("need >= 4 nodes for a triangulation")
    rng = np.random.default_rng(seed)
    sites = rng.uniform(-extent / 2.0, extent / 2.0, size=(num_nodes, 2))
    triangulation = Delaunay(sites)
    network = RoadNetwork()
    for i, (x, y) in enumerate(sites):
        network.add_node(i, Point(float(x), float(y)))
    edges: set[tuple[int, int]] = set()
    for simplex in triangulation.simplices:
        for i in range(3):
            a, b = int(simplex[i]), int(simplex[(i + 1) % 3])
            edges.add((min(a, b), max(a, b)))
    lengths = {
        edge: network.node_point(edge[0]).distance_to(network.node_point(edge[1]))
        for edge in edges
    }
    cutoff_rank = max(1, int(len(edges) * primary_fraction))
    primary_edges = set(
        sorted(edges, key=lambda e: lengths[e], reverse=True)[:cutoff_rank]
    )
    for edge in sorted(edges):
        level = RoadLevel.PRIMARY if edge in primary_edges else RoadLevel.SECONDARY
        _add_road(network, edge[0], edge[1], level)
    return network
