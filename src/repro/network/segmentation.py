"""Road re-segmentation (§3.1).

The pre-processing component "re-segments the original road network based on
the given spatial granularity (e.g., 500 meters)": long roads are chopped
into pieces no longer than the granularity by inserting new intersection
points, so that reachable regions have fine boundaries instead of ending
mid-highway.

Two-way roads are re-segmented as pairs so that each new piece keeps a twin
in the opposite direction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.network.model import RoadNetwork, RoadSegment
from repro.spatial.geometry import Point, interpolate_along, polyline_length


@dataclass
class ResegmentationResult:
    """Output of :func:`resegment`.

    Attributes:
        network: the re-segmented road network.
        piece_map: original segment id -> ordered list of new segment ids.
        origin_map: new segment id -> original segment id.
    """

    network: RoadNetwork
    piece_map: dict[int, list[int]] = field(default_factory=dict)
    origin_map: dict[int, int] = field(default_factory=dict)


def _split_points(shape: tuple[Point, ...], granularity: float) -> list[Point]:
    """Cut points along ``shape`` every ``granularity`` metres (exclusive ends)."""
    length = polyline_length(shape)
    pieces = max(1, math.ceil(length / granularity))
    if pieces == 1:
        return []
    step = length / pieces
    return [interpolate_along(shape, step * i) for i in range(1, pieces)]


def resegment(network: RoadNetwork, granularity: float = 500.0) -> ResegmentationResult:
    """Re-segment ``network`` so no segment exceeds ``granularity`` metres.

    Args:
        network: original road network.
        granularity: maximum segment length in metres.

    Returns:
        A :class:`ResegmentationResult` with the new network and id mappings.
    """
    if granularity <= 0:
        raise ValueError(f"granularity must be positive, got {granularity}")
    out = RoadNetwork()
    for node_id, point in network.nodes():
        out.add_node(node_id, point)

    result = ResegmentationResult(network=out)
    next_segment = 0
    handled: set[int] = set()

    def add_chain(
        segment: RoadSegment, waypoints: list[Point], twin_ids: list[int] | None
    ) -> list[int]:
        """Create the chain of pieces for one directed segment."""
        nonlocal next_segment
        chain_nodes = [segment.start_node]
        for waypoint in waypoints:
            node_id = out.next_node_id()
            out.add_node(node_id, waypoint)
            chain_nodes.append(node_id)
        chain_nodes.append(segment.end_node)
        created: list[int] = []
        for i in range(len(chain_nodes) - 1):
            piece_id = next_segment
            next_segment += 1
            twin = twin_ids[len(chain_nodes) - 2 - i] if twin_ids else None
            out.add_segment(
                RoadSegment(
                    segment_id=piece_id,
                    start_node=chain_nodes[i],
                    end_node=chain_nodes[i + 1],
                    shape=(
                        out.node_point(chain_nodes[i]),
                        out.node_point(chain_nodes[i + 1]),
                    ),
                    level=segment.level,
                    twin_id=twin,
                )
            )
            created.append(piece_id)
        return created

    for segment in sorted(network.segments(), key=lambda s: s.segment_id):
        if segment.segment_id in handled:
            continue
        waypoints = _split_points(segment.shape, granularity)
        if segment.twin_id is None or not network.has_segment(segment.twin_id):
            pieces = add_chain(segment, waypoints, None)
            result.piece_map[segment.segment_id] = pieces
            for piece in pieces:
                result.origin_map[piece] = segment.segment_id
            handled.add(segment.segment_id)
            continue
        # Two-way pair: build forward pieces first, reserving twin ids for
        # the backward chain which is created immediately after.
        twin = network.segment(segment.twin_id)
        count = len(waypoints) + 1
        forward_ids = list(range(next_segment, next_segment + count))
        backward_ids = list(range(next_segment + count, next_segment + 2 * count))
        pieces_fwd = add_chain(segment, waypoints, backward_ids)
        assert pieces_fwd == forward_ids
        # Backward chain reuses the same waypoints in reverse through the
        # shared intermediate nodes created above.  Reconstruct its chain by
        # walking forward pieces backwards.
        backward_waypoints = list(reversed(waypoints))
        # The backward chain must reuse the nodes created for the forward
        # chain instead of creating duplicates, so splice manually.
        chain_nodes = [twin.start_node]
        forward_nodes = [out.segment(pid).start_node for pid in forward_ids]
        forward_nodes.append(segment.end_node)
        interior = list(reversed(forward_nodes[1:-1]))
        chain_nodes.extend(interior)
        chain_nodes.append(twin.end_node)
        created: list[int] = []
        for i in range(len(chain_nodes) - 1):
            piece_id = next_segment
            next_segment += 1
            out.add_segment(
                RoadSegment(
                    segment_id=piece_id,
                    start_node=chain_nodes[i],
                    end_node=chain_nodes[i + 1],
                    shape=(
                        out.node_point(chain_nodes[i]),
                        out.node_point(chain_nodes[i + 1]),
                    ),
                    level=twin.level,
                    twin_id=forward_ids[len(chain_nodes) - 2 - i],
                )
            )
            created.append(piece_id)
        assert created == backward_ids
        del backward_waypoints  # documented intent; nodes drive the chain
        result.piece_map[segment.segment_id] = forward_ids
        result.piece_map[twin.segment_id] = backward_ids
        for piece in forward_ids:
            result.origin_map[piece] = segment.segment_id
        for piece in backward_ids:
            result.origin_map[piece] = twin.segment_id
        handled.add(segment.segment_id)
        handled.add(twin.segment_id)

    out.check_invariants()
    return result
