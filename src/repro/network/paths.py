"""Shortest paths over the segment graph.

MQMB's overlap-elimination rule needs the nearest seed segment to a
candidate (``argmin dis(r', b)``, §3.3.2); the thesis cites "shortest path
techniques" for this.  We provide both network (Dijkstra) distance and the
cheap Euclidean midpoint distance, plus full path reconstruction used by the
trajectory generator's trip mode and the examples.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.network.model import RoadNetwork

#: Cost model for traversing a segment: metres (distance mode) or seconds
#: (time mode).
CostFn = Callable[[int], float]


def dijkstra_from_segment(
    network: RoadNetwork,
    start_segment: int,
    cost: CostFn | None = None,
    max_cost: float = float("inf"),
    targets: set[int] | None = None,
) -> dict[int, float]:
    """Single-source shortest costs over the segment graph.

    The start segment costs 0 (the traveller is already on it); moving onto
    a successor pays that successor's cost.

    Args:
        network: road network.
        start_segment: source segment id.
        cost: per-segment traversal cost; defaults to segment length.
        max_cost: stop expanding beyond this total cost.
        targets: optional early-exit set — stop once all are settled.

    Returns:
        segment id -> minimal cost, for every settled segment.
    """
    if cost is None:
        cost = lambda sid: network.segment(sid).length  # noqa: E731
    remaining = set(targets) if targets else None
    dist: dict[int, float] = {}
    best: dict[int, float] = {start_segment: 0.0}
    heap: list[tuple[float, int]] = [(0.0, start_segment)]
    while heap:
        d, segment = heapq.heappop(heap)
        if d > best.get(segment, float("inf")):
            continue
        dist[segment] = d
        if remaining is not None:
            remaining.discard(segment)
            if not remaining:
                return dist
        for successor in network.successors(segment):
            step = cost(successor)
            if step == float("inf"):
                continue
            nd = d + step
            if nd > max_cost:
                continue
            if nd < best.get(successor, float("inf")):
                best[successor] = nd
                heapq.heappush(heap, (nd, successor))
    return dist


def network_distance(
    network: RoadNetwork, seg_a: int, seg_b: int, cost: CostFn | None = None
) -> float:
    """Shortest network cost from ``seg_a`` to ``seg_b`` (inf if unreachable)."""
    dist = dijkstra_from_segment(network, seg_a, cost=cost, targets={seg_b})
    return dist.get(seg_b, float("inf"))


def shortest_path_segments(
    network: RoadNetwork,
    start_segment: int,
    end_segment: int,
    cost: CostFn | None = None,
) -> list[int] | None:
    """The segment sequence of a shortest path, or None if unreachable."""
    if cost is None:
        cost = lambda sid: network.segment(sid).length  # noqa: E731
    best: dict[int, float] = {start_segment: 0.0}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, start_segment)]
    settled: set[int] = set()
    while heap:
        d, segment = heapq.heappop(heap)
        if segment in settled:
            continue
        settled.add(segment)
        if segment == end_segment:
            path = [segment]
            while path[-1] != start_segment:
                path.append(parent[path[-1]])
            path.reverse()
            return path
        for successor in network.successors(segment):
            step = cost(successor)
            if step == float("inf"):
                continue
            nd = d + step
            if nd < best.get(successor, float("inf")):
                best[successor] = nd
                parent[successor] = segment
                heapq.heappush(heap, (nd, successor))
    return None
