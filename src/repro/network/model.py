"""The directed road-network graph of §2.1.

Each road segment has a unique ID, an adjacency list of connected segments,
a list of intermediate shape points (two terminal points at the ends), a
length, a direction indicator (one-way or two-way — two-way roads are stored
as a pair of directed twin segments), a level (primary or secondary) and an
MBR describing its spatial range.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.spatial.geometry import (
    BBox,
    Point,
    point_segment_distance,
    polyline_length,
)


class RoadLevel(enum.IntEnum):
    """Road class: primary roads are the fast arterials/highways."""

    PRIMARY = 1
    SECONDARY = 2


@dataclass(frozen=True)
class RoadSegment:
    """One directed road segment.

    Attributes:
        segment_id: unique dense integer ID.
        start_node: graph node the segment leaves from.
        end_node: graph node the segment arrives at.
        shape: polyline from start to end (>= 2 points).
        level: primary (fast) or secondary (local) road.
        twin_id: the opposite-direction twin for a two-way road, or None
            for a one-way segment.
    """

    segment_id: int
    start_node: int
    end_node: int
    shape: tuple[Point, ...]
    level: RoadLevel = RoadLevel.SECONDARY
    twin_id: int | None = None

    def __post_init__(self) -> None:
        if len(self.shape) < 2:
            raise ValueError(f"segment {self.segment_id} needs >= 2 shape points")

    @property
    def length(self) -> float:
        return polyline_length(self.shape)

    @property
    def bbox(self) -> BBox:
        return BBox.from_points(self.shape)

    @property
    def midpoint(self) -> Point:
        return self.shape[0].midpoint(self.shape[-1])

    @property
    def one_way(self) -> bool:
        return self.twin_id is None

    def distance_to_point(self, point: Point) -> float:
        """Minimum distance from ``point`` to the segment polyline."""
        return min(
            point_segment_distance(point, self.shape[i], self.shape[i + 1])
            for i in range(len(self.shape) - 1)
        )

    def canonical_id(self) -> int:
        """Shared ID for a two-way pair; used to avoid double-counting length."""
        if self.twin_id is None:
            return self.segment_id
        return min(self.segment_id, self.twin_id)


class RoadNetwork:
    """A directed graph of road segments.

    Nodes are intersections (integer IDs mapped to planar points); edges are
    :class:`RoadSegment` objects.  Adjacency is maintained at both the node
    level (segments leaving/entering a node) and the segment level
    (:meth:`successors` / :meth:`predecessors` / :meth:`neighbors`).
    """

    def __init__(self) -> None:
        self._nodes: dict[int, Point] = {}
        self._segments: dict[int, RoadSegment] = {}
        self._out: dict[int, list[int]] = {}
        self._in: dict[int, list[int]] = {}
        self._csr = None
        self._neighbors: dict[int, tuple[int, ...]] = {}

    # -- construction ---------------------------------------------------------

    def add_node(self, node_id: int, point: Point) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node {node_id} already exists")
        self._nodes[node_id] = point
        self._out[node_id] = []
        self._in[node_id] = []

    def add_segment(self, segment: RoadSegment) -> None:
        if segment.segment_id in self._segments:
            raise ValueError(f"segment {segment.segment_id} already exists")
        if segment.start_node not in self._nodes:
            raise ValueError(f"unknown start node {segment.start_node}")
        if segment.end_node not in self._nodes:
            raise ValueError(f"unknown end node {segment.end_node}")
        self._segments[segment.segment_id] = segment
        self._out[segment.start_node].append(segment.segment_id)
        self._in[segment.end_node].append(segment.segment_id)
        self._csr = None  # adjacency changed; rebuild the CSR view lazily
        self._neighbors.clear()

    def next_node_id(self) -> int:
        return max(self._nodes, default=-1) + 1

    def next_segment_id(self) -> int:
        return max(self._segments, default=-1) + 1

    # -- accessors ------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def node_point(self, node_id: int) -> Point:
        return self._nodes[node_id]

    def nodes(self) -> Iterator[tuple[int, Point]]:
        return iter(self._nodes.items())

    def segment(self, segment_id: int) -> RoadSegment:
        return self._segments[segment_id]

    def segments(self) -> Iterator[RoadSegment]:
        return iter(self._segments.values())

    def segment_ids(self) -> Iterator[int]:
        return iter(self._segments.keys())

    def has_segment(self, segment_id: int) -> bool:
        return segment_id in self._segments

    def bounds(self) -> BBox:
        """Bounding box of the whole network."""
        return BBox.from_points(self._nodes.values())

    def total_length(self, deduplicate_twins: bool = True) -> float:
        """Total road length in metres.

        Args:
            deduplicate_twins: count each two-way road once (default), as a
                map-derived "road length" figure would.
        """
        if not deduplicate_twins:
            return sum(seg.length for seg in self._segments.values())
        seen: set[int] = set()
        total = 0.0
        for seg in self._segments.values():
            canonical = seg.canonical_id()
            if canonical in seen:
                continue
            seen.add(canonical)
            total += seg.length
        return total

    # -- topology ----------------------------------------------------------------

    def out_segments(self, node_id: int) -> list[int]:
        """Segments leaving ``node_id``."""
        return list(self._out[node_id])

    def in_segments(self, node_id: int) -> list[int]:
        """Segments arriving at ``node_id``."""
        return list(self._in[node_id])

    def successors(self, segment_id: int) -> list[int]:
        """Segments a traveller can continue onto after ``segment_id``."""
        seg = self._segments[segment_id]
        result = []
        for succ_id in self._out[seg.end_node]:
            # Do not immediately U-turn onto the twin.
            if seg.twin_id is not None and succ_id == seg.twin_id:
                continue
            result.append(succ_id)
        return result

    def predecessors(self, segment_id: int) -> list[int]:
        """Segments from which a traveller can enter ``segment_id``."""
        seg = self._segments[segment_id]
        result = []
        for pred_id in self._in[seg.start_node]:
            if seg.twin_id is not None and pred_id == seg.twin_id:
                continue
            result.append(pred_id)
        return result

    def neighbors(self, segment_id: int) -> tuple[int, ...]:
        """Undirected segment adjacency (successors + predecessors + twins).

        This is the ``neighbor(r)`` relation that the trace-back search
        (Algorithm 2, line 9) expands.  Memoized per segment (as a
        read-only tuple) until the topology changes — TBS touches the
        same shell segments for every query in a batch.
        """
        cached = self._neighbors.get(segment_id)
        if cached is not None:
            return cached
        seg = self._segments[segment_id]
        seen: set[int] = {segment_id}
        result: list[int] = []
        candidates = self.successors(segment_id) + self.predecessors(segment_id)
        if seg.twin_id is not None and self.has_segment(seg.twin_id):
            candidates.append(seg.twin_id)
        for other in candidates:
            if other not in seen:
                seen.add(other)
                result.append(other)
        frozen = tuple(result)
        self._neighbors[segment_id] = frozen
        return frozen

    def csr(self):
        """The cached CSR adjacency view (see :mod:`repro.network.csr`).

        Built on first use and invalidated whenever a segment is added, so
        the expansion kernels always see the current topology.
        """
        if self._csr is None:
            from repro.network.csr import build_csr

            self._csr = build_csr(self)
        return self._csr

    # -- geometry ----------------------------------------------------------------

    def nearest_segment_linear(self, point: Point) -> int:
        """Brute-force nearest segment (reference for index-based lookup)."""
        if not self._segments:
            raise ValueError("empty network")
        return min(
            self._segments.values(), key=lambda s: s.distance_to_point(point)
        ).segment_id

    def euclidean_distance(self, seg_a: int, seg_b: int) -> float:
        """Straight-line distance between two segment midpoints."""
        return self._segments[seg_a].midpoint.distance_to(
            self._segments[seg_b].midpoint
        )

    # -- validation -----------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if graph bookkeeping is inconsistent."""
        for seg in self._segments.values():
            assert seg.segment_id in self._out[seg.start_node]
            assert seg.segment_id in self._in[seg.end_node]
            assert seg.shape[0].distance_to(self._nodes[seg.start_node]) < 1e-6
            assert seg.shape[-1].distance_to(self._nodes[seg.end_node]) < 1e-6
            if seg.twin_id is not None:
                twin = self._segments[seg.twin_id]
                assert twin.twin_id == seg.segment_id
                assert twin.start_node == seg.end_node
                assert twin.end_node == seg.start_node

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"RoadNetwork(nodes={self.num_nodes}, segments={self.num_segments}, "
            f"length_km={self.total_length() / 1000.0:.1f})"
        )
