"""Road-network substrate.

Implements the directed road-network graph of §2.1 (segments with unique
IDs, adjacency, shape points, length, direction, level and MBR), the §3.1
road re-segmentation step, synthetic network generators standing in for the
Shenzhen road network, and the network-expansion / shortest-path machinery
(in the style of Papadias et al. [21]) that both the Con-Index construction
and the exhaustive-search baseline rely on.
"""

from repro.network.model import RoadLevel, RoadNetwork, RoadSegment
from repro.network.generator import grid_city, ring_radial_city, random_planar_city
from repro.network.segmentation import resegment
from repro.network.expansion import ExpansionResult, time_bounded_expansion
from repro.network.csr import CSRGraph, expand_fixed, expand_slotted
from repro.network.paths import (
    dijkstra_from_segment,
    network_distance,
    shortest_path_segments,
)

__all__ = [
    "RoadLevel",
    "RoadSegment",
    "RoadNetwork",
    "grid_city",
    "ring_radial_city",
    "random_planar_city",
    "resegment",
    "time_bounded_expansion",
    "ExpansionResult",
    "CSRGraph",
    "expand_fixed",
    "expand_slotted",
    "dijkstra_from_segment",
    "network_distance",
    "shortest_path_segments",
]
