"""Time-bounded network expansion (Papadias et al. [21] style).

Budgeted shortest-arrival expansion over the segment graph with
per-segment travel times.  Used by:

* Con-Index construction (§3.2.2): expanded once with per-slot *maximum*
  speeds for the Far list and once with *minimum* speeds for the Near list;
* the exhaustive-search baseline, which expands the physical network from
  the query location.

The expansion starts "after" a given segment: the start segment itself is at
time 0 (the traveller is already on it), and a successor is reached after
traversing it.

Since the CSR kernel refactor the heavy lifting happens in
:mod:`repro.network.csr`: the whole frontier is relaxed per round over
numpy arrays instead of popping one ``heapq`` entry per segment.  With
non-negative costs the relaxation fixpoint is unique, so the result is
identical to the classic Dijkstra (kept as
:func:`repro.core.legacy_expansion.time_bounded_expansion_reference` for
the equivalence tests and benchmark baselines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.network.csr import (
    SCALAR_PATH_MAX_N,
    _scalar_dijkstra,
    _scatter_labels,
    _unexpanded_rows,
    cover_boundary_mask,
    expand_fixed,
    relax_fixpoint,
)
from repro.network.model import RoadNetwork

#: Travel-time model: seconds to traverse a segment, or ``None``/``inf`` for
#: an impassable segment in this time slot.  The vectorized fast path
#: accepts a per-CSR-row ``float64`` cost array instead of a callable.
TravelTimeFn = Callable[[int], float]


@dataclass
class ExpansionResult:
    """Cover and frontier of a time-bounded expansion.

    Attributes:
        arrival: segment id -> earliest arrival time (seconds from start);
            includes the start segment at 0.0.  This is the *cover*: every
            segment reachable within the budget.
        frontier: segments in the cover having at least one successor that
            is outside the cover (or no successors at all) — the outer shell
            that Fig. 3.3 draws as the Near/Far boundary.
    """

    arrival: dict[int, float] = field(default_factory=dict)
    frontier: set[int] = field(default_factory=set)

    @property
    def cover(self) -> set[int]:
        return set(self.arrival)


def _cost_vector(csr, travel_time) -> np.ndarray:
    """A per-row cost array from either a callable or a ready-made vector."""
    if isinstance(travel_time, np.ndarray):
        return travel_time
    cost = np.empty(csr.n, dtype=np.float64)
    for row, segment_id in enumerate(csr.ids.tolist()):
        value = travel_time(segment_id)
        cost[row] = float("inf") if value is None else value
    return cost


class _LazyCostList:
    """List-like view over a ``TravelTimeFn`` evaluated per visited row.

    Keeps the classic complexity of the callable interface: the scalar
    Dijkstra only evaluates costs for rows it actually reaches (memoized),
    instead of eagerly materialising an O(n) vector per expansion.
    """

    __slots__ = ("_fn", "_ids", "_values")

    def __init__(self, fn, ids: np.ndarray) -> None:
        self._fn = fn
        self._ids = ids
        self._values: dict[int, float] = {}

    def __getitem__(self, row: int) -> float:
        value = self._values.get(row)
        if value is None:
            value = self._fn(int(self._ids[row]))
            value = float("inf") if value is None else float(value)
            self._values[row] = value
        return value


def time_bounded_expansion(
    network: RoadNetwork,
    start_segment: int,
    budget_s: float,
    travel_time: TravelTimeFn | np.ndarray,
    reverse: bool = False,
    cost_list: list[float] | None = None,
) -> ExpansionResult:
    """Expand from ``start_segment`` for at most ``budget_s`` seconds.

    A successor segment ``r'`` of ``r`` is reached at
    ``arrival(r) + travel_time(r')`` — the cost of traversing ``r'`` itself —
    and belongs to the cover if that time is within budget.  This matches
    how the connection tables record "the nearest (farthest) road segments
    that could be arrived at within the given time slot".

    Args:
        network: road network.
        start_segment: segment the traveller starts on (arrival time 0).
        budget_s: time budget in seconds (>= 0).
        travel_time: seconds to traverse a given segment id (``inf`` or
            ``None`` marks a segment impassable), or a precomputed per-row
            ``float64`` cost vector over ``network.csr()`` rows — the fast
            path Con-Index construction uses.
        reverse: expand backwards over predecessors, yielding the set of
            segments *from which* the start segment can be reached within
            the budget (used by reverse reachability queries).
        cost_list: optional pre-converted Python list mirroring the cost
            vector (Con-Index construction passes its cached one so the
            scalar fast path skips the per-call ``tolist``).

    Returns:
        The cover/frontier as an :class:`ExpansionResult`.
    """
    if budget_s < 0:
        raise ValueError(f"budget must be >= 0, got {budget_s}")
    csr = network.csr()
    is_vector = isinstance(travel_time, np.ndarray)
    start_row = csr.row_of(start_segment)
    if csr.n <= SCALAR_PATH_MAX_N:
        # Small-cover fast path: classic heap Dijkstra, and — when it
        # finishes without escalating — a pure-Python result build.  One
        # Con-Index entry (a single Δt slot of travel) almost always
        # lands here; the numpy envelope would cost more than the search.
        # A callable cost model is evaluated lazily (visited rows only),
        # preserving the classic complexity of that interface.
        adjacency = csr.adjacency_lists(reverse)
        if cost_list is not None:
            costs = cost_list
        elif is_vector:
            costs = travel_time.tolist()
        else:
            costs = _LazyCostList(travel_time, csr.ids)
        best, heap = _scalar_dijkstra(adjacency, costs, [start_row], budget_s)
        if not heap:
            identity = csr.identity_ids
            ids = csr.ids
            result = ExpansionResult()
            result.arrival = (
                dict(best)
                if identity
                else {int(ids[row]): t for row, t in best.items()}
            )
            for row in best:
                neighbors = adjacency[row]
                if not neighbors or any(nb not in best for nb in neighbors):
                    result.frontier.add(row if identity else int(ids[row]))
            return result
        # Escalation: the cover outgrew the scalar path; only now pay for
        # the full cost vector the kernel needs.
        cost = _cost_vector(csr, travel_time)
        dist = _scatter_labels(csr.n, best)
        relax_fixpoint(
            csr, dist, _unexpanded_rows(best, heap), cost, budget_s, reverse
        )
    else:
        cost = _cost_vector(csr, travel_time)
        dist = expand_fixed(
            csr, np.array([start_row], dtype=np.int64), budget_s, cost, reverse
        )
    cover_mask = np.isfinite(dist)
    boundary_mask = cover_boundary_mask(csr, cover_mask, reverse)
    result = ExpansionResult()
    rows = np.flatnonzero(cover_mask)
    result.arrival = dict(
        zip(csr.ids_of(rows).tolist(), dist[rows].tolist())
    )
    result.frontier = csr.mask_to_id_set(boundary_mask)
    return result
