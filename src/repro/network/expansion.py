"""Time-bounded network expansion (Papadias et al. [21] style).

Dijkstra over the segment graph with per-segment travel times.  Used by:

* Con-Index construction (§3.2.2): expanded once with per-slot *maximum*
  speeds for the Far list and once with *minimum* speeds for the Near list;
* the exhaustive-search baseline, which expands the physical network from
  the query location.

The expansion starts "after" a given segment: the start segment itself is at
time 0 (the traveller is already on it), and a successor is reached after
traversing it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.network.model import RoadNetwork

#: Travel-time model: seconds to traverse a segment, or ``None``/``inf`` for
#: an impassable segment in this time slot.
TravelTimeFn = Callable[[int], float]


@dataclass
class ExpansionResult:
    """Cover and frontier of a time-bounded expansion.

    Attributes:
        arrival: segment id -> earliest arrival time (seconds from start);
            includes the start segment at 0.0.  This is the *cover*: every
            segment reachable within the budget.
        frontier: segments in the cover having at least one successor that
            is outside the cover (or no successors at all) — the outer shell
            that Fig. 3.3 draws as the Near/Far boundary.
    """

    arrival: dict[int, float] = field(default_factory=dict)
    frontier: set[int] = field(default_factory=set)

    @property
    def cover(self) -> set[int]:
        return set(self.arrival)


def time_bounded_expansion(
    network: RoadNetwork,
    start_segment: int,
    budget_s: float,
    travel_time: TravelTimeFn,
    reverse: bool = False,
) -> ExpansionResult:
    """Expand from ``start_segment`` for at most ``budget_s`` seconds.

    A successor segment ``r'`` of ``r`` is reached at
    ``arrival(r) + travel_time(r')`` — the cost of traversing ``r'`` itself —
    and belongs to the cover if that time is within budget.  This matches
    how the connection tables record "the nearest (farthest) road segments
    that could be arrived at within the given time slot".

    Args:
        network: road network.
        start_segment: segment the traveller starts on (arrival time 0).
        budget_s: time budget in seconds (>= 0).
        travel_time: seconds to traverse a given segment id; return ``inf``
            to mark a segment impassable.
        reverse: expand backwards over predecessors, yielding the set of
            segments *from which* the start segment can be reached within
            the budget (used by reverse reachability queries).

    Returns:
        The cover/frontier as an :class:`ExpansionResult`.
    """
    if budget_s < 0:
        raise ValueError(f"budget must be >= 0, got {budget_s}")
    step_of = network.predecessors if reverse else network.successors
    result = ExpansionResult()
    arrival = result.arrival
    heap: list[tuple[float, int]] = [(0.0, start_segment)]
    best: dict[int, float] = {start_segment: 0.0}
    while heap:
        time_now, segment = heapq.heappop(heap)
        if time_now > best.get(segment, float("inf")):
            continue
        arrival[segment] = time_now
        for neighbor in step_of(segment):
            cost = travel_time(neighbor)
            if cost is None or cost == float("inf"):
                continue
            reach = time_now + cost
            if reach > budget_s:
                continue
            if reach < best.get(neighbor, float("inf")):
                best[neighbor] = reach
                heapq.heappush(heap, (reach, neighbor))
    cover = set(arrival)
    for segment in cover:
        neighbors = step_of(segment)
        if not neighbors or any(s not in cover for s in neighbors):
            result.frontier.add(segment)
    return result
