"""CSR adjacency and vectorized frontier-at-a-time expansion kernels.

Every query algorithm in the paper (SQMB/MQMB/reverse, Algorithms 1-3)
spends its in-memory time expanding bounding regions over the segment
graph.  This module holds the one shared hot path: a cached CSR (compressed
sparse row) view of the :class:`~repro.network.model.RoadNetwork` —
``int32`` ``indptr``/``indices`` arrays for successors and predecessors,
plus per-row length/twin/midpoint vectors — and numpy kernels that relax
whole frontiers per step over boolean masks instead of walking Python sets
and ``heapq`` entries one segment at a time.

Exactness: the kernels are *label-setting equivalent* to the classic
Dijkstra implementations they replace.

* :func:`expand_fixed` relaxes a fixed non-negative cost vector to the
  unique shortest-distance fixpoint — identical arrivals to Dijkstra,
  whatever the relaxation order.
* :func:`expand_slotted` handles the per-slot (time-dependent, possibly
  non-FIFO) speed models by settling labels in Δt *phases*: within one
  elapsed-time window ``[kΔt, (k+1)Δt)`` the cost vector is constant, so
  the in-window fixpoint is order-independent, and windows settle in
  increasing order exactly as a label-setting Dijkstra pops them.  A plain
  synchronous Bellman-Ford over time-dependent costs would *not* be
  equivalent (it can relax through intermediate labels a label-setting run
  never holds); the phase structure is what makes the kernel exact.

The legacy implementations are preserved in
:mod:`repro.core.legacy_expansion` as the reference the kernel-equivalence
tests and the ``benchmarks/bench_expansion.py`` baselines run against.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.model import RoadNetwork


@dataclass
class CSRGraph:
    """CSR view of a road network's segment graph.

    Rows are dense indices over the segment ids in ascending order;
    ``indices_*`` store *rows*, not segment ids.  Successor edges exclude
    the immediate U-turn onto a two-way twin, exactly like
    :meth:`RoadNetwork.successors` / :meth:`RoadNetwork.predecessors`.

    Attributes:
        ids: row -> segment id (``int64``, ascending).
        row_lookup: segment id -> row (``int64``, ``-1`` for absent ids).
        indptr_out / indices_out: CSR successors (``int32``).
        indptr_in / indices_in: CSR predecessors (``int32``).
        twin_row: row of the opposite carriageway, ``-1`` for one-way.
        lengths: segment polyline lengths in metres (``float64``).
        mid_x / mid_y: segment midpoint coordinates (``float64``).
    """

    ids: np.ndarray
    row_lookup: np.ndarray
    indptr_out: np.ndarray
    indices_out: np.ndarray
    indptr_in: np.ndarray
    indices_in: np.ndarray
    twin_row: np.ndarray
    lengths: np.ndarray
    mid_x: np.ndarray
    mid_y: np.ndarray
    _py_out: list[list[int]] | None = None
    _py_in: list[list[int]] | None = None

    @property
    def n(self) -> int:
        return int(self.ids.size)

    @property
    def identity_ids(self) -> bool:
        """True when segment ids are exactly ``0..n-1`` (rows == ids)."""
        return self.n > 0 and int(self.ids[-1]) == self.n - 1

    def adjacency(self, reverse: bool) -> tuple[np.ndarray, np.ndarray]:
        if reverse:
            return self.indptr_in, self.indices_in
        return self.indptr_out, self.indices_out

    def adjacency_lists(self, reverse: bool) -> list[list[int]]:
        """Row-level adjacency as plain Python lists (built once, cached).

        The scalar Dijkstra fast path for small covers walks these — numpy
        scalar indexing inside a Python loop would cost more than the heap
        operations it feeds.
        """
        cached = self._py_in if reverse else self._py_out
        if cached is None:
            indptr, indices = self.adjacency(reverse)
            flat = indices.tolist()
            bounds = indptr.tolist()
            cached = [
                flat[bounds[row]:bounds[row + 1]] for row in range(self.n)
            ]
            if reverse:
                self._py_in = cached
            else:
                self._py_out = cached
        return cached

    def row_of(self, segment_id: int) -> int:
        row = int(self.row_lookup[segment_id])
        if row < 0:
            raise KeyError(f"unknown segment {segment_id}")
        return row

    def rows_of(self, segment_ids) -> np.ndarray:
        """Map an array of segment ids to rows (all must exist).

        Unknown ids fail loudly: the lookup holds ``-1`` for absent ids,
        which would otherwise fancy-index the *last* row and silently
        corrupt a cover mask.
        """
        arr = np.asarray(segment_ids, dtype=np.int64)
        if self.identity_ids:
            return arr
        rows = self.row_lookup[arr]
        if rows.size and rows.min() < 0:
            unknown = arr[rows < 0]
            raise KeyError(f"unknown segments {unknown[:5].tolist()}")
        return rows

    def ids_of(self, rows: np.ndarray) -> np.ndarray:
        return self.ids[rows]

    def mask_to_id_set(self, mask: np.ndarray) -> set[int]:
        """A boolean row mask as the segment-id set the old code traded in."""
        return set(self.ids[mask].tolist())


def build_csr(network: "RoadNetwork") -> CSRGraph:
    """Materialise the CSR view (cached by :meth:`RoadNetwork.csr`)."""
    ids = np.array(sorted(network.segment_ids()), dtype=np.int64)
    n = int(ids.size)
    max_id = int(ids[-1]) if n else -1
    row_lookup = np.full(max_id + 2, -1, dtype=np.int64)
    row_lookup[ids] = np.arange(n, dtype=np.int64)

    indptr_out = np.zeros(n + 1, dtype=np.int32)
    indptr_in = np.zeros(n + 1, dtype=np.int32)
    out_parts: list[list[int]] = []
    in_parts: list[list[int]] = []
    twin_row = np.full(n, -1, dtype=np.int64)
    lengths = np.zeros(n, dtype=np.float64)
    mid_x = np.zeros(n, dtype=np.float64)
    mid_y = np.zeros(n, dtype=np.float64)
    for row, segment_id in enumerate(ids.tolist()):
        segment = network.segment(segment_id)
        succ = network.successors(segment_id)
        pred = network.predecessors(segment_id)
        out_parts.append(succ)
        in_parts.append(pred)
        indptr_out[row + 1] = indptr_out[row] + len(succ)
        indptr_in[row + 1] = indptr_in[row] + len(pred)
        if segment.twin_id is not None and network.has_segment(segment.twin_id):
            twin_row[row] = row_lookup[segment.twin_id]
        lengths[row] = segment.length
        mid = segment.midpoint
        mid_x[row], mid_y[row] = mid.x, mid.y
    flat_out = [sid for part in out_parts for sid in part]
    flat_in = [sid for part in in_parts for sid in part]
    indices_out = (
        row_lookup[np.array(flat_out, dtype=np.int64)]
        if flat_out
        else np.empty(0, dtype=np.int64)
    ).astype(np.int32)
    indices_in = (
        row_lookup[np.array(flat_in, dtype=np.int64)]
        if flat_in
        else np.empty(0, dtype=np.int64)
    ).astype(np.int32)
    return CSRGraph(
        ids=ids,
        row_lookup=row_lookup,
        indptr_out=indptr_out,
        indices_out=indices_out,
        indptr_in=indptr_in,
        indices_in=indices_in,
        twin_row=twin_row,
        lengths=lengths,
        mid_x=mid_x,
        mid_y=mid_y,
    )


_EMPTY_ROWS = np.empty(0, dtype=np.int64)


def _frontier_edges(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray] | tuple[None, None]:
    """Flatten the out-edges of ``frontier`` rows.

    Returns ``(src_pos, dst)`` where ``src_pos`` indexes into ``frontier``
    and ``dst`` holds destination rows, or ``(None, None)`` when the
    frontier has no edges at all.
    """
    starts = indptr[frontier].astype(np.int64)
    counts = indptr[frontier + 1].astype(np.int64) - starts
    total = int(counts.sum())
    if total == 0:
        return None, None
    cum = np.cumsum(counts)
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - (cum - counts), counts)
    dst = indices[flat].astype(np.int64)
    src_pos = np.repeat(np.arange(frontier.size, dtype=np.int64), counts)
    return src_pos, dst


def _relax_round(
    indptr: np.ndarray,
    indices: np.ndarray,
    dist: np.ndarray,
    frontier: np.ndarray,
    cost: np.ndarray,
    budget_s: float,
) -> np.ndarray:
    """Relax every out-edge of ``frontier`` once; return the improved rows.

    The returned array is deduplicated.  All bookkeeping stays
    proportional to the frontier and its edges — never to the whole
    network — which is what keeps the kernel competitive on small covers.
    """
    src_pos, dst = _frontier_edges(indptr, indices, frontier)
    if src_pos is None:
        return _EMPTY_ROWS
    candidate = dist[frontier][src_pos] + cost[dst]
    ok = candidate <= budget_s
    if not ok.any():
        return _EMPTY_ROWS
    dst, candidate = dst[ok], candidate[ok]
    before = dist[dst]
    np.minimum.at(dist, dst, candidate)
    # Gathered *before* the scatter, `before` is the same for duplicate
    # edges into one row, so any edge into an improved row observes the
    # decrease; np.unique collapses the duplicates.
    improved = dist[dst] < before
    if not improved.any():
        return _EMPTY_ROWS
    return np.unique(dst[improved])


#: Scalar-path tuning: below this cover size a tight heap loop beats numpy
#: dispatch overhead, so expansion starts scalar and escalates to the
#: frontier kernel only once the cover outgrows it (most Con-Index entries
#: — one Δt slot of travel — never do).
ESCALATE_COVER = 256
#: Networks larger than this skip the scalar fast path entirely: the
#: per-call ``cost.tolist()`` conversion would cost more than the kernel.
SCALAR_PATH_MAX_N = 4096


def _scalar_dijkstra(
    adjacency: list[list[int]],
    cost_list: list[float],
    seeds: list[int],
    budget_s: float,
) -> tuple[dict[int, float], list[tuple[float, int]]]:
    """Budgeted heap Dijkstra until done or the cover outgrows the
    escalation threshold.

    Returns ``(best, heap)``: the labels so far and the remaining heap —
    empty when the expansion finished scalar.  With non-negative costs
    Dijkstra is label-setting, so every popped row's label is final and
    the un-popped labels are genuine path values (upper bounds), which is
    what makes the kernel handoff exact.
    """
    inf = float("inf")
    best: dict[int, float] = {row: 0.0 for row in seeds}
    heap: list[tuple[float, int]] = [(0.0, row) for row in best]
    heapq.heapify(heap)
    while heap and len(best) <= ESCALATE_COVER:
        time_now, row = heapq.heappop(heap)
        if time_now > best.get(row, inf):
            continue
        for neighbor in adjacency[row]:
            edge_cost = cost_list[neighbor]
            if edge_cost == inf:
                continue
            reach = time_now + edge_cost
            if reach > budget_s:
                continue
            if reach < best.get(neighbor, inf):
                best[neighbor] = reach
                heapq.heappush(heap, (reach, neighbor))
    return best, heap


def _unexpanded_rows(
    best: dict[int, float], heap: list[tuple[float, int]]
) -> np.ndarray:
    """Rows whose current label has not been expanded: exactly those with
    a live (non-stale) heap entry."""
    pending = {row for t, row in heap if t == best.get(row)}
    return np.fromiter(pending, dtype=np.int64, count=len(pending))


def _scatter_labels(n: int, best: dict[int, float]) -> np.ndarray:
    dist = np.full(n, np.inf)
    if best:
        rows = np.fromiter(best.keys(), dtype=np.int64, count=len(best))
        dist[rows] = np.fromiter(best.values(), dtype=np.float64, count=len(best))
    return dist


def relax_fixpoint(
    csr: CSRGraph,
    dist: np.ndarray,
    frontier: np.ndarray,
    cost: np.ndarray,
    budget_s: float,
    reverse: bool = False,
) -> np.ndarray:
    """Relax ``dist`` to its fixpoint starting from ``frontier`` rows.

    ``dist`` must hold genuine path values (upper bounds); with a fixed
    non-negative cost vector the fixpoint is the unique shortest-distance
    assignment regardless of relaxation order.
    """
    indptr, indices = csr.adjacency(reverse)
    frontier = np.asarray(frontier, dtype=np.int64)
    while frontier.size:
        frontier = _relax_round(indptr, indices, dist, frontier, cost, budget_s)
    return dist


def expand_fixed(
    csr: CSRGraph,
    seed_rows: np.ndarray,
    budget_s: float,
    cost: np.ndarray,
    reverse: bool = False,
) -> np.ndarray:
    """Shortest arrival times under one fixed cost vector.

    Equivalent to budgeted Dijkstra from ``seed_rows`` (seeds at 0.0):
    with non-negative costs the relaxation fixpoint is unique, so neither
    the frontier-at-a-time order nor the scalar/vector handoff can change
    the result.

    Adaptive: on small networks the expansion starts as a classic heap
    loop (numpy round overhead would dominate a 30-segment cover) and
    escalates to the vectorized kernel only once the cover outgrows
    :data:`ESCALATE_COVER` — the partial labels seed the kernel.

    Returns the per-row arrival array; unreachable (or over-budget) rows
    hold ``inf``.
    """
    seed_rows = np.asarray(seed_rows, dtype=np.int64)
    if csr.n <= SCALAR_PATH_MAX_N:
        best, heap = _scalar_dijkstra(
            csr.adjacency_lists(reverse),
            cost.tolist(),
            [int(r) for r in seed_rows.tolist()],
            budget_s,
        )
        dist = _scatter_labels(csr.n, best)
        if not heap:
            return dist
        frontier = _unexpanded_rows(best, heap)
    else:
        dist = np.full(csr.n, np.inf)
        dist[seed_rows] = 0.0
        frontier = seed_rows
    return relax_fixpoint(csr, dist, frontier, cost, budget_s, reverse)


def expand_slotted(
    csr: CSRGraph,
    seed_rows: np.ndarray,
    budget_s: float,
    delta_t_s: float,
    cost_of_phase: Callable[[int], np.ndarray],
    reverse: bool = False,
    cost_list_of_phase: Callable[[int], list[float]] | None = None,
) -> np.ndarray:
    """Shortest arrivals under per-slot cost vectors (residual carry).

    ``cost_of_phase(k)`` supplies the traversal-cost vector for elapsed
    times in ``[kΔt, (k+1)Δt)`` — the same relative slot progression as
    the memoized Con-Index hops, so covers stay shareable across queries
    in the same start slot.

    Labels are settled phase by phase: within a phase the cost vector is
    constant (unique fixpoint), and since costs are non-negative a label
    in window ``k`` can only be improved from windows ``<= k``, so phases
    settle in order — exactly the label-setting behaviour of the classic
    heap-based ``slot_aware_expansion``.

    Adaptive like :func:`expand_fixed`: small covers run the classic
    time-dependent heap loop; if the cover outgrows
    :data:`ESCALATE_COVER`, the partial labels (final for expanded rows,
    path-value upper bounds for the rest) seed the phase loop, which
    settles the remaining windows in order.
    """
    indptr, indices = csr.adjacency(reverse)
    seed_rows = np.asarray(seed_rows, dtype=np.int64)
    deferred = np.zeros(csr.n, dtype=bool)
    if csr.n <= SCALAR_PATH_MAX_N:
        adjacency = csr.adjacency_lists(reverse)
        cost_lists: dict[int, list[float]] = {}

        def cost_list(phase: int) -> list[float]:
            cached = cost_lists.get(phase)
            if cached is None:
                cached = (
                    cost_list_of_phase(phase)
                    if cost_list_of_phase is not None
                    else cost_of_phase(phase).tolist()
                )
                cost_lists[phase] = cached
            return cached

        inf = float("inf")
        best: dict[int, float] = {int(r): 0.0 for r in seed_rows.tolist()}
        heap: list[tuple[float, int]] = [(0.0, row) for row in best]
        heapq.heapify(heap)
        while heap and len(best) <= ESCALATE_COVER:
            time_now, row = heapq.heappop(heap)
            if time_now > best.get(row, inf):
                continue
            costs = cost_list(int(time_now // delta_t_s))
            for neighbor in adjacency[row]:
                edge_cost = costs[neighbor]
                if edge_cost == inf:
                    continue
                reach = time_now + edge_cost
                if reach > budget_s:
                    continue
                if reach < best.get(neighbor, inf):
                    best[neighbor] = reach
                    heapq.heappush(heap, (reach, neighbor))
        dist = _scatter_labels(csr.n, best)
        if not heap:
            return dist
        # Unexpanded labels are >= every expanded one (label-setting), so
        # re-entering the phase loop with them deferred settles the
        # remaining windows in order; earlier phases find nothing to do.
        deferred[_unexpanded_rows(best, heap)] = True
    else:
        dist = np.full(csr.n, np.inf)
        dist[seed_rows] = 0.0
        deferred[seed_rows] = True
    num_phases = int(budget_s // delta_t_s) + 1
    for phase in range(num_phases):
        window_end = (phase + 1) * delta_t_s
        waiting = np.flatnonzero(deferred)
        if waiting.size == 0:
            break
        frontier = waiting[dist[waiting] < window_end]
        if frontier.size == 0:
            continue
        deferred[frontier] = False
        cost = cost_of_phase(phase)
        while frontier.size:
            improved = _relax_round(
                indptr, indices, dist, frontier, cost, budget_s
            )
            in_window = dist[improved] < window_end
            frontier = improved[in_window]
            deferred[improved[~in_window]] = True
            # An improvement can pull a deferred row back into this
            # window; it is in `improved` with its new label, so it joins
            # the frontier and its deferred flag clears.
            deferred[frontier] = False
    return dist


def cover_boundary_mask(
    csr: CSRGraph, cover: np.ndarray, reverse: bool = False
) -> np.ndarray:
    """Outer-shell mask of a cover mask: members with an escape edge.

    A row belongs to the boundary when it has no step-direction neighbours
    at all, or at least one neighbour outside the cover — the same rule as
    the set-based ``region_boundary`` / ``ExpansionResult.frontier``.
    """
    indptr, indices = csr.adjacency(reverse)
    rows = np.flatnonzero(cover)
    boundary = np.zeros(csr.n, dtype=bool)
    if rows.size == 0:
        return boundary
    degree = indptr[rows + 1] - indptr[rows]
    boundary[rows[degree == 0]] = True
    src_pos, dst = _frontier_edges(indptr, indices, rows)
    if src_pos is not None:
        escape = ~cover[dst]
        boundary[rows[src_pos[escape]]] = True
    return boundary


def close_twins_mask(csr: CSRGraph, cover: np.ndarray) -> None:
    """Add the opposite carriageway of every covered two-way road, in place."""
    rows = np.flatnonzero(cover)
    twins = csr.twin_row[rows]
    twins = twins[twins >= 0]
    if twins.size:
        cover[twins] = True
