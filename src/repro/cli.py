"""Command-line interface.

Subcommands::

    python -m repro build-dataset --out DIR [--taxis N --days N ...]
    python -m repro describe --dataset DIR
    python -m repro query   --dataset DIR --x 0 --y 0 --time 11:00 \
                            --duration 10 --prob 0.2 [--algorithm auto]
    python -m repro mquery  --dataset DIR --location 0,0 --location 3000,2000 ...
    python -m repro rquery  --dataset DIR --x 0 --y 0 ...
    python -m repro batch   --dataset DIR --s-queries 20 --m-queries 5 \
                            --r-queries 2 --workers 4 [--shards K]
    python -m repro save    --dataset DIR --store STORE
    python -m repro open    --store STORE [--x 0 --y 0 ...]
    python -m repro batch   --open STORE --s-queries 20 ...

``build-dataset`` generates and persists a synthetic ShenzhenLike dataset;
the query commands load it, build indexes, and answer through the
:class:`~repro.api.ReachabilityClient` — every request travels as a
:class:`~repro.api.Request` envelope, ``--algorithm auto`` (the default)
lets the router pick the route, and ``--explain`` prints the routing
decision plus the plan.  ``batch`` streams a deterministic random
workload (s-, m- and reverse queries mixed) through ``client.stream``,
printing one progress line per completed response (with its direction
and route) before the batch report.  Algorithm choices come straight
from the executor registry, so registered third-party algorithms are
selectable without CLI changes.

Durable stores: every query command accepts ``--disk file --disk-path
DIR`` to route index pages onto the crash-safe
:class:`~repro.storage.backends.FileBackedDisk`; ``save`` builds the
indexes directly onto the file backend and persists a store bundle,
``open`` cold-opens one (journal replayed, pages faulted in
checksum-verified on demand) and answers a query from it, and ``batch
--open STORE`` serves a whole workload from the bundle without touching
the original dataset.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.api.client import ReachabilityClient
from repro.api.envelope import AUTO, QueryOptions, Request
from repro.core.executors import executor_names, has_executor
from repro.core.query import MQuery, SQuery
from repro.spatial.geometry import Point
from repro.trajectory.model import day_time


def _parse_time(text: str) -> int:
    """'11:00' or '11:05:30' -> seconds since midnight."""
    parts = text.split(":")
    if not 1 <= len(parts) <= 3:
        raise argparse.ArgumentTypeError(f"bad time {text!r}, want HH[:MM[:SS]]")
    try:
        numbers = [int(p) for p in parts] + [0, 0]
        return day_time(numbers[0], numbers[1], numbers[2])
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _parse_location(text: str) -> Point:
    """'x,y' -> local-plane Point."""
    try:
        x, y = (float(v) for v in text.split(","))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad location {text!r}, want X,Y") from exc
    return Point(x, y)


def _add_query_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", required=True, help="dataset directory")
    parser.add_argument("--time", type=_parse_time, default=day_time(11),
                        help="start time of day, HH[:MM[:SS]] (default 11:00)")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="duration L in minutes (default 10)")
    parser.add_argument("--prob", type=float, default=0.2,
                        help="probability threshold (default 0.2)")
    parser.add_argument("--delta-t", type=int, default=5,
                        help="index granularity Δt in minutes (default 5)")
    parser.add_argument("--budget", type=float, default=None,
                        help="advisory cost budget in ms (router avoids "
                             "unbounded routes; the result reports "
                             "whether it was met)")
    parser.add_argument("--geojson", type=Path, default=None,
                        help="write the region to this GeoJSON file")
    parser.add_argument("--no-map", action="store_true",
                        help="skip the ASCII map")
    parser.add_argument("--explain", action="store_true",
                        help="print the routing decision and query plan "
                             "before executing")
    _add_disk_args(parser)


def _add_disk_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--disk", choices=("sim", "file"), default="sim",
                        help="storage backend for index pages: 'sim' "
                             "(in-RAM, default) or 'file' (durable "
                             "checksummed store; needs --disk-path)")
    parser.add_argument("--disk-path", default=None,
                        help="store directory for --disk file")


class CLIError(Exception):
    """User-facing CLI failure (bad paths, unreadable datasets)."""


def _load_client(
    dataset_dir: str,
    shards: int = 0,
    workers: int | None = None,
    deadline_ms: float | None = None,
    max_retries: int | None = None,
    disk: str = "sim",
    disk_path: str | None = None,
) -> tuple:
    from repro.core.engine import ReachabilityEngine
    from repro.io.persist import load_dataset

    if disk == "file" and disk_path is None:
        raise CLIError("--disk file needs --disk-path DIR")
    try:
        dataset = load_dataset(dataset_dir)
    except FileNotFoundError as exc:
        raise CLIError(
            f"no dataset at {dataset_dir!r} (missing {exc.filename}); "
            "create one with: python -m repro build-dataset --out "
            f"{dataset_dir}"
        ) from exc
    engine = ReachabilityEngine(dataset.network, dataset.database)
    disk_backend = disk if disk != "sim" else None
    if shards > 0:
        return dataset, ReachabilityClient(
            engine,
            backend="sharded",
            shards=shards,
            shard_workers=workers,
            deadline_ms=deadline_ms,
            max_retries=max_retries,
            disk_backend=disk_backend,
            disk_path=disk_path,
        )
    return dataset, ReachabilityClient(
        engine, disk_backend=disk_backend, disk_path=disk_path
    )


def _open_store_client(path: str, **kwargs) -> ReachabilityClient:
    from repro.io.persist import PersistFormatError

    try:
        return ReachabilityClient.open(path, **kwargs)
    except PersistFormatError as exc:
        raise CLIError(f"cannot open store at {path!r}: {exc}") from exc


def _print_response(args, dataset, response) -> int:
    from repro.viz.ascii_map import render_region

    result = response.result
    km = result.road_length_m(dataset.network) / 1000.0
    print(f"Prob-reachable region: {len(result.segments)} segments, {km:.1f} km")
    cost = result.cost
    print(
        f"running time: {cost.total_cost_ms:.0f} ms "
        f"(wall {cost.wall_time_s * 1e3:.1f} ms + simulated I/O "
        f"{cost.simulated_io_ms:.0f} ms over {cost.io.page_reads} page reads; "
        f"{cost.probability_checks} probability checks)"
    )
    if cost.probability_checks:
        print(
            f"probability path: {cost.kernel_probability_evals} kernel / "
            f"{cost.scalar_probability_evals} scalar evals over "
            f"{cost.probability_waves} waves (max {cost.max_wave_size})"
        )
    if cost.batched_record_reads:
        print(
            f"batched I/O: {cost.batched_record_reads} record gathers / "
            f"{cost.prefetched_pages} pages prefetched "
            f"({cost.pool_lock_shards} pool lock shards)"
        )
    if response.within_budget is not None:
        verdict = "met" if response.within_budget else "EXCEEDED"
        print(
            f"cost budget: {response.request.options.cost_budget_ms:.0f} ms "
            f"{verdict}"
        )
    if not args.no_map:
        print(render_region(result, dataset.network))
    if args.geojson is not None:
        from repro.viz.geojson import write_geojson

        path = write_geojson(result, dataset.network, args.geojson)
        print(f"GeoJSON written to {path}")
    return 0


def cmd_build_dataset(args) -> int:
    from repro.datasets.shenzhen_like import (
        ShenzhenLikeConfig,
        build_shenzhen_like,
    )
    from repro.io.persist import save_dataset

    config = ShenzhenLikeConfig(
        grid_rows=args.grid,
        grid_cols=args.grid,
        num_taxis=args.taxis,
        num_days=args.days,
        seed=args.seed,
    )
    print(f"Building dataset ({args.taxis} taxis x {args.days} days) ...")
    dataset = build_shenzhen_like(config)
    save_dataset(dataset, args.out)
    for key, value in dataset.describe():
        print(f"  {key}: {value}")
    print(f"Saved to {args.out}")
    return 0


def cmd_describe(args) -> int:
    dataset, client = _load_client(args.dataset)
    client.close()
    for key, value in dataset.describe():
        print(f"  {key}: {value}")
    return 0


def _run_query(args, direction: str, query) -> int:
    dataset, client = _load_client(
        args.dataset, disk=args.disk, disk_path=args.disk_path
    )
    request = Request(
        query,
        QueryOptions(
            direction=direction,
            algorithm=args.algorithm,
            delta_t_s=args.delta_t * 60,
            cost_budget_ms=args.budget,
        ),
    )
    with client:
        if args.explain:
            # Pre-flight print: routing is stateless, so this decision and
            # plan are exactly what send() will execute.
            plan, decision = client.plan(request)
            print(decision.describe())
            print(plan.describe())
        response = client.send(request)
    return _print_response(args, dataset, response)


def cmd_query(args) -> int:
    query = SQuery(
        location=Point(args.x, args.y),
        start_time_s=args.time,
        duration_s=args.duration * 60.0,
        prob=args.prob,
    )
    return _run_query(args, "forward", query)


def cmd_mquery(args) -> int:
    query = MQuery(
        locations=tuple(args.location),
        start_time_s=args.time,
        duration_s=args.duration * 60.0,
        prob=args.prob,
    )
    return _run_query(args, "forward", query)


def cmd_rquery(args) -> int:
    query = SQuery(
        location=Point(args.x, args.y),
        start_time_s=args.time,
        duration_s=args.duration * 60.0,
        prob=args.prob,
    )
    return _run_query(args, "reverse", query)


def cmd_save(args) -> int:
    from repro.io.persist import save_store

    store = Path(args.store)
    # Route the index build onto a FileBackedDisk living *inside* the
    # store directory: every page written during the build is already
    # durable, so save_store takes the page-stable in-place path
    # (directory snapshot + checkpoint) instead of re-exporting pages.
    dataset, client = _load_client(
        args.dataset, disk="file", disk_path=str(store / "disk")
    )
    with client:
        save_store(client.engine, store, args.delta_t * 60)
        disk = client.engine.disk
        print(
            f"store saved to {store} (Δt {args.delta_t} min, "
            f"generation {disk.generation}, "
            f"{disk.num_pages} pages x {disk.page_size} B)"
        )
    return 0


def cmd_open(args) -> int:
    from types import SimpleNamespace

    client = _open_store_client(args.store)
    with client:
        disk = client.engine.disk
        print(
            f"opened store {args.store}: generation {disk.generation}, "
            f"{disk.num_pages} pages x {disk.page_size} B, "
            f"{disk.journal_record_count} journal record(s), "
            f"Δt {client.delta_t_s // 60} min"
        )
        query = SQuery(
            location=Point(args.x, args.y),
            start_time_s=args.time,
            duration_s=args.duration * 60.0,
            prob=args.prob,
        )
        request = Request(
            query,
            QueryOptions(
                direction="forward",
                algorithm=args.algorithm,
                delta_t_s=client.delta_t_s,
                cost_budget_ms=args.budget,
            ),
        )
        response = client.send(request)
        code = _print_response(
            args, SimpleNamespace(network=client.network), response
        )
        print(
            f"cold pages faulted: {disk.pages_faulted}/{disk.num_pages} "
            "(checksum-verified on demand)"
        )
    return code


def cmd_batch(args) -> int:
    from repro.core.query import MQuery
    from repro.eval.tables import format_batch_report
    from repro.eval.workload import QueryWorkload

    if args.open is not None:
        if args.dataset is not None:
            raise CLIError("batch takes --dataset or --open, not both")
        sharded_kwargs = (
            dict(
                backend="sharded",
                shards=args.shards,
                shard_workers=args.workers,
                deadline_ms=args.deadline_ms,
                max_retries=args.max_retries,
            )
            if args.shards > 0
            else {}
        )
        client = _open_store_client(args.open, **sharded_kwargs)
        network = client.network
        # The store bundle fixes the index granularity; --delta-t would
        # trigger a from-scratch build against a stats-only database.
        delta_t_s = client.delta_t_s
    elif args.dataset is None:
        raise CLIError("batch needs --dataset DIR (or --open STORE)")
    else:
        dataset, client = _load_client(
            args.dataset,
            shards=args.shards,
            workers=args.workers,
            deadline_ms=args.deadline_ms,
            max_retries=args.max_retries,
        )
        network = dataset.network
        delta_t_s = args.delta_t * 60
    # No algorithm name is registered for every kind, so a forced
    # --algorithm applies to the kinds that register it and the rest of
    # the mixed workload stays auto-routed.
    if args.algorithm != AUTO and not any(
        has_executor(kind, args.algorithm) for kind in ("s", "m", "r")
    ):
        known = sorted(
            {name for kind in ("s", "m", "r") for name in executor_names(kind)}
        )
        raise CLIError(
            f"unknown algorithm {args.algorithm!r} "
            f"(registered: {', '.join(known)}, or auto)"
        )

    def algorithm_for(kind: str) -> str:
        if args.algorithm != AUTO and has_executor(kind, args.algorithm):
            return args.algorithm
        return AUTO

    workload = QueryWorkload(network, seed=args.seed)
    requests = [
        Request(
            query,
            QueryOptions(
                algorithm=algorithm_for(
                    "m" if isinstance(query, MQuery) else "s"
                ),
                delta_t_s=delta_t_s,
            ),
        )
        for query in workload.mixed_batch(
            args.s_queries,
            args.m_queries,
            duration_s=args.duration * 60.0,
            prob=args.prob,
        )
    ]
    # Reverse traffic: the advertising-style "who can reach here?" share
    # of a mixed tenant stream, expressible per request since the
    # envelope carries its own direction.
    reverse_options = QueryOptions(
        direction="reverse",
        algorithm=algorithm_for("r"),
        delta_t_s=delta_t_s,
        tag="reverse",
    )
    requests.extend(
        Request(query, reverse_options)
        for query in workload.s_queries(
            args.r_queries,
            duration_s=args.duration * 60.0,
            prob=args.prob,
            salt="r",
        )
    )
    total = len(requests)
    with client:
        if args.explain:
            if args.shards > 0:
                from repro.serving.dispatcher import (
                    DEFAULT_DEADLINE_MS,
                    DEFAULT_MAX_RETRIES,
                )

                deadline = (
                    args.deadline_ms
                    if args.deadline_ms is not None
                    else DEFAULT_DEADLINE_MS
                )
                retries = (
                    args.max_retries
                    if args.max_retries is not None
                    else DEFAULT_MAX_RETRIES
                )
                print(
                    f"backend: sharded ({args.shards} shards, "
                    f"{args.workers or args.shards} worker processes; "
                    f"deadline {deadline:.0f} ms, max {retries} retries, "
                    "degraded sub-batches fall back locally)"
                )
            else:
                print(f"backend: threaded ({args.workers} worker threads)")
            decisions: dict[str, int] = {}
            for request in requests:
                decision = client.route(request)
                key = f"{decision.kind}:{decision.algorithm} [{decision.rule}]"
                decisions[key] = decisions.get(key, 0) + 1
            for key in sorted(decisions):
                print(f"  route {key}: {decisions[key]} request(s)")
        if args.shards > 0:
            # Sharded batches scatter whole sub-batches to worker
            # processes, so there is no per-response progress stream;
            # the report's per-shard rows show the breakdown instead.
            report = client.run_batch(requests, backend="sharded")
        else:
            stream = client.stream(requests, max_workers=args.workers)
            for done, response in enumerate(stream, start=1):
                print(f"[{done:>3}/{total}] {response.describe()}")
            print()
            report = stream.report
    print(format_batch_report(f"Batch report — {total} queries", report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spatio-temporal reachability queries over trajectory data",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build-dataset", help="generate + persist a dataset")
    build.add_argument("--out", required=True, help="output directory")
    build.add_argument("--grid", type=int, default=11, help="grid side (default 11)")
    build.add_argument("--taxis", type=int, default=400)
    build.add_argument("--days", type=int, default=30)
    build.add_argument("--seed", type=int, default=42)
    build.set_defaults(func=cmd_build_dataset)

    describe = sub.add_parser("describe", help="print dataset statistics")
    describe.add_argument("--dataset", required=True)
    describe.set_defaults(func=cmd_describe)

    query = sub.add_parser("query", help="single-location reachability query")
    _add_query_args(query)
    query.add_argument("--x", type=float, default=0.0)
    query.add_argument("--y", type=float, default=0.0)
    query.add_argument(
        "--algorithm", choices=(AUTO, *executor_names("s")), default=AUTO,
    )
    query.set_defaults(func=cmd_query)

    mquery = sub.add_parser("mquery", help="multi-location reachability query")
    _add_query_args(mquery)
    mquery.add_argument(
        "--location", type=_parse_location, action="append", required=True,
        help="X,Y (repeatable)",
    )
    mquery.add_argument(
        "--algorithm", choices=(AUTO, *executor_names("m")), default=AUTO,
    )
    mquery.set_defaults(func=cmd_mquery)

    rquery = sub.add_parser(
        "rquery", help="reverse query: who can reach this location?"
    )
    _add_query_args(rquery)
    rquery.add_argument("--x", type=float, default=0.0)
    rquery.add_argument("--y", type=float, default=0.0)
    rquery.add_argument(
        "--algorithm", choices=(AUTO, *executor_names("r")), default=AUTO,
    )
    rquery.set_defaults(func=cmd_rquery)

    save = sub.add_parser(
        "save",
        help="build indexes onto the durable file backend and persist "
             "a crash-safe store bundle",
    )
    save.add_argument("--dataset", required=True, help="dataset directory")
    save.add_argument("--store", required=True, help="output store directory")
    save.add_argument("--delta-t", type=int, default=5,
                      help="index granularity Δt in minutes (default 5)")
    save.set_defaults(func=cmd_save)

    open_cmd = sub.add_parser(
        "open",
        help="cold-open a saved store and answer one query from it",
    )
    open_cmd.add_argument("--store", required=True, help="store directory")
    open_cmd.add_argument("--x", type=float, default=0.0)
    open_cmd.add_argument("--y", type=float, default=0.0)
    open_cmd.add_argument("--time", type=_parse_time, default=day_time(11),
                          help="start time of day (default 11:00)")
    open_cmd.add_argument("--duration", type=float, default=10.0,
                          help="duration L in minutes (default 10)")
    open_cmd.add_argument("--prob", type=float, default=0.2)
    open_cmd.add_argument("--budget", type=float, default=None)
    open_cmd.add_argument(
        "--algorithm", choices=(AUTO, *executor_names("s")), default=AUTO,
    )
    open_cmd.add_argument("--geojson", type=Path, default=None,
                          help="write the region to this GeoJSON file")
    open_cmd.add_argument("--no-map", action="store_true",
                          help="skip the ASCII map")
    open_cmd.set_defaults(func=cmd_open)

    batch = sub.add_parser(
        "batch", help="stream a random workload through the client"
    )
    batch.add_argument("--dataset", default=None,
                       help="dataset directory (or use --open)")
    batch.add_argument("--open", default=None, metavar="STORE",
                       help="serve the batch from a saved store bundle "
                            "instead of building from a dataset")
    batch.add_argument("--s-queries", type=int, default=20,
                       help="number of s-queries (default 20)")
    batch.add_argument("--m-queries", type=int, default=5,
                       help="number of m-queries (default 5)")
    batch.add_argument("--r-queries", type=int, default=0,
                       help="number of reverse queries (default 0)")
    batch.add_argument("--duration", type=float, default=10.0,
                       help="s-query duration in minutes (default 10)")
    batch.add_argument("--prob", type=float, default=0.2)
    batch.add_argument("--delta-t", type=int, default=5,
                       help="index granularity Δt in minutes (default 5)")
    batch.add_argument("--algorithm", default=AUTO,
                       help="force this algorithm for the kinds that "
                            "register it; other requests stay auto-routed "
                            "(default: auto)")
    batch.add_argument("--workers", type=int, default=1,
                       help="worker threads; with --shards, worker "
                            "*processes* serving the shards (default 1)")
    batch.add_argument("--shards", type=int, default=0,
                       help="spatial shards served by worker processes "
                            "(default 0 = single-process); the report "
                            "gains one breakdown row per shard")
    batch.add_argument("--deadline-ms", type=float, default=None,
                       help="per-scatter reply deadline for the sharded "
                            "backend; a worker that misses it is retried "
                            "(default: engine default, 30000)")
    batch.add_argument("--max-retries", type=int, default=None,
                       help="bounded retry limit per scatter before the "
                            "sub-batch degrades to the local fallback "
                            "(default: engine default, 2)")
    batch.add_argument("--explain", action="store_true",
                       help="print the backend/fault-tolerance "
                            "configuration and the routing breakdown "
                            "before executing")
    batch.add_argument("--seed", type=int, default=7)
    batch.set_defaults(func=cmd_batch)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
