"""Simulated disk storage substrate.

The paper's central performance argument is about *disk I/O*: verifying
trajectory reachability segment by segment reads enormous trajectory time
lists from disk, and the ST-Index/Con-Index design exists to skip most of
those reads.  This package provides the storage substrate that makes those
savings first-class and measurable:

* :class:`~repro.storage.disk.SimulatedDisk` — a page-addressed disk with
  read/write counters and an accounted latency model.
* :class:`~repro.storage.pagestore.PageStore` — a record store on top of the
  disk; each record lives on one contiguous *extent* of pages, writes are
  group-committed page-at-a-time, and :meth:`~repro.storage.pagestore.PageStore.read_many`
  gathers a whole wave of records in one charging pass.
* :class:`~repro.storage.pagestore.BufferPool` — a striped LRU page cache
  with single-flight misses; only cache misses charge disk reads,
  mirroring a DBMS buffer manager.
* :mod:`~repro.storage.serialization` — compact binary record codecs.
* :mod:`~repro.storage.backends` — pluggable disk backends: the in-RAM
  default plus the durable, checksummed, journaled
  :class:`~repro.storage.backends.filedisk.FileBackedDisk`.
* :mod:`~repro.storage.crashsim` — deterministic crash/corruption
  injection for proving the durable backend's recovery guarantees.
"""

from repro.storage.backends import (
    DISK_BACKENDS,
    CorruptSnapshotError,
    DiskFormatError,
    DurabilityError,
    FileBackedDisk,
    TornWriteError,
    create_disk,
)
from repro.storage.disk import DiskError, DiskStats, SimulatedDisk
from repro.storage.pagestore import (
    DEFAULT_POOL_SHARDS,
    BufferPool,
    PageStore,
    RecordPointer,
)
from repro.storage.serialization import (
    decode_int_list,
    decode_str,
    encode_int_list,
    encode_str,
)

__all__ = [
    "SimulatedDisk",
    "FileBackedDisk",
    "create_disk",
    "DISK_BACKENDS",
    "DiskError",
    "DiskStats",
    "DurabilityError",
    "DiskFormatError",
    "CorruptSnapshotError",
    "TornWriteError",
    "PageStore",
    "BufferPool",
    "RecordPointer",
    "DEFAULT_POOL_SHARDS",
    "encode_int_list",
    "decode_int_list",
    "encode_str",
    "decode_str",
]
