"""Compact binary codecs for records stored on the simulated disk.

Time lists (§3.2.1) are lists of integer trajectory IDs keyed by
``(road segment, time slot, date)``; connection tables (§3.2.2) are lists of
integer segment IDs.  Both are stored as length-prefixed arrays of unsigned
varints so that record size — and therefore the number of pages a read
touches — tracks the actual data volume, which is what the paper's I/O
argument depends on.
"""

from __future__ import annotations

import struct


class SerializationError(Exception):
    """Raised when a payload cannot be decoded."""


def _encode_varint(value: int) -> bytes:
    """LEB128-style unsigned varint."""
    if value < 0:
        raise SerializationError(f"varints are unsigned, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(payload: bytes, offset: int) -> tuple[int, int]:
    """Decode one varint at ``offset``; return (value, next offset)."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(payload):
            raise SerializationError("truncated varint")
        byte = payload[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise SerializationError("varint too long")


def encode_int_list(values: list[int] | tuple[int, ...]) -> bytes:
    """Encode a list of non-negative ints as count-prefixed varints.

    Sorted inputs are delta-encoded implicitly by the caller if desired; this
    codec stores values verbatim so it round-trips arbitrary order.
    """
    parts = [_encode_varint(len(values))]
    parts.extend(_encode_varint(v) for v in values)
    return b"".join(parts)


def decode_int_list(payload: bytes) -> list[int]:
    """Inverse of :func:`encode_int_list`."""
    count, offset = _decode_varint(payload, 0)
    values: list[int] = []
    for _ in range(count):
        value, offset = _decode_varint(payload, offset)
        values.append(value)
    return values


def encode_str(text: str) -> bytes:
    """Encode a UTF-8 string with a 4-byte length prefix."""
    raw = text.encode("utf-8")
    return struct.pack("<I", len(raw)) + raw


def decode_str(payload: bytes) -> str:
    """Inverse of :func:`encode_str`."""
    if len(payload) < 4:
        raise SerializationError("truncated string header")
    (length,) = struct.unpack_from("<I", payload, 0)
    raw = payload[4 : 4 + length]
    if len(raw) != length:
        raise SerializationError("truncated string payload")
    return raw.decode("utf-8")


def encode_append_delta(
    delta_t_s: int,
    entries: list[tuple[int, int, int, int, int, int]]
    | tuple[tuple[int, int, int, int, int, int], ...],
) -> bytes:
    """Encode an ST-Index directory delta for the durable append journal.

    ``entries`` are the directory rows an ``append_trajectories`` call
    added, as plain int tuples ``(segment_id, slot, first_page,
    num_pages, offset, length)`` — a record pointer appended to the
    ``(segment_id, slot)`` chain.  The slot width tags the delta so a
    reopened store can refuse to apply a journal written at a different
    index granularity.  Plain tuples keep this codec free of any import
    of the index or pagestore layers.
    """
    parts = [_encode_varint(delta_t_s), _encode_varint(len(entries))]
    for entry in entries:
        if len(entry) != 6:
            raise SerializationError(f"append-delta entry must have 6 fields, got {entry!r}")
        parts.extend(_encode_varint(v) for v in entry)
    return b"".join(parts)


def decode_append_delta(
    payload: bytes,
) -> tuple[int, tuple[tuple[int, int, int, int, int, int], ...]]:
    """Inverse of :func:`encode_append_delta`."""
    delta_t_s, offset = _decode_varint(payload, 0)
    count, offset = _decode_varint(payload, offset)
    entries = []
    for _ in range(count):
        fields = []
        for _ in range(6):
            value, offset = _decode_varint(payload, offset)
            fields.append(value)
        entries.append(tuple(fields))
    if offset != len(payload):
        raise SerializationError("trailing bytes after append delta")
    return delta_t_s, tuple(entries)


def encode_float_list(values: list[float] | tuple[float, ...]) -> bytes:
    """Encode floats as count-prefixed little-endian doubles."""
    return struct.pack("<I", len(values)) + struct.pack(
        f"<{len(values)}d", *values
    )


def decode_float_list(payload: bytes) -> list[float]:
    """Inverse of :func:`encode_float_list`."""
    if len(payload) < 4:
        raise SerializationError("truncated float list header")
    (count,) = struct.unpack_from("<I", payload, 0)
    expected = 4 + 8 * count
    if len(payload) < expected:
        raise SerializationError("truncated float list payload")
    return list(struct.unpack_from(f"<{count}d", payload, 4))
