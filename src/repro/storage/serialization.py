"""Compact binary codecs for records stored on the simulated disk.

Time lists (§3.2.1) are lists of integer trajectory IDs keyed by
``(road segment, time slot, date)``; connection tables (§3.2.2) are lists of
integer segment IDs.  Both are stored as length-prefixed arrays of unsigned
varints so that record size — and therefore the number of pages a read
touches — tracks the actual data volume, which is what the paper's I/O
argument depends on.
"""

from __future__ import annotations

import struct


class SerializationError(Exception):
    """Raised when a payload cannot be decoded."""


def _encode_varint(value: int) -> bytes:
    """LEB128-style unsigned varint."""
    if value < 0:
        raise SerializationError(f"varints are unsigned, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(payload: bytes, offset: int) -> tuple[int, int]:
    """Decode one varint at ``offset``; return (value, next offset)."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(payload):
            raise SerializationError("truncated varint")
        byte = payload[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise SerializationError("varint too long")


def encode_int_list(values: list[int] | tuple[int, ...]) -> bytes:
    """Encode a list of non-negative ints as count-prefixed varints.

    Sorted inputs are delta-encoded implicitly by the caller if desired; this
    codec stores values verbatim so it round-trips arbitrary order.
    """
    parts = [_encode_varint(len(values))]
    parts.extend(_encode_varint(v) for v in values)
    return b"".join(parts)


def decode_int_list(payload: bytes) -> list[int]:
    """Inverse of :func:`encode_int_list`."""
    count, offset = _decode_varint(payload, 0)
    values: list[int] = []
    for _ in range(count):
        value, offset = _decode_varint(payload, offset)
        values.append(value)
    return values


def encode_str(text: str) -> bytes:
    """Encode a UTF-8 string with a 4-byte length prefix."""
    raw = text.encode("utf-8")
    return struct.pack("<I", len(raw)) + raw


def decode_str(payload: bytes) -> str:
    """Inverse of :func:`encode_str`."""
    if len(payload) < 4:
        raise SerializationError("truncated string header")
    (length,) = struct.unpack_from("<I", payload, 0)
    raw = payload[4 : 4 + length]
    if len(raw) != length:
        raise SerializationError("truncated string payload")
    return raw.decode("utf-8")


def encode_float_list(values: list[float] | tuple[float, ...]) -> bytes:
    """Encode floats as count-prefixed little-endian doubles."""
    return struct.pack("<I", len(values)) + struct.pack(
        f"<{len(values)}d", *values
    )


def decode_float_list(payload: bytes) -> list[float]:
    """Inverse of :func:`encode_float_list`."""
    if len(payload) < 4:
        raise SerializationError("truncated float list header")
    (count,) = struct.unpack_from("<I", payload, 0)
    expected = 4 + 8 * count
    if len(payload) < expected:
        raise SerializationError("truncated float list payload")
    return list(struct.unpack_from(f"<{count}d", payload, 4))
