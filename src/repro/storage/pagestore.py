"""Record-oriented storage on top of the simulated disk.

:class:`PageStore` packs variable-length records into fixed-size pages.
Every record occupies an **extent** — a contiguous run of pages — so a
:class:`RecordPointer` is just ``(first_page, num_pages, offset, length)``
and reading a record back is a single slice of the disk's backing buffer
instead of a per-page join loop.  Reading still *charges*
``ceil(record bytes / page size)``-ish pages — exactly the cost model the
paper's index design optimises against; only the Python work per read
shrinks.

Writes are **group-committed**: the tail page stays in an in-memory write
buffer and is flushed when it fills (a page boundary) or on an explicit
:meth:`PageStore.flush`, so building an index charges about one
``page_write`` per page instead of one per record.  Reading a record whose
extent includes the dirty tail flushes it first, keeping readers coherent.

:class:`BufferPool` interposes an LRU page cache, so repeated access to hot
pages (e.g. the start segment's time list during trace-back search) is free
after the first read, mirroring a DBMS buffer manager.  The pool is
**striped** into independently locked LRU shards (``page_id % shards``)
with *single-flight* miss handling — a miss is fetched while the shard
lock is held, so two threads missing the same page charge exactly one disk
read and threaded-batch :class:`~repro.storage.disk.DiskStats` stay
deterministic.  :meth:`BufferPool.get_pages` charges a whole batch of page
accesses taking each shard lock once, the entry point the wave-granular
record gathers use.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.storage.disk import SimulatedDisk

#: Default lock-stripe count for :class:`BufferPool`.  Small enough that a
#: few-hundred-page pool still gets meaningfully sized LRU shards, large
#: enough that batch worker threads rarely contend on one lock.
DEFAULT_POOL_SHARDS = 8


@dataclass(frozen=True)
class RecordPointer:
    """Location of a stored record: one extent plus offset and length.

    Attributes:
        first_page: first page id of the record's contiguous extent.
        num_pages: pages the record's bytes span (at least 1, so reading
            an empty record still charges the page that holds its slot —
            the same cost the chain layout used to charge).
        offset: byte offset of the record within the first page.
        length: total record length in bytes.
    """

    first_page: int
    num_pages: int
    offset: int
    length: int

    @property
    def page_ids(self) -> tuple[int, ...]:
        """The extent as explicit page ids (compatibility accessor)."""
        return tuple(range(self.first_page, self.first_page + self.num_pages))

    def __contains__(self, page_id: int) -> bool:
        return self.first_page <= page_id < self.first_page + self.num_pages


class PageStore:
    """Append-only record store over a :class:`SimulatedDisk`.

    Records are appended with :meth:`append` and fetched with :meth:`read`
    (or in batches with :meth:`read_many`).  The store keeps an in-memory
    write buffer for the tail page and group-commits it (flush on page
    boundary, plus :meth:`flush` at build end); directory state (record
    pointers) lives in memory, as index directories do in the paper's
    design, while record *payloads* cost disk I/O to read back.

    The tail state is guarded by an internal lock, so concurrent appends
    (the Con-Index materialises entries lazily from query worker
    threads) cannot interleave a record's extent; reads are thread-safe
    via the same lock plus the disk's and pool's own locks.
    """

    def __init__(self, disk: SimulatedDisk) -> None:
        self._disk = disk
        # The tail page is allocated lazily on first append, so opening a
        # store over existing pages (the persistence restore path) does
        # not grow the disk.
        self._tail_page_id: int | None = None  # guarded_by: _tail_lock
        self._tail = bytearray()  # guarded_by: _tail_lock
        self._dirty = False  # guarded_by: _tail_lock
        self._tail_lock = threading.Lock()

    @property
    def disk(self) -> SimulatedDisk:
        return self._disk

    # -- writes ----------------------------------------------------------

    def append(self, payload: bytes) -> RecordPointer:
        """Store ``payload`` on one contiguous extent and return a pointer.

        The record continues the current tail page when possible; when the
        disk has since handed pages to another store (extents must stay
        contiguous), the tail is retired and the record starts a fresh
        extent at offset 0.  Full pages are written immediately (the group
        commit's page-boundary flush); a partial final page becomes the
        new dirty tail.
        """
        with self._tail_lock:
            return self._append_locked(payload)

    # repro-lint: holds=_tail_lock
    def _append_locked(self, payload: bytes) -> RecordPointer:
        disk = self._disk
        page_size = disk.page_size
        if self._tail_page_id is None:
            self._tail_page_id = disk.allocate()
        data = memoryview(bytes(payload))
        length = len(data)
        offset = len(self._tail)
        space = page_size - offset

        if length <= space:
            if length:
                self._tail += data
                self._dirty = True
            pointer = RecordPointer(self._tail_page_id, 1, offset, length)
            if len(self._tail) == page_size:
                self._flush_tail()
                self._tail_page_id = None  # next append opens a fresh tail
                self._tail = bytearray()
            return pointer

        # Atomic check-and-extend: the continuation pages are allocated
        # only if the tail page is still the disk's last page, under the
        # disk's own lock — another store's interleaved allocation makes
        # this return None instead of silently breaking contiguity.
        extra = -(-(length - space) // page_size)
        first_new = disk.allocate_after(self._tail_page_id, extra)
        if first_new is not None:
            first = self._tail_page_id
            start_offset = offset
            self._tail += data[:space]
            consumed = space
            self._flush_tail()  # page boundary: the tail is now full
            num_pages = 1 + extra
        else:
            # Another store on this disk allocated pages since our tail
            # was handed out; retire the tail and pack the whole record
            # into a fresh contiguous extent.
            if self._dirty:
                self._flush_tail()
            first = first_new = disk.allocate(-(-length // page_size))
            start_offset = 0
            consumed = 0
            extra = num_pages = -(-length // page_size)

        for i in range(extra):
            chunk = data[consumed : consumed + page_size]
            consumed += len(chunk)
            if len(chunk) == page_size:
                disk.write_page(first_new + i, bytes(chunk))
            else:
                # Partial final page: becomes the new (dirty) tail.
                self._tail_page_id = first_new + i
                self._tail = bytearray(chunk)
                self._dirty = True
                break
        else:
            # The record ended exactly on a page boundary; the next
            # append opens a fresh tail.
            self._tail_page_id = None
            self._tail = bytearray()
            self._dirty = False
        return RecordPointer(first, num_pages, start_offset, length)

    def flush(self) -> None:
        """Write the dirty tail page out (the build-end group commit)."""
        # Double-checked fast path: a stale False only skips a flush some
        # other writer is responsible for; the locked re-check decides.
        if not self._dirty:  # repro-lint: disable=RL001
            return
        with self._tail_lock:
            if self._dirty:
                self._flush_tail()

    def ensure_committed(self, pointers: Iterable[RecordPointer]) -> None:
        """Flush the tail iff any pointer's extent includes the dirty tail.

        Callers that charge page accesses themselves (the batched gather
        path) use this before slicing record bytes out of the backing
        buffer.  The unlocked ``_dirty`` fast check is safe: a pointer
        only becomes visible to readers after its append returned, at
        which point any of its unflushed bytes have already set the flag.
        """
        # Double-checked fast path; see the docstring for why the unlocked
        # read cannot miss a flush a visible pointer depends on.
        if not self._dirty:  # repro-lint: disable=RL001
            return
        with self._tail_lock:
            if not self._dirty:
                return
            tail = self._tail_page_id
            for pointer in pointers:
                if tail in pointer:
                    self._flush_tail()
                    return

    # repro-lint: holds=_tail_lock
    def _flush_tail(self) -> None:
        self._disk.write_page(self._tail_page_id, bytes(self._tail))
        self._dirty = False

    # -- reads -----------------------------------------------------------

    def read(self, pointer: RecordPointer, pool: "BufferPool | None" = None) -> bytes:
        """Read a record back; every page of its extent is charged (or cached).

        The charge is per page — through the pool when given, straight to
        the disk otherwise — and the payload is one contiguous slice of
        the disk's backing buffer.  A record overlapping the dirty tail
        forces a tail flush first, so readers always see committed bytes.
        """
        # Snapshot the tail id: a concurrent append can flush a full tail
        # and reset it to None between these reads (dirty implies a tail
        # exists only under the lock).
        # Double-checked fast path: the unlocked snapshot only gates entry
        # to the locked re-check, which re-reads both fields.
        tail = self._tail_page_id  # repro-lint: disable=RL001
        if self._dirty and tail is not None and tail in pointer:  # repro-lint: disable=RL001
            with self._tail_lock:
                tail = self._tail_page_id
                if self._dirty and tail is not None and tail in pointer:
                    self._flush_tail()
        if pool is not None:
            if pointer.num_pages == 1:
                pool.get_page(pointer.first_page)
            else:
                pool.get_pages(pointer.page_ids)
        else:
            self._disk.charge_reads(pointer.page_ids)
        return self._disk.extent_bytes(
            pointer.first_page, pointer.offset, pointer.length
        )

    def read_many(
        self,
        pointers: Sequence[RecordPointer],
        pool: "BufferPool | None" = None,
    ) -> list[bytes]:
        """Batch read: gather many records' pages in one charging pass.

        Accounting-identical to calling :meth:`read` once per pointer in
        order — the same page access sequence (pointer order, pages within
        each extent in order, duplicates charged every time) against the
        same pool — but the pool charge takes each lock shard once for the
        whole batch and the payloads come out as single extent slices.
        ``tests/test_batched_io.py`` proves the equivalence on randomized
        record sets.  (The ST-Index wave gather charges through
        :meth:`BufferPool.get_pages` directly, with memoized access-page
        lists, because its decoded-record cache makes the payloads
        themselves unnecessary — same accounting, one layer lower.)

        Args:
            pointers: record pointers, in the order the sequential scalar
                loop would read them (duplicates allowed and charged).
            pool: buffer pool to charge through (``None``: straight disk
                reads).

        Returns:
            Payloads aligned with ``pointers``.
        """
        self.ensure_committed(pointers)
        page_ids: list[int] = []
        for pointer in pointers:
            page_ids.extend(
                range(pointer.first_page, pointer.first_page + pointer.num_pages)
            )
        if pool is not None:
            pool.get_pages(page_ids)
        else:
            self._disk.charge_reads(page_ids)
        extent_bytes = self._disk.extent_bytes
        return [
            extent_bytes(p.first_page, p.offset, p.length) for p in pointers
        ]


class _PoolShard:
    """One lock stripe of a :class:`BufferPool`: an LRU map plus counters."""

    __slots__ = ("lock", "pages", "quota", "hits", "misses", "evictions")

    def __init__(self, quota: int) -> None:
        self.lock = threading.Lock()
        self.pages: OrderedDict[int, bytes] = OrderedDict()
        self.quota = quota
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class BufferPool:
    """A fixed-capacity LRU cache of disk pages, striped for concurrency.

    Pages map to ``page_id % num_shards`` lock stripes, each an
    independent LRU holding its share of the capacity.  A miss is fetched
    from the disk *while the shard lock is held* — the single-flight
    guarantee: a second thread requesting the same missing page blocks on
    the shard lock and then hits the freshly cached copy, so concurrent
    misses charge exactly one disk read and the hit/miss counters match
    the sequential schedule.  (The simulated disk read is memory-speed, so
    holding the lock across it costs nothing; other shards stay
    available.)

    Args:
        disk: backing simulated disk.
        capacity: maximum number of cached pages across all shards; ``0``
            disables caching (every access is a disk read).
        shards: requested lock-stripe count; clamped to ``capacity`` so
            every shard holds at least one page.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        capacity: int = 256,
        shards: int = DEFAULT_POOL_SHARDS,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._disk = disk
        self.capacity = capacity
        count = max(1, min(shards, capacity)) if capacity > 0 else 1
        base, remainder = divmod(capacity, count)
        self._shards = [
            _PoolShard(base + (1 if i < remainder else 0)) for i in range(count)
        ]
        # Per-thread mirrors of the hit/miss/eviction counters, updated
        # alongside the shard counters: the disk's local_snapshot sums
        # them so per-query accounting windows stay exact under threads.
        self._tlocal = threading.local()
        disk.attach_pool(self)

    def _local(self) -> list:
        counters = getattr(self._tlocal, "counters", None)
        if counters is None:
            counters = self._tlocal.counters = [0, 0, 0]
        return counters

    def local_counters(self) -> tuple[int, int, int]:
        """The calling thread's (hits, misses, evictions) contributions."""
        counters = self._local()
        return counters[0], counters[1], counters[2]

    @property
    def num_shards(self) -> int:
        """Lock stripes backing the pool (the ``pool_lock_shards`` metric)."""
        return len(self._shards)

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self._shards)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self._shards)

    @property
    def evictions(self) -> int:
        return sum(s.evictions for s in self._shards)

    def get_page(self, page_id: int) -> bytes:
        """Return a page, reading from disk only on a cache miss."""
        local = self._local()
        if self.capacity == 0:
            shard = self._shards[0]
            with shard.lock:
                shard.misses += 1
            local[1] += 1
            return self._disk.read_page(page_id)
        shard = self._shards[page_id % len(self._shards)]
        with shard.lock:
            pages = shard.pages
            cached = pages.get(page_id)
            if cached is not None:
                shard.hits += 1
                local[0] += 1
                pages.move_to_end(page_id)
                return cached
            # Single flight: fetch under the shard lock, so a concurrent
            # request for the same page waits here and then hits.
            shard.misses += 1
            local[1] += 1
            payload = self._disk.read_page(page_id)
            pages[page_id] = payload
            if len(pages) > shard.quota:
                pages.popitem(last=False)
                shard.evictions += 1
                local[2] += 1
            return payload

    def get_pages(self, page_ids: Iterable[int]) -> None:
        """Charge (and cache) a batch of page accesses in one pass.

        Semantically identical to calling :meth:`get_page` once per id in
        order — same hits, misses, evictions and disk reads, duplicates
        charged every time — but each shard's lock is taken once per
        batch.  Accesses are processed per shard in input order; shards
        are independent LRUs, so cross-shard interleaving cannot change
        any counter.  Returns nothing: batch callers take record payloads
        as extent slices, the pool only accounts and keeps pages warm.
        """
        local = self._local()
        if self.capacity == 0:
            ids = list(page_ids)
            shard = self._shards[0]
            with shard.lock:
                shard.misses += len(ids)
            local[1] += len(ids)
            self._disk.charge_reads(ids)
            return
        if isinstance(page_ids, (list, tuple)) and len(page_ids) == 1:
            self.get_page(page_ids[0])
            return
        count = len(self._shards)
        if count == 1:
            buckets = [(self._shards[0], list(page_ids))]
        else:
            grouped: dict[int, list[int]] = {}
            for page_id in page_ids:
                grouped.setdefault(page_id % count, []).append(page_id)
            buckets = [(self._shards[i], ids) for i, ids in grouped.items()]
        read_page = self._disk.read_page
        for shard, ids in buckets:
            with shard.lock:
                pages = shard.pages
                pages_get = pages.get
                move_to_end = pages.move_to_end
                quota = shard.quota
                hits = 0
                for page_id in ids:
                    if pages_get(page_id) is not None:
                        hits += 1
                        move_to_end(page_id)
                        continue
                    shard.misses += 1
                    local[1] += 1
                    pages[page_id] = read_page(page_id)
                    if len(pages) > quota:
                        pages.popitem(last=False)
                        shard.evictions += 1
                        local[2] += 1
                shard.hits += hits
                local[0] += hits

    def invalidate(self, page_id: int | None = None) -> None:
        """Drop one page (or everything) from the cache."""
        if page_id is None:
            for shard in self._shards:
                with shard.lock:
                    shard.pages.clear()
            return
        shard = self._shards[page_id % len(self._shards)]
        with shard.lock:
            shard.pages.pop(page_id, None)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
