"""Record-oriented storage on top of the simulated disk.

:class:`PageStore` packs variable-length records into fixed-size pages; a
record that does not fit the remaining space of the current page spills onto
freshly allocated continuation pages.  Reading a record therefore touches
``ceil(record bytes / page size)``-ish pages — exactly the cost model the
paper's index design optimises against.

:class:`BufferPool` interposes an LRU page cache, so repeated access to hot
pages (e.g. the start segment's time list during trace-back search) is free
after the first read, mirroring a DBMS buffer manager.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.storage.disk import SimulatedDisk


@dataclass(frozen=True)
class RecordPointer:
    """Location of a stored record: its page chain and total length."""

    page_ids: tuple[int, ...]
    offset: int
    length: int


class PageStore:
    """Append-only record store over a :class:`SimulatedDisk`.

    Records are appended with :meth:`append` and fetched with :meth:`read`.
    The store keeps an in-memory write buffer for the tail page and flushes
    it page-at-a-time; directory state (record pointers) lives in memory, as
    index directories do in the paper's design, while record *payloads* cost
    disk I/O to read back.
    """

    def __init__(self, disk: SimulatedDisk) -> None:
        self._disk = disk
        self._tail_page_id = disk.allocate()
        self._tail = bytearray()

    @property
    def disk(self) -> SimulatedDisk:
        return self._disk

    def append(self, payload: bytes) -> RecordPointer:
        """Store ``payload`` and return a pointer for later reads."""
        page_size = self._disk.page_size
        offset = len(self._tail)
        pages = [self._tail_page_id]
        remaining = memoryview(bytes(payload))
        space = page_size - len(self._tail)
        take = min(space, len(remaining))
        self._tail.extend(remaining[:take])
        remaining = remaining[take:]
        self._flush_tail()
        while len(remaining) > 0:
            self._tail_page_id = self._disk.allocate()
            self._tail = bytearray()
            take = min(page_size, len(remaining))
            self._tail.extend(remaining[:take])
            remaining = remaining[take:]
            pages.append(self._tail_page_id)
            self._flush_tail()
        if len(self._tail) == page_size:
            self._tail_page_id = self._disk.allocate()
            self._tail = bytearray()
        return RecordPointer(tuple(pages), offset, len(payload))

    def read(self, pointer: RecordPointer, pool: "BufferPool | None" = None) -> bytes:
        """Read a record back; every page in its chain is charged (or cached)."""
        chunks: list[bytes] = []
        needed = pointer.length
        for index, page_id in enumerate(pointer.page_ids):
            page = (
                pool.get_page(page_id)
                if pool is not None
                else self._disk.read_page(page_id)
            )
            start = pointer.offset if index == 0 else 0
            chunk = page[start : start + needed]
            chunks.append(chunk)
            needed -= len(chunk)
            if needed <= 0:
                break
        data = b"".join(chunks)
        if len(data) != pointer.length:
            raise ValueError(
                f"short read: wanted {pointer.length} bytes, got {len(data)}"
            )
        return data

    def _flush_tail(self) -> None:
        self._disk.write_page(self._tail_page_id, bytes(self._tail))


class BufferPool:
    """A fixed-capacity LRU cache of disk pages.

    Args:
        disk: backing simulated disk.
        capacity: maximum number of cached pages; ``0`` disables caching
            (every access is a disk read).
    """

    def __init__(self, disk: SimulatedDisk, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._disk = disk
        self.capacity = capacity
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        # Pools are shared across QueryService batch worker threads; the
        # lock keeps the LRU's check-then-act sequences atomic.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        disk.attach_pool(self)

    def get_page(self, page_id: int) -> bytes:
        """Return a page, reading from disk only on a cache miss."""
        if self.capacity == 0:
            self.misses += 1
            return self._disk.read_page(page_id)
        with self._lock:
            cached = self._pages.get(page_id)
            if cached is not None:
                self._pages.move_to_end(page_id)
                self.hits += 1
                return cached
        self.misses += 1
        payload = self._disk.read_page(page_id)
        with self._lock:
            self._pages[page_id] = payload
            if len(self._pages) > self.capacity:
                self._pages.popitem(last=False)
                self.evictions += 1
        return payload

    def invalidate(self, page_id: int | None = None) -> None:
        """Drop one page (or everything) from the cache."""
        with self._lock:
            if page_id is None:
                self._pages.clear()
            else:
                self._pages.pop(page_id, None)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
