"""A simulated page-addressed disk with I/O accounting.

The evaluation in the paper measures query *running time*, which is dominated
by trajectory-data disk access (§1.2, §3.2.2).  Reproducing that on a laptop
with the OS page cache warm would hide exactly the effect the paper measures,
so every trajectory time-list access in this reproduction goes through a
:class:`SimulatedDisk`.  The disk keeps page payloads in memory but charges
an explicit, queryable cost for every page read and write; benchmarks report
both wall-clock time (real Python work still scales with pages touched) and
the accounted I/O cost.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field


DEFAULT_PAGE_SIZE = 4096

#: Accounted cost of one page read, in simulated milliseconds.  The default
#: approximates a single random read on a 7200 rpm disk, matching the
#: magnitude that makes trajectory verification "prohibitively inefficient"
#: in §3.2.2.  Purely an accounting constant; nothing sleeps.
DEFAULT_READ_LATENCY_MS = 8.0

#: Accounted cost of one page write, in simulated milliseconds.
DEFAULT_WRITE_LATENCY_MS = 10.0


class DiskError(Exception):
    """Raised on invalid page accesses (bad page id, oversized payload)."""


@dataclass
class DiskStats:
    """Counters accumulated by a :class:`SimulatedDisk` and its pools.

    Attributes:
        page_reads: number of page read operations served by the disk.
        page_writes: number of page write operations served.
        bytes_read: total payload bytes returned by reads.
        bytes_written: total payload bytes accepted by writes.
        pool_hits: page requests served from attached buffer pools.
        pool_misses: pool requests that fell through to a disk read.
        pool_evictions: pages dropped from full pools (LRU pressure).

    The pool counters measure cache effectiveness: ``pool_hits`` pages
    were requested but never charged as ``page_reads``, and sustained
    ``pool_evictions`` mean the working set exceeds pool capacity.
    """

    page_reads: int = 0
    page_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    pool_evictions: int = 0

    @property
    def pool_hit_rate(self) -> float:
        """Fraction of pool requests served without a disk read."""
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else 0.0

    def copy(self) -> "DiskStats":
        return DiskStats(
            page_reads=self.page_reads,
            page_writes=self.page_writes,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            pool_hits=self.pool_hits,
            pool_misses=self.pool_misses,
            pool_evictions=self.pool_evictions,
        )

    def __sub__(self, other: "DiskStats") -> "DiskStats":
        return DiskStats(
            page_reads=self.page_reads - other.page_reads,
            page_writes=self.page_writes - other.page_writes,
            bytes_read=self.bytes_read - other.bytes_read,
            bytes_written=self.bytes_written - other.bytes_written,
            pool_hits=self.pool_hits - other.pool_hits,
            pool_misses=self.pool_misses - other.pool_misses,
            pool_evictions=self.pool_evictions - other.pool_evictions,
        )


@dataclass
class _Page:
    payload: bytes = b""


class SimulatedDisk:
    """An in-memory disk that charges for page-granular I/O.

    Pages are identified by dense integer ids handed out by :meth:`allocate`.
    Payloads may be shorter than ``page_size`` (trailing space is considered
    unused) but never longer.

    Args:
        page_size: capacity of one page in bytes.
        read_latency_ms: accounted cost per page read.
        write_latency_ms: accounted cost per page write.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        read_latency_ms: float = DEFAULT_READ_LATENCY_MS,
        write_latency_ms: float = DEFAULT_WRITE_LATENCY_MS,
    ) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.read_latency_ms = read_latency_ms
        self.write_latency_ms = write_latency_ms
        self.stats = DiskStats()
        self._pages: list[_Page] = []
        self._pools: list[weakref.ReferenceType] = []

    # -- allocation ----------------------------------------------------

    def allocate(self) -> int:
        """Allocate a fresh empty page and return its id (no I/O charged)."""
        self._pages.append(_Page())
        return len(self._pages) - 1

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    # -- I/O -----------------------------------------------------------

    def read_page(self, page_id: int) -> bytes:
        """Read one page, charging a read to the stats."""
        page = self._page(page_id)
        self.stats.page_reads += 1
        self.stats.bytes_read += len(page.payload)
        return page.payload

    def write_page(self, page_id: int, payload: bytes) -> None:
        """Write one page, charging a write to the stats.

        Any attached buffer pool drops its cached copy (write-through
        invalidation), so readers never see a stale page after the store's
        tail page is extended in place.
        """
        if len(payload) > self.page_size:
            raise DiskError(
                f"payload of {len(payload)} bytes exceeds page size {self.page_size}"
            )
        page = self._page(page_id)
        page.payload = bytes(payload)
        self.stats.page_writes += 1
        self.stats.bytes_written += len(payload)
        for ref in self._pools:
            pool = ref()
            if pool is not None:
                pool.invalidate(page_id)

    def attach_pool(self, pool) -> None:
        """Register a buffer pool for write-through invalidation."""
        self._pools = [ref for ref in self._pools if ref() is not None]
        self._pools.append(weakref.ref(pool))

    # -- accounting ----------------------------------------------------

    def simulated_io_ms(self, stats: DiskStats | None = None) -> float:
        """Accounted I/O time in milliseconds for ``stats`` (default: own)."""
        s = stats if stats is not None else self.stats
        return (
            s.page_reads * self.read_latency_ms
            + s.page_writes * self.write_latency_ms
        )

    def snapshot(self) -> DiskStats:
        """A copy of the current counters, for before/after differencing.

        Includes the hit/miss/eviction counters of every attached buffer
        pool, so a snapshot difference reports cache effectiveness next to
        the raw I/O it saved.
        """
        stats = self.stats.copy()
        for ref in self._pools:
            pool = ref()
            if pool is not None:
                stats.pool_hits += pool.hits
                stats.pool_misses += pool.misses
                stats.pool_evictions += pool.evictions
        return stats

    def reset_stats(self) -> None:
        self.stats = DiskStats()

    # -- internal --------------------------------------------------------

    def _page(self, page_id: int) -> _Page:
        if not 0 <= page_id < len(self._pages):
            raise DiskError(f"page {page_id} was never allocated")
        return self._pages[page_id]

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"SimulatedDisk(pages={self.num_pages}, "
            f"reads={self.stats.page_reads}, writes={self.stats.page_writes})"
        )
