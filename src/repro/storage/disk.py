"""A simulated page-addressed disk with I/O accounting.

The evaluation in the paper measures query *running time*, which is dominated
by trajectory-data disk access (§1.2, §3.2.2).  Reproducing that on a laptop
with the OS page cache warm would hide exactly the effect the paper measures,
so every trajectory time-list access in this reproduction goes through a
:class:`SimulatedDisk`.  The disk keeps page payloads in memory but charges
an explicit, queryable cost for every page read and write; benchmarks report
both wall-clock time (real Python work still scales with pages touched) and
the accounted I/O cost.

Pages live in **one growable contiguous buffer** (not one object per page),
so a page is an offset range and a record stored on an *extent* — a
contiguous run of pages handed out by :meth:`SimulatedDisk.allocate` — can
be served as a single buffer slice instead of a per-page join loop.  All
counter updates run under one internal lock, so threaded batch workers
produce exact totals; every update is additionally mirrored onto the
calling thread's private counters (:meth:`SimulatedDisk.local_snapshot`),
so a worker thread can window exactly its own query's I/O while the batch
runs concurrently.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # circular at runtime: pagestore imports this module
    from repro.storage.pagestore import BufferPool


DEFAULT_PAGE_SIZE = 4096

#: Accounted cost of one page read, in simulated milliseconds.  The default
#: approximates a single random read on a 7200 rpm disk, matching the
#: magnitude that makes trajectory verification "prohibitively inefficient"
#: in §3.2.2.  Purely an accounting constant; nothing sleeps.
DEFAULT_READ_LATENCY_MS = 8.0

#: Accounted cost of one page write, in simulated milliseconds.
DEFAULT_WRITE_LATENCY_MS = 10.0


class DiskError(Exception):
    """Raised on invalid page accesses (bad page id, oversized payload)."""


@dataclass
class DiskStats:
    """Counters accumulated by a :class:`SimulatedDisk` and its pools.

    Attributes:
        page_reads: number of page read operations served by the disk.
        page_writes: number of page write operations served.
        bytes_read: total payload bytes returned by reads.
        bytes_written: total payload bytes accepted by writes.
        pool_hits: page requests served from attached buffer pools.
        pool_misses: pool requests that fell through to a disk read.
        pool_evictions: pages dropped from full pools (LRU pressure).

    The pool counters measure cache effectiveness: ``pool_hits`` pages
    were requested but never charged as ``page_reads``, and sustained
    ``pool_evictions`` mean the working set exceeds pool capacity.
    """

    page_reads: int = 0
    page_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    pool_evictions: int = 0

    @property
    def pool_hit_rate(self) -> float:
        """Fraction of pool requests served without a disk read."""
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else 0.0

    def copy(self) -> "DiskStats":
        return DiskStats(
            page_reads=self.page_reads,
            page_writes=self.page_writes,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            pool_hits=self.pool_hits,
            pool_misses=self.pool_misses,
            pool_evictions=self.pool_evictions,
        )

    def __sub__(self, other: "DiskStats") -> "DiskStats":
        return DiskStats(
            page_reads=self.page_reads - other.page_reads,
            page_writes=self.page_writes - other.page_writes,
            bytes_read=self.bytes_read - other.bytes_read,
            bytes_written=self.bytes_written - other.bytes_written,
            pool_hits=self.pool_hits - other.pool_hits,
            pool_misses=self.pool_misses - other.pool_misses,
            pool_evictions=self.pool_evictions - other.pool_evictions,
        )

    def __add__(self, other: "DiskStats") -> "DiskStats":
        return DiskStats(
            page_reads=self.page_reads + other.page_reads,
            page_writes=self.page_writes + other.page_writes,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            pool_hits=self.pool_hits + other.pool_hits,
            pool_misses=self.pool_misses + other.pool_misses,
            pool_evictions=self.pool_evictions + other.pool_evictions,
        )


class SimulatedDisk:
    """An in-memory disk that charges for page-granular I/O.

    Pages are identified by dense integer ids handed out by :meth:`allocate`
    and backed by one contiguous ``bytearray``: page ``i`` occupies byte
    range ``[i * page_size, (i + 1) * page_size)``.  Payloads may be shorter
    than ``page_size`` (trailing space is considered unused) but never
    longer.

    Args:
        page_size: capacity of one page in bytes.
        read_latency_ms: accounted cost per page read.
        write_latency_ms: accounted cost per page write.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        read_latency_ms: float = DEFAULT_READ_LATENCY_MS,
        write_latency_ms: float = DEFAULT_WRITE_LATENCY_MS,
    ) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.read_latency_ms = read_latency_ms
        self.write_latency_ms = write_latency_ms
        self.stats = DiskStats()  # guarded_by: _lock
        self._buf = bytearray()  # guarded_by: _lock
        self._used: list[int] = []  # payload length per page  # guarded_by: _lock
        self._pools: list[weakref.ReferenceType] = []  # guarded_by: _lock
        # One lock covers buffer mutation and counter updates, so batch
        # worker threads accumulate exact stats.  Buffer pools may call in
        # while holding their shard locks; the disk never calls back into
        # a pool while holding this lock (write-through invalidation runs
        # after it is released), so the lock order is always
        # shard -> disk and cannot deadlock.
        self._lock = threading.Lock()
        # Per-thread counter mirrors: every update below also lands on the
        # calling thread's private DiskStats, so :meth:`local_snapshot`
        # can open an accounting window that sees only the current
        # thread's I/O — the per-query attribution batch worker threads
        # need.  Thread-local, so no lock is required.
        self._tlocal = threading.local()

    # -- allocation ----------------------------------------------------

    def allocate(self, count: int = 1) -> int:
        """Allocate ``count`` fresh contiguous pages (an *extent*).

        Returns the first page id of the run; no I/O is charged.  With the
        default ``count=1`` this is the classic single-page allocation.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        with self._lock:
            return self._allocate_locked(count)

    def allocate_after(self, page_id: int, count: int) -> int | None:
        """Atomically extend the extent ending at ``page_id``.

        Returns the first id of ``count`` fresh pages *iff* ``page_id``
        is still the disk's last page — the check and the allocation
        happen under one lock, so no other store's allocation can slip
        between them.  Returns ``None`` when ``page_id`` is no longer
        last (the caller must start a fresh extent instead).
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        with self._lock:
            if page_id != len(self._used) - 1:
                return None
            return self._allocate_locked(count)

    # repro-lint: holds=_lock
    def _allocate_locked(self, count: int) -> int:
        first = len(self._used)
        self._buf.extend(b"\x00" * (count * self.page_size))
        self._used.extend([0] * count)
        return first

    @property
    def num_pages(self) -> int:
        with self._lock:
            return len(self._used)

    # -- I/O -----------------------------------------------------------

    def read_page(self, page_id: int) -> bytes:
        """Read one page, charging a read to the stats."""
        local = self._local_stats()
        with self._lock:
            used = self._used_checked(page_id)
            self._ensure_resident_locked(page_id, 1)
            self.stats.page_reads += 1
            self.stats.bytes_read += used
            local.page_reads += 1
            local.bytes_read += used
            start = page_id * self.page_size
            return bytes(self._buf[start : start + used])

    def charge_reads(self, page_ids: Sequence[int]) -> None:
        """Charge a batch of page reads in one pass (no payloads returned).

        Accounting-identical to calling :meth:`read_page` once per id, in
        order — the same counts and bytes — but takes the stats lock once.
        The batched record-gather path uses this when the payload bytes
        are served as a single extent slice rather than per-page chunks.
        """
        local = self._local_stats()
        with self._lock:
            total_bytes = 0
            for page_id in page_ids:
                total_bytes += self._used_checked(page_id)
            self.stats.page_reads += len(page_ids)
            self.stats.bytes_read += total_bytes
            local.page_reads += len(page_ids)
            local.bytes_read += total_bytes

    def write_page(self, page_id: int, payload: bytes) -> None:
        """Write one page, charging a write to the stats.

        Any attached buffer pool drops its cached copy (write-through
        invalidation), so readers never see a stale page after the store's
        tail page is extended in place.
        """
        if len(payload) > self.page_size:
            raise DiskError(
                f"payload of {len(payload)} bytes exceeds page size {self.page_size}"
            )
        local = self._local_stats()
        with self._lock:
            self._used_checked(page_id)
            self._ensure_resident_locked(page_id, 1)
            start = page_id * self.page_size
            self._buf[start : start + len(payload)] = payload
            self._used[page_id] = len(payload)
            self._note_write_locked(page_id)
            self.stats.page_writes += 1
            self.stats.bytes_written += len(payload)
            local.page_writes += 1
            local.bytes_written += len(payload)
            pools = [ref() for ref in self._pools]
        # Invalidate outside the lock: pools take their own shard locks
        # and may call back into the disk on their next miss.
        for pool in pools:
            if pool is not None:
                pool.invalidate(page_id)

    def extent_bytes(self, first_page: int, offset: int, length: int) -> bytes:
        """Uncharged contiguous slice of an extent's payload bytes.

        The data half of a record read: the caller charges the touched
        pages (directly or through a buffer pool), then takes the record's
        bytes as one slice of the backing buffer — no per-page join.  Only
        meaningful for extents written front-to-back by a
        :class:`~repro.storage.pagestore.PageStore`.
        """
        if length < 0 or offset < 0:
            raise DiskError(f"bad extent slice offset={offset} length={length}")
        start = first_page * self.page_size + offset
        with self._lock:
            if start + length > len(self._buf):
                raise DiskError("extent slice beyond allocated pages")
            if length > 0:
                span_first = start // self.page_size
                span_last = (start + length - 1) // self.page_size
                self._ensure_resident_locked(span_first, span_last - span_first + 1)
            return bytes(self._buf[start : start + length])

    def attach_pool(self, pool: BufferPool) -> None:
        """Register a buffer pool for write-through invalidation.

        Dead references are pruned and re-attaching a live pool is a
        no-op, so a pool can never be invalidated (or counted by
        :meth:`snapshot`) twice.
        """
        with self._lock:
            live = []
            for ref in self._pools:
                existing = ref()
                if existing is None:
                    continue
                if existing is pool:
                    return
                live.append(ref)
            live.append(weakref.ref(pool))
            self._pools = live

    # -- accounting ----------------------------------------------------

    def simulated_io_ms(self, stats: DiskStats | None = None) -> float:
        """Accounted I/O time in milliseconds for ``stats`` (default: own)."""
        if stats is None:
            with self._lock:
                stats = self.stats.copy()
        return (
            stats.page_reads * self.read_latency_ms
            + stats.page_writes * self.write_latency_ms
        )

    def snapshot(self) -> DiskStats:
        """A copy of the current counters, for before/after differencing.

        Includes the hit/miss/eviction counters of every *live* attached
        buffer pool, so a snapshot difference reports cache effectiveness
        next to the raw I/O it saved.  References to collected pools are
        pruned here as well as in :meth:`attach_pool`, so a long-lived
        service that retires many pools neither leaks weakrefs nor
        double-counts a pool that re-attaches.
        """
        with self._lock:
            stats = self.stats.copy()
            live: list[weakref.ReferenceType] = []
            pools = []
            for ref in self._pools:
                pool = ref()
                if pool is None:
                    continue
                live.append(ref)
                pools.append(pool)
            self._pools = live
        for pool in pools:
            stats.pool_hits += pool.hits
            stats.pool_misses += pool.misses
            stats.pool_evictions += pool.evictions
        return stats

    def local_snapshot(self) -> DiskStats:
        """The calling thread's own counters, for per-query windows.

        Same shape as :meth:`snapshot` — disk counters plus live pools'
        hit/miss/eviction counters — but restricted to I/O the *current
        thread* performed.  Differencing two local snapshots around a
        query attributes exactly that query's page accesses to it even
        while other batch worker threads are reading concurrently;
        single-threaded the difference is identical to a global-snapshot
        difference.  Summing per-thread windows that cover all activity
        reproduces the global totals (a single-flight page fetch is
        charged to the thread that performed it; waiters record hits).
        """
        stats = self._local_stats().copy()
        with self._lock:
            pools = [ref() for ref in self._pools]
        for pool in pools:
            if pool is None:
                continue
            hits, misses, evictions = pool.local_counters()
            stats.pool_hits += hits
            stats.pool_misses += misses
            stats.pool_evictions += evictions
        return stats

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = DiskStats()

    # -- persistence ----------------------------------------------------

    def export_state(self) -> tuple[bytes, tuple[int, ...]]:
        """The backing buffer and per-page payload lengths, for persisting.

        Snapshotted atomically under ``_lock`` so a save racing a
        threaded batch can never export a half-written tail page.
        """
        with self._lock:
            self._ensure_resident_locked(0, len(self._used))
            return bytes(self._buf), tuple(self._used)

    def export_sparse_state(
        self, page_ids: Iterable[int]
    ) -> tuple[bytes, tuple[int, ...]]:
        """Export only ``page_ids``; every other page comes back zeroed.

        The result is :meth:`from_state`-compatible and preserves the
        full disk's page geometry — page ids, extent offsets and payload
        lengths of the selected pages are unchanged — so record pointers
        into the original disk stay valid on the restored copy.  This is
        the shard-slice export: a partition that owns a subset of the
        index directory carries exactly the pages its pointers reference
        and none of the others' payload bytes.
        """
        wanted = sorted(set(page_ids))
        with self._lock:
            num_pages = len(self._used)
            buf = bytearray(num_pages * self.page_size)
            used = [0] * num_pages
            for page_id in wanted:
                self._used_checked(page_id)
                self._ensure_resident_locked(page_id, 1)
                start = page_id * self.page_size
                buf[start : start + self.page_size] = self._buf[
                    start : start + self.page_size
                ]
                used[page_id] = self._used[page_id]
            return bytes(buf), tuple(used)

    @classmethod
    def from_state(
        cls,
        buffer: bytes,
        used: Iterable[int],
        page_size: int = DEFAULT_PAGE_SIZE,
        read_latency_ms: float = DEFAULT_READ_LATENCY_MS,
        write_latency_ms: float = DEFAULT_WRITE_LATENCY_MS,
    ) -> "SimulatedDisk":
        """Rebuild a disk from :meth:`export_state` output (stats reset)."""
        disk = cls(
            page_size=page_size,
            read_latency_ms=read_latency_ms,
            write_latency_ms=write_latency_ms,
        )
        used_list = [int(u) for u in used]
        if len(buffer) != len(used_list) * page_size:
            raise DiskError(
                f"buffer of {len(buffer)} bytes does not cover "
                f"{len(used_list)} pages of {page_size} bytes"
            )
        if any(u < 0 or u > page_size for u in used_list):
            raise DiskError("per-page payload length outside [0, page_size]")
        disk._buf = bytearray(buffer)
        disk._used = used_list
        return disk

    def commit(self, meta: bytes = b"") -> None:
        """Durability barrier: make all writes since the last commit durable.

        The in-RAM backend has nothing to persist, so this is a no-op —
        but callers that mutate pages (``STIndex.append_trajectories``)
        route through it unconditionally, and the file-backed backend
        overrides it to append a journal record.  ``meta`` is an opaque
        blob the backend stores alongside the pages (the index ships its
        directory delta here) and returns verbatim from a reopened
        store's ``journal_metas``.
        """

    # -- internal --------------------------------------------------------

    # repro-lint: holds=_lock
    def _ensure_resident_locked(self, first_page: int, count: int) -> None:
        """Backend hook: fault ``count`` pages into ``_buf`` before access.

        The in-RAM backend's buffer is always resident, so this is a
        no-op; the file-backed backend overrides it to read and
        checksum-verify pages from the data file on first touch.  Called
        with ``_lock`` held, immediately before any code path that reads
        or overwrites bytes of ``_buf``.
        """

    # repro-lint: holds=_lock
    def _note_write_locked(self, page_id: int) -> None:
        """Backend hook: record that ``page_id`` now differs from the file.

        No-op in RAM; the file-backed backend marks the page dirty so
        the next :meth:`commit` journals it.  Called with ``_lock`` held.
        """

    def _local_stats(self) -> DiskStats:
        stats = getattr(self._tlocal, "stats", None)
        if stats is None:
            stats = self._tlocal.stats = DiskStats()
        return stats

    # repro-lint: holds=_lock
    def _used_checked(self, page_id: int) -> int:
        if not 0 <= page_id < len(self._used):
            raise DiskError(f"page {page_id} was never allocated")
        return self._used[page_id]

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        with self._lock:
            pages = len(self._used)
            reads = self.stats.page_reads
            writes = self.stats.page_writes
        return f"SimulatedDisk(pages={pages}, reads={reads}, writes={writes})"
