"""Deterministic crash and corruption injection for the durable backend.

The durable storage tier makes the same promise PR 9's serving layer
made: every failure mode is reproducible from a plan, never from timing.
Crashes fire on **operation counters** (the Nth fsync barrier, the Nth
snapshot rename, the Nth journal record a disk instance writes), exactly
the way :mod:`repro.serving.faults` keys worker faults on message
counters, so a test that injects a plan observes the identical on-disk
state on every run without sleeps, subprocesses or real power cuts:

* ``CRASH_BEFORE_FSYNC`` — the process dies after issuing a write but
  before the matching ``fsync`` barrier completes.  A real kernel may
  never have put those bytes on the platter, so the injector *undoes*
  the unsynced write (deleting the temp file / truncating the journal
  back) before raising: the reopened store must recover to the previous
  durable state.
* ``CRASH_MID_RENAME`` — the temp file is fully written and fsynced but
  the process dies before the atomic ``rename`` publishes it.  The
  orphaned ``*.tmp`` file is left behind; the reopened store must ignore
  it and serve the old snapshot.
* ``TORN_PAGE_WRITE`` — a journal record's page payload is only
  partially written when the process dies (a torn sector write): the
  record's framing is intact but its payload checksum cannot match.
* ``TRUNCATED_JOURNAL_RECORD`` — the process dies mid-header: the
  journal ends in a fragment too short to even frame a record.

The injected "crash" is a raised :class:`SimulatedCrash`; the test
discards the in-memory disk object (the process's RAM "died") and
reopens the on-disk directory, which is now in exactly the state a real
crash at that point would leave.  Corruption — bit flips in a data page,
the checksum sidecar or the superblock of a *closed* store — is injected
by the ``corrupt_*`` helpers below and must surface as a typed
:class:`~repro.storage.backends.CorruptSnapshotError` /
:class:`~repro.storage.backends.TornWriteError` naming the damage.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple

CRASH_BEFORE_FSYNC = "crash_before_fsync"
CRASH_MID_RENAME = "crash_mid_rename"
TORN_PAGE_WRITE = "torn_page_write"
TRUNCATED_JOURNAL_RECORD = "truncated_journal_record"

CRASH_KINDS = frozenset(
    {
        CRASH_BEFORE_FSYNC,
        CRASH_MID_RENAME,
        TORN_PAGE_WRITE,
        TRUNCATED_JOURNAL_RECORD,
    }
)

#: Size of a journal record header (magic + payload length + payload
#: CRC), mirrored from the backend's framing so the torn-write injector
#: can leave an intact header with a damaged payload.
JOURNAL_HEADER_SIZE = 12


class SimulatedCrash(BaseException):
    """The injected process death.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so no
    ``except Exception`` recovery path inside the storage tier can
    accidentally "survive" a crash that is supposed to kill the process
    — the test harness catches it explicitly at the top.
    """

    def __init__(self, spec: "CrashSpec") -> None:
        super().__init__(f"simulated crash: {spec.kind} (occurrence {spec.at})")
        self.spec = spec


@dataclass(frozen=True)
class CrashSpec:
    """One injected crash: *what* dies and *when*.

    Attributes:
        kind: one of the ``CRASH_KINDS`` constants.
        at: 1-based trigger count on the matching operation counter —
            the disk's Nth fsync barrier for ``CRASH_BEFORE_FSYNC``,
            its Nth snapshot rename for ``CRASH_MID_RENAME``, its Nth
            journal record for the torn/truncated kinds.  Counters are
            per disk instance (a reopened disk starts fresh).
    """

    kind: str
    at: int = 1

    def __post_init__(self) -> None:
        if self.kind not in CRASH_KINDS:
            raise ValueError(f"unknown crash kind {self.kind!r}")
        if self.at < 1:
            raise ValueError(f"crash trigger count must be >= 1, got {self.at}")


@dataclass(frozen=True)
class CrashPlan:
    """An immutable set of :class:`CrashSpec` entries (plain data)."""

    crashes: Tuple[CrashSpec, ...] = field(default_factory=tuple)

    @classmethod
    def of(cls, *specs: CrashSpec) -> "CrashPlan":
        return cls(crashes=tuple(specs))


class CrashInjector:
    """Disk-side trigger bookkeeping for one disk instance.

    The file backend consults the injector at its three durability hook
    points: :meth:`on_fsync` immediately before every ``fsync`` barrier
    (given an ``undo`` callback that reverts the unsynced write),
    :meth:`on_rename` immediately before every snapshot ``rename``, and
    :meth:`journal_spec` once per journal record append (the caller
    writes the torn prefix from :func:`torn_prefix` and raises).
    """

    def __init__(self, plan: Optional[CrashPlan]) -> None:
        self._specs = plan.crashes if plan is not None else ()
        self._fsync_count = 0
        self._rename_count = 0
        self._journal_count = 0

    @property
    def active(self) -> bool:
        return bool(self._specs)

    def on_fsync(self, undo=None) -> None:
        """Hook before an ``fsync``; undoes the unsynced write and dies."""
        self._fsync_count += 1
        for spec in self._specs:
            if spec.kind == CRASH_BEFORE_FSYNC and spec.at == self._fsync_count:
                if undo is not None:
                    undo()
                raise SimulatedCrash(spec)

    def on_rename(self) -> None:
        """Hook before a snapshot ``rename``; dies with the temp left behind."""
        self._rename_count += 1
        for spec in self._specs:
            if spec.kind == CRASH_MID_RENAME and spec.at == self._rename_count:
                raise SimulatedCrash(spec)

    def journal_spec(self) -> Optional[CrashSpec]:
        """The torn/truncated spec firing for this journal record, if any."""
        self._journal_count += 1
        for spec in self._specs:
            if (
                spec.kind in (TORN_PAGE_WRITE, TRUNCATED_JOURNAL_RECORD)
                and spec.at == self._journal_count
            ):
                return spec
        return None


def torn_prefix(record: bytes, kind: str) -> bytes:
    """The fragment of ``record`` that reaches disk before the crash.

    ``TORN_PAGE_WRITE`` keeps the header and roughly half the payload
    (the framing parses, the payload CRC cannot match);
    ``TRUNCATED_JOURNAL_RECORD`` keeps only part of the header (the
    journal ends mid-frame).
    """
    if kind == TORN_PAGE_WRITE:
        keep = JOURNAL_HEADER_SIZE + max(1, (len(record) - JOURNAL_HEADER_SIZE) // 2)
        return record[: min(keep, len(record) - 1)]
    if kind == TRUNCATED_JOURNAL_RECORD:
        return record[: JOURNAL_HEADER_SIZE // 2]
    raise ValueError(f"not a torn-write crash kind: {kind!r}")


# -- corruption injection (closed stores) --------------------------------------
#
# These operate on the files of a *closed* FileBackedDisk directory and
# model silent media corruption: a single flipped bit in a data page,
# the checksum sidecar, the superblock, or a journal record.  They read
# the superblock as plain JSON (no validation — they must work on the
# files exactly as persisted) to locate the current generation's files.


def _read_generation(directory: str | Path) -> int:
    payload = json.loads((Path(directory) / "superblock.json").read_text())
    return int(payload["generation"])


def _flip_bit(path: Path, byte_offset: int, bit: int = 0) -> None:
    data = bytearray(path.read_bytes())
    if not 0 <= byte_offset < len(data):
        raise ValueError(
            f"byte offset {byte_offset} outside {path.name} ({len(data)} bytes)"
        )
    data[byte_offset] ^= 1 << (bit & 7)
    path.write_bytes(bytes(data))


def corrupt_page(directory: str | Path, page_id: int, page_size: int) -> None:
    """Flip one bit inside ``page_id`` of the persisted data file."""
    gen = _read_generation(directory)
    _flip_bit(Path(directory) / f"pages.{gen}.bin", page_id * page_size)


def corrupt_sidecar(directory: str | Path, page_id: int = 0) -> None:
    """Flip one bit inside the per-page checksum sidecar."""
    gen = _read_generation(directory)
    _flip_bit(Path(directory) / f"pages.{gen}.crc", page_id * 8)


def corrupt_superblock(directory: str | Path) -> None:
    """Flip one bit inside the superblock JSON."""
    _flip_bit(Path(directory) / "superblock.json", 12)


def corrupt_journal_record(directory: str | Path, record_index: int = 0) -> None:
    """Flip one bit in the payload of the Nth journal record.

    Walks the record framing (magic, payload length, payload CRC) far
    enough to find the target record's payload, then flips its first
    bit — interior corruption a reopen must surface as a
    :class:`~repro.storage.backends.TornWriteError`, never replay.
    """
    import struct

    gen = _read_generation(directory)
    path = Path(directory) / f"journal.{gen}.log"
    data = path.read_bytes()
    offset = 0
    for _ in range(record_index):
        _, length, _ = struct.unpack_from("<4sII", data, offset)
        offset += JOURNAL_HEADER_SIZE + length
    _flip_bit(path, offset + JOURNAL_HEADER_SIZE)
