"""Typed failures of the durable storage tier.

Everything the file backend can detect wrong with its on-disk state maps
to one of these — a reopen either succeeds with verified state or raises
an error that *names the damage* (which page, which file, which journal
record).  Raw ``struct``/``zlib``/``OSError`` noise never escapes.
"""

from __future__ import annotations

from repro.storage.disk import DiskError


class DurabilityError(DiskError):
    """Base class for durable-backend failures."""


class DiskFormatError(DurabilityError):
    """The on-disk layout is not something this backend ever wrote.

    Raised for a missing/garbled superblock, a bad magic string, or a
    format version newer than this code understands — the store may be
    fine, but this reader cannot interpret it.
    """


class CorruptSnapshotError(DurabilityError):
    """A durable snapshot failed checksum verification.

    Raised when a data page's content does not match its sidecar
    checksum, when the sidecar itself does not match the checksum
    recorded in the superblock, or when the superblock fails its own
    self-checksum.  The message names the damaged unit (page id or
    file).  Detected damage is never served as data.
    """

    def __init__(self, message: str, page_id: int | None = None) -> None:
        super().__init__(message)
        self.page_id = page_id


class TornWriteError(DurabilityError):
    """The append journal is damaged somewhere other than a clean tail.

    A truncated or checksum-failing *final* record is the expected
    signature of a crash mid-append and is silently discarded during
    recovery.  Damage anywhere else — bad framing magic mid-file, a CRC
    mismatch on a record that has successors — cannot be explained by a
    single crash and is surfaced as this error, naming the record index
    and byte offset.
    """

    def __init__(self, message: str, record_index: int | None = None) -> None:
        super().__init__(message)
        self.record_index = record_index
