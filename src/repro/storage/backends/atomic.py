"""The single atomic-publish primitive of the durable tier.

Every file the backend persists — snapshot data, checksum sidecar,
superblock, store metadata — goes through :func:`atomic_replace`:
write the full content to a temp file in the same directory, ``fsync``
it, then ``os.replace`` over the destination.  POSIX rename is atomic,
so a reader (or a post-crash reopen) sees either the complete old file
or the complete new file, never a prefix.  This function is the
*durable barrier* repro-lint rule RL011 recognises: raw ``open(...,
"w")``-style writes on a save path anywhere else in the tree fail lint.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.crashsim import CrashInjector


# repro-lint: durable-barrier
def atomic_replace(
    path: Union[str, Path],
    data: bytes,
    crash: "Optional[CrashInjector]" = None,
) -> None:
    """Atomically replace ``path``'s content with ``data``.

    Sequence: write ``path + ".tmp"`` → ``fsync`` the temp file →
    ``os.replace`` onto ``path`` → ``fsync`` the directory so the
    rename itself is durable.  ``crash`` hooks the two vulnerable
    points: before the temp-file fsync (the unsynced temp is removed,
    as a real crash could leave it absent or partial — recovery must
    not trust ``*.tmp`` files) and before the rename (the synced temp
    is orphaned; the old destination still rules).
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, data)
        if crash is not None:
            # Unlinking while the fd is open is fine on POSIX; the
            # except arm below closes it before the crash propagates.
            crash.on_fsync(undo=lambda: tmp.unlink(missing_ok=True))
        os.fsync(fd)
        os.close(fd)
    except BaseException:
        try:
            os.close(fd)
        except OSError:
            pass
        raise
    if crash is not None:
        crash.on_rename()
    os.replace(tmp, target)
    _fsync_dir(target.parent)


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry so a completed rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open support
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
