"""A crash-safe file-backed disk with the SimulatedDisk page geometry.

``FileBackedDisk`` subclasses :class:`~repro.storage.disk.SimulatedDisk`
and keeps its entire I/O-accounting contract — ``read_page`` /
``write_page`` / ``extent_bytes`` / ``charge_reads`` charge the exact
same :class:`~repro.storage.disk.DiskStats` the RAM backend charges —
while persisting the page buffer in a directory of real files:

=====================  ========================================================
``superblock.json``    self-checksummed commit point: magic, format version,
                       generation, page geometry, sidecar checksum
``pages.<g>.bin``      the page buffer, ``num_pages * page_size`` raw bytes
``pages.<g>.crc``      per-page sidecar: ``(crc32(page slice), used length)``
``journal.<g>.log``    write-ahead append journal of commit records
=====================  ========================================================

All four are published with :func:`~repro.storage.backends.atomic.
atomic_replace` (write-temp → fsync → rename); the generation suffix
``<g>`` makes the multi-file snapshot atomic as a unit — a checkpoint
writes generation ``g+1``'s data, sidecar and fresh journal first and
flips the superblock *last*, so a crash at any interleaving leaves the
previous generation fully intact and authoritative.

Durability of appends does not require a checkpoint: :meth:`commit`
appends one framed, checksummed record (dirty pages + an opaque ``meta``
blob) to the journal and fsyncs.  Reopen replays the journal suffix onto
the last good snapshot; a torn or truncated *final* record is the
expected crash signature and is discarded, while damage anywhere else
raises :class:`~repro.storage.backends.errors.TornWriteError`.  Page
content is faulted in lazily on first access and verified against its
sidecar checksum — a cold open touches only the superblock, sidecar and
journal, so a server can begin answering queries before reading a single
data page, and a flipped bit in any page surfaces as a typed
:class:`~repro.storage.backends.errors.CorruptSnapshotError` naming the
page, never as silently wrong query results.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Iterable, List, Optional, Tuple, Union

from repro.storage.backends.atomic import atomic_replace
from repro.storage.backends.errors import (
    CorruptSnapshotError,
    DiskFormatError,
    TornWriteError,
)
from repro.storage.crashsim import (
    CrashInjector,
    CrashPlan,
    SimulatedCrash,
    torn_prefix,
)
from repro.storage.disk import (
    DEFAULT_PAGE_SIZE,
    DEFAULT_READ_LATENCY_MS,
    DEFAULT_WRITE_LATENCY_MS,
    DiskError,
    SimulatedDisk,
)

SUPERBLOCK_MAGIC = "repro-disk"
DISK_FORMAT_VERSION = 1

#: Journal record framing: magic, payload length, payload crc32.
_JOURNAL_MAGIC = b"JREC"
_JOURNAL_HEADER = struct.Struct("<4sII")
#: Per-page sidecar entry: crc32 of the full page slice, used length.
_SIDECAR_ENTRY = struct.Struct("<II")


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


class FileBackedDisk(SimulatedDisk):
    """Durable, checksummed, journaled file backend.

    Opening an existing store directory loads and verifies its metadata
    and replays the journal; a directory without a superblock is
    initialised as a fresh empty store.  Use :meth:`open` when the store
    must already exist and :meth:`create` to force a fresh one.

    Args:
        path: store directory (created if missing).
        page_size / read_latency_ms / write_latency_ms: as for
            :class:`SimulatedDisk`; on open, values come from the
            superblock and these arguments are ignored.
        crash_plan: deterministic :class:`~repro.storage.crashsim.
            CrashPlan` consulted at every fsync/rename/journal-record
            hook point (testing only).
        readonly: never touch the files — page writes stay in memory,
            :meth:`commit` is a no-op and :meth:`checkpoint` raises.
            This is the serving-worker mode: shard engines may append
            in RAM but only the coordinator's disk is durable.
    """

    def __init__(
        self,
        path: Union[str, Path],
        page_size: int = DEFAULT_PAGE_SIZE,
        read_latency_ms: float = DEFAULT_READ_LATENCY_MS,
        write_latency_ms: float = DEFAULT_WRITE_LATENCY_MS,
        crash_plan: Optional[CrashPlan] = None,
        readonly: bool = False,
    ) -> None:
        super().__init__(
            page_size=page_size,
            read_latency_ms=read_latency_ms,
            write_latency_ms=write_latency_ms,
        )
        self.directory = Path(path)
        self.readonly = readonly
        self.generation = 0
        self.recovered_tail = False  # a torn/truncated journal tail was discarded
        self._crash = CrashInjector(crash_plan)
        self._resident: List[bool] = []  # guarded_by: _lock
        self._dirty: set[int] = set()  # guarded_by: _lock
        self._page_crcs: List[int] = []  # guarded_by: _lock
        self._pages_faulted = 0  # guarded_by: _lock
        self._journal_metas: List[bytes] = []  # guarded_by: _lock
        self._record_count = 0  # records currently in the journal  # guarded_by: _lock
        self._snapshot_pages = 0  # pages covered by the data file  # guarded_by: _lock
        self._data_file: Optional[BinaryIO] = None  # guarded_by: _lock
        if (self.directory / "superblock.json").exists():
            with self._lock:
                self._load_locked()
        else:
            if readonly:
                raise DiskFormatError(f"no store at {self.directory} (missing superblock)")
            self.directory.mkdir(parents=True, exist_ok=True)
            with self._lock:
                self._publish_snapshot_locked(generation=0)

    # -- construction ---------------------------------------------------

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        crash_plan: Optional[CrashPlan] = None,
        readonly: bool = False,
    ) -> "FileBackedDisk":
        """Open an existing store; raises :class:`DiskFormatError` if absent."""
        if not (Path(path) / "superblock.json").exists():
            raise DiskFormatError(f"no store at {path} (missing superblock)")
        return cls(path, crash_plan=crash_plan, readonly=readonly)

    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        page_size: int = DEFAULT_PAGE_SIZE,
        read_latency_ms: float = DEFAULT_READ_LATENCY_MS,
        write_latency_ms: float = DEFAULT_WRITE_LATENCY_MS,
        crash_plan: Optional[CrashPlan] = None,
    ) -> "FileBackedDisk":
        """Create a fresh empty store, replacing any existing one at ``path``."""
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "superblock.json").unlink(missing_ok=True)
        return cls(
            path,
            page_size=page_size,
            read_latency_ms=read_latency_ms,
            write_latency_ms=write_latency_ms,
            crash_plan=crash_plan,
        )

    @classmethod
    def create_from_state(
        cls,
        path: Union[str, Path],
        buffer: bytes,
        used: Iterable[int],
        page_size: int = DEFAULT_PAGE_SIZE,
        read_latency_ms: float = DEFAULT_READ_LATENCY_MS,
        write_latency_ms: float = DEFAULT_WRITE_LATENCY_MS,
        crash_plan: Optional[CrashPlan] = None,
    ) -> "FileBackedDisk":
        """Persist :meth:`SimulatedDisk.export_state` output as a new store."""
        used_list = [int(u) for u in used]
        if len(buffer) != len(used_list) * page_size:
            raise DiskError(
                f"buffer of {len(buffer)} bytes does not cover "
                f"{len(used_list)} pages of {page_size} bytes"
            )
        if any(u < 0 or u > page_size for u in used_list):
            raise DiskError("per-page payload length outside [0, page_size]")
        disk = cls.create(
            path,
            page_size=page_size,
            read_latency_ms=read_latency_ms,
            write_latency_ms=write_latency_ms,
            crash_plan=crash_plan,
        )
        disk._adopt_state(bytearray(buffer), used_list)
        disk.checkpoint()
        return disk

    def _adopt_state(self, buffer: bytearray, used: list) -> None:
        """Install exported page state wholesale (create_from_state only)."""
        with self._lock:
            self._buf = buffer
            self._used = used
            self._resident = [True] * len(used)
            self._dirty = set(range(len(used)))

    @classmethod
    def from_state(
        cls,
        buffer: bytes,
        used: Iterable[int],
        page_size: int = DEFAULT_PAGE_SIZE,
        read_latency_ms: float = DEFAULT_READ_LATENCY_MS,
        write_latency_ms: float = DEFAULT_WRITE_LATENCY_MS,
    ) -> "SimulatedDisk":
        raise DiskError(
            "FileBackedDisk has no in-memory restore; use "
            "FileBackedDisk.create_from_state(path, buffer, used, ...)"
        )

    # -- introspection --------------------------------------------------

    @property
    def path(self) -> str:
        return str(self.directory)

    @property
    def pages_faulted(self) -> int:
        """Snapshot pages read (and verified) from the data file so far."""
        with self._lock:
            return self._pages_faulted

    @property
    def is_synced(self) -> bool:
        """True when every page mutation is durable (snapshot or journal)."""
        with self._lock:
            return not self._dirty

    @property
    def journal_record_count(self) -> int:
        """Records currently in the journal (replayed + appended)."""
        with self._lock:
            return self._record_count

    @property
    def journal_metas(self) -> Tuple[bytes, ...]:
        """Meta blobs of the journal records replayed at open, in order."""
        with self._lock:
            return tuple(self._journal_metas)

    # -- durability operations ------------------------------------------

    def commit(self, meta: bytes = b"") -> None:
        """Append all dirty pages (plus ``meta``) to the journal, fsynced.

        The cheap durability barrier: O(pages touched since the last
        commit), never a snapshot rewrite.  A no-op when there is
        nothing dirty and no meta to record, and always a no-op on a
        ``readonly`` disk (in-memory mutations stay in memory).
        """
        if self.readonly:
            return
        with self._lock:
            if not self._dirty and not meta:
                return
            pages = sorted(self._dirty)
            self._ensure_resident_locked_span(pages)
            payload = self._encode_record_locked(pages, meta)
            self._journal_append_locked(payload)
            self._dirty.clear()
            self._journal_metas.append(meta)
            self._record_count += 1

    def checkpoint(self) -> None:
        """Bake the full current state into a new snapshot generation.

        Writes generation ``g+1``'s data file, sidecar and an empty
        journal, then atomically flips the superblock — the single
        commit point.  A crash at any earlier step leaves generation
        ``g`` authoritative and untouched.  Old-generation files are
        unlinked afterwards (best-effort; stragglers are ignored by
        open, which trusts only the superblock).
        """
        if self.readonly:
            raise DiskError("cannot checkpoint a read-only FileBackedDisk")
        with self._lock:
            self._ensure_resident_locked(0, len(self._used))
            old = self.generation
            self._publish_snapshot_locked(generation=old + 1)
        for name in (f"pages.{old}.bin", f"pages.{old}.crc", f"journal.{old}.log"):
            (self.directory / name).unlink(missing_ok=True)

    def verify(self) -> None:
        """Eagerly fault in and checksum-verify every snapshot page."""
        with self._lock:
            self._ensure_resident_locked(0, len(self._used))

    def close(self) -> None:
        with self._lock:
            if self._data_file is not None:
                self._data_file.close()
                self._data_file = None

    # -- SimulatedDisk hooks --------------------------------------------

    # repro-lint: holds=_lock
    def _allocate_locked(self, count: int) -> int:
        first = super()._allocate_locked(count)
        # Fresh pages are zeroed in memory and absent from the snapshot:
        # resident by definition, dirty so the next commit persists the
        # geometry growth.
        self._resident.extend([True] * count)
        if not self.readonly:
            self._dirty.update(range(first, first + count))
        return first

    # repro-lint: holds=_lock
    def _ensure_resident_locked(self, first_page: int, count: int) -> None:
        for page_id in range(first_page, first_page + count):
            if not self._resident[page_id]:
                self._fault_in_locked(page_id)

    # repro-lint: holds=_lock
    def _ensure_resident_locked_span(self, page_ids: List[int]) -> None:
        for page_id in page_ids:
            if not self._resident[page_id]:
                self._fault_in_locked(page_id)

    # repro-lint: holds=_lock
    def _note_write_locked(self, page_id: int) -> None:
        # Readonly disks track dirtiness too: it is what keeps
        # ``is_synced`` honest if such a disk is ever exported.
        self._dirty.add(page_id)

    # -- internal: fault-in ---------------------------------------------

    # repro-lint: holds=_lock
    def _fault_in_locked(self, page_id: int) -> None:
        if self._data_file is None:
            self._data_file = open(self._file("bin"), "rb")
        self._data_file.seek(page_id * self.page_size)
        data = self._data_file.read(self.page_size)
        if len(data) != self.page_size:
            raise CorruptSnapshotError(
                f"data file {self._file('bin').name} ends inside page {page_id}",
                page_id=page_id,
            )
        if _crc(data) != self._page_crcs[page_id]:
            raise CorruptSnapshotError(
                f"page {page_id} failed checksum verification against sidecar "
                f"{self._file('crc').name}",
                page_id=page_id,
            )
        start = page_id * self.page_size
        self._buf[start : start + self.page_size] = data
        self._resident[page_id] = True
        self._pages_faulted += 1

    # -- internal: journal ----------------------------------------------

    # repro-lint: holds=_lock
    def _encode_record_locked(self, pages: List[int], meta: bytes) -> bytes:
        parts = [
            struct.pack("<III", len(self._used), len(meta), len(pages)),
            meta,
        ]
        for page_id in pages:
            start = page_id * self.page_size
            parts.append(struct.pack("<II", page_id, self._used[page_id]))
            parts.append(bytes(self._buf[start : start + self.page_size]))
        return b"".join(parts)

    # The journal is the one append-mode file write in the tree; this
    # helper IS the durability barrier RL011 routes appends through.
    # repro-lint: durable-barrier
    # repro-lint: holds=_lock
    def _journal_append_locked(self, payload: bytes) -> None:
        header = _JOURNAL_HEADER.pack(_JOURNAL_MAGIC, len(payload), _crc(payload))
        record = header + payload
        path = self._file("log")
        old_size = path.stat().st_size
        spec = self._crash.journal_spec() if self._crash.active else None
        fd = os.open(path, os.O_WRONLY | os.O_APPEND)
        try:
            if spec is not None:
                os.write(fd, torn_prefix(record, spec.kind))
                os.fsync(fd)
                raise SimulatedCrash(spec)
            os.write(fd, record)
            self._crash.on_fsync(undo=lambda: os.ftruncate(fd, old_size))
            os.fsync(fd)
        finally:
            os.close(fd)

    # Audited raw-write site (RL011): the only write here is the recovery
    # truncate of a torn journal tail, idempotent and crash-safe by
    # construction (re-crashing re-truncates to the same record boundary).
    # repro-lint: durable-barrier
    # repro-lint: holds=_lock
    def _replay_journal_locked(self) -> None:
        path = self._file("log")
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise CorruptSnapshotError(
                f"journal {path.name} named by the superblock is missing"
            ) from None
        offset = 0
        index = 0
        good_end = 0
        while offset < len(data):
            if len(data) - offset < _JOURNAL_HEADER.size:
                self.recovered_tail = True  # crash mid-header: discard fragment
                break
            magic, length, crc = _JOURNAL_HEADER.unpack_from(data, offset)
            if magic != _JOURNAL_MAGIC:
                raise TornWriteError(
                    f"journal record {index} has bad framing magic at byte "
                    f"{offset} of {path.name}",
                    record_index=index,
                )
            body_start = offset + _JOURNAL_HEADER.size
            if body_start + length > len(data):
                self.recovered_tail = True  # crash mid-payload: discard fragment
                break
            payload = data[body_start : body_start + length]
            if _crc(payload) != crc:
                if body_start + length == len(data):
                    # Torn final record: the crash signature; discard it.
                    self.recovered_tail = True
                    break
                raise TornWriteError(
                    f"journal record {index} failed checksum at byte {offset} "
                    f"of {path.name} and is not the final record",
                    record_index=index,
                )
            self._apply_record_locked(payload, index)
            offset = body_start + length
            good_end = offset
            index += 1
        self._record_count = index
        if self.recovered_tail and not self.readonly:
            # Truncate the damaged tail so future appends extend a clean
            # journal.  Part of recovery, not a data-mutation path.
            os.truncate(path, good_end)

    # repro-lint: holds=_lock
    def _apply_record_locked(self, payload: bytes, index: int) -> None:
        try:
            num_pages, meta_len, page_count = struct.unpack_from("<III", payload, 0)
            pos = 12
            meta = payload[pos : pos + meta_len]
            pos += meta_len
            if num_pages < len(self._used):
                raise ValueError("journal shrinks the disk")
            if num_pages > len(self._used):
                grow = num_pages - len(self._used)
                self._buf.extend(b"\x00" * (grow * self.page_size))
                self._used.extend([0] * grow)
                self._resident.extend([True] * grow)
            for _ in range(page_count):
                page_id, used = struct.unpack_from("<II", payload, pos)
                pos += 8
                slice_ = payload[pos : pos + self.page_size]
                if len(slice_) != self.page_size or page_id >= num_pages:
                    raise ValueError("journal page entry out of bounds")
                if used > self.page_size:
                    raise ValueError("journal used length exceeds page size")
                pos += self.page_size
                start = page_id * self.page_size
                self._buf[start : start + self.page_size] = slice_
                self._used[page_id] = used
                self._resident[page_id] = True
        except (struct.error, ValueError) as exc:
            raise TornWriteError(
                f"journal record {index} is malformed: {exc}", record_index=index
            ) from None
        self._journal_metas.append(meta)

    # -- internal: snapshot load/publish --------------------------------

    def _file(self, suffix: str, generation: Optional[int] = None) -> Path:
        gen = self.generation if generation is None else generation
        name = f"journal.{gen}.log" if suffix == "log" else f"pages.{gen}.{suffix}"
        return self.directory / name

    # repro-lint: holds=_lock
    def _load_locked(self) -> None:
        sb_path = self.directory / "superblock.json"
        try:
            payload = json.loads(sb_path.read_text())
        except (OSError, ValueError) as exc:
            raise DiskFormatError(f"superblock.json is unreadable: {exc}") from None
        if not isinstance(payload, dict) or payload.get("magic") != SUPERBLOCK_MAGIC:
            raise DiskFormatError(
                f"superblock.json has bad magic {payload.get('magic')!r}"
                if isinstance(payload, dict)
                else "superblock.json is not a JSON object"
            )
        version = payload.get("format_version")
        if not isinstance(version, int) or version > DISK_FORMAT_VERSION:
            raise DiskFormatError(
                f"disk format version {version!r} is newer than supported "
                f"version {DISK_FORMAT_VERSION}"
            )
        stored_sum = payload.pop("checksum", None)
        expected = _crc(json.dumps(payload, sort_keys=True).encode())
        if stored_sum != expected:
            raise CorruptSnapshotError(
                "superblock.json failed its self-checksum "
                f"(stored {stored_sum!r}, computed {expected})"
            )
        self.page_size = int(payload["page_size"])
        self.read_latency_ms = float(payload["read_latency_ms"])
        self.write_latency_ms = float(payload["write_latency_ms"])
        self.generation = int(payload["generation"])
        num_pages = int(payload["num_pages"])

        crc_path = self._file("crc")
        try:
            sidecar = crc_path.read_bytes()
        except OSError as exc:
            raise CorruptSnapshotError(
                f"checksum sidecar {crc_path.name} is unreadable: {exc}"
            ) from None
        if _crc(sidecar) != payload["sidecar_crc"]:
            raise CorruptSnapshotError(
                f"checksum sidecar {crc_path.name} failed verification against "
                "the superblock"
            )
        if len(sidecar) != num_pages * _SIDECAR_ENTRY.size:
            raise CorruptSnapshotError(
                f"checksum sidecar {crc_path.name} covers "
                f"{len(sidecar) // _SIDECAR_ENTRY.size} pages, superblock "
                f"says {num_pages}"
            )
        self._page_crcs = []
        self._used = []
        for i in range(num_pages):
            crc, used = _SIDECAR_ENTRY.unpack_from(sidecar, i * _SIDECAR_ENTRY.size)
            if used > self.page_size:
                raise CorruptSnapshotError(
                    f"sidecar used length {used} for page {i} exceeds page "
                    f"size {self.page_size}"
                )
            self._page_crcs.append(crc)
            self._used.append(used)
        bin_path = self._file("bin")
        try:
            data_size = bin_path.stat().st_size
        except OSError:
            raise CorruptSnapshotError(
                f"data file {bin_path.name} named by the superblock is missing"
            ) from None
        if data_size != num_pages * self.page_size:
            raise CorruptSnapshotError(
                f"data file {bin_path.name} is {data_size} bytes, expected "
                f"{num_pages * self.page_size}"
            )
        self._snapshot_pages = num_pages
        self._buf = bytearray(num_pages * self.page_size)
        self._resident = [False] * num_pages
        self._replay_journal_locked()

    # repro-lint: holds=_lock
    def _publish_snapshot_locked(self, generation: int) -> None:
        """Write a full snapshot as ``generation`` and flip the superblock."""
        entries = []
        for page_id, used in enumerate(self._used):
            start = page_id * self.page_size
            page = bytes(self._buf[start : start + self.page_size])
            entries.append(_SIDECAR_ENTRY.pack(_crc(page), used))
        sidecar = b"".join(entries)
        crash = self._crash if self._crash.active else None
        if self._data_file is not None:
            self._data_file.close()
            self._data_file = None
        atomic_replace(self._file("bin", generation), bytes(self._buf), crash=crash)
        atomic_replace(self._file("crc", generation), sidecar, crash=crash)
        atomic_replace(self._file("log", generation), b"", crash=crash)
        payload = {
            "magic": SUPERBLOCK_MAGIC,
            "format_version": DISK_FORMAT_VERSION,
            "generation": generation,
            "page_size": self.page_size,
            "num_pages": len(self._used),
            "read_latency_ms": self.read_latency_ms,
            "write_latency_ms": self.write_latency_ms,
            "sidecar_crc": _crc(sidecar),
        }
        payload["checksum"] = _crc(json.dumps(payload, sort_keys=True).encode())
        atomic_replace(
            self.directory / "superblock.json",
            json.dumps(payload, sort_keys=True, indent=2).encode(),
            crash=crash,
        )
        # The superblock rename was the commit point; state is clean.
        self.generation = generation
        self._snapshot_pages = len(self._used)
        self._page_crcs = [
            _SIDECAR_ENTRY.unpack_from(sidecar, i * _SIDECAR_ENTRY.size)[0]
            for i in range(len(self._used))
        ]
        self._resident = [True] * len(self._used)
        self._dirty.clear()
        self._journal_metas = []
        self._record_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        with self._lock:
            pages = len(self._used)
            faulted = self._pages_faulted
        return (
            f"FileBackedDisk(path={str(self.directory)!r}, pages={pages}, "
            f"gen={self.generation}, faulted={faulted})"
        )
