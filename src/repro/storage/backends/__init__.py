"""Pluggable disk backends behind the :class:`SimulatedDisk` contract.

Two backends share one page geometry and one I/O-accounting contract:
the in-RAM :class:`~repro.storage.disk.SimulatedDisk` (fast, volatile —
the default everywhere) and the durable
:class:`~repro.storage.backends.filedisk.FileBackedDisk` (checksummed
pages in a real file, atomic snapshots, write-ahead append journal).
Code that takes a disk never needs to know which it got: ``DiskStats``
charges are identical, so every equivalence suite runs against both.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.storage.backends.atomic import atomic_replace
from repro.storage.backends.errors import (
    CorruptSnapshotError,
    DiskFormatError,
    DurabilityError,
    TornWriteError,
)
from repro.storage.backends.filedisk import FileBackedDisk
from repro.storage.disk import (
    DEFAULT_PAGE_SIZE,
    DEFAULT_READ_LATENCY_MS,
    DEFAULT_WRITE_LATENCY_MS,
    SimulatedDisk,
)

#: Backend names accepted by :func:`create_disk` and the CLI ``--disk`` flag.
DISK_BACKENDS = ("sim", "file")


def create_disk(
    backend: str = "sim",
    path: Optional[Union[str, Path]] = None,
    page_size: int = DEFAULT_PAGE_SIZE,
    read_latency_ms: float = DEFAULT_READ_LATENCY_MS,
    write_latency_ms: float = DEFAULT_WRITE_LATENCY_MS,
) -> SimulatedDisk:
    """Build a disk by backend name (``"sim"`` in-RAM, ``"file"`` durable).

    The ``"file"`` backend requires ``path`` (the store directory); an
    existing store there is opened (its geometry wins over the
    arguments), otherwise a fresh empty store is initialised.
    """
    if backend == "sim":
        return SimulatedDisk(
            page_size=page_size,
            read_latency_ms=read_latency_ms,
            write_latency_ms=write_latency_ms,
        )
    if backend == "file":
        if path is None:
            raise ValueError("disk backend 'file' requires a store path")
        return FileBackedDisk(
            path,
            page_size=page_size,
            read_latency_ms=read_latency_ms,
            write_latency_ms=write_latency_ms,
        )
    raise ValueError(f"unknown disk backend {backend!r}; expected one of {DISK_BACKENDS}")


__all__ = [
    "DISK_BACKENDS",
    "CorruptSnapshotError",
    "DiskFormatError",
    "DurabilityError",
    "FileBackedDisk",
    "TornWriteError",
    "atomic_replace",
    "create_disk",
]
