"""Sharded multi-process serving: partition, scatter, gather.

The single-process pipeline (client → router → planner → executor →
storage) is GIL-bound: ``run_batch`` time-shares one interpreter however
many threads it runs.  This package partitions the road network into K
spatial shards, materializes each shard's ST-Index/Con-Index slice on its
own :class:`~repro.storage.disk.SimulatedDisk`, and serves the shards
from ``multiprocessing`` worker processes behind a scatter-gather
dispatcher:

* :mod:`repro.serving.partition` — kd-median spatial partitioner, halo
  replication sized to the query contract, and the spawn-safe per-shard
  slice payloads;
* :mod:`repro.serving.worker` — the worker-process entry point: rebuild
  a shard engine from its payload, serve sub-batches over a pipe;
* :mod:`repro.serving.protocol` — the pickle-framed messages and the
  numpy-packed result encoding that keeps IPC cheap;
* :mod:`repro.serving.dispatcher` — :class:`ShardedEngine`: routes each
  request to its owning shard (single-shard fast path), decomposes
  cross-shard m-queries, merges results, and aggregates per-shard
  :class:`~repro.storage.disk.DiskStats` exactly — under a supervisor
  that respawns dead workers, retries timed-out scatters with backoff,
  and degrades exhausted sub-batches to the local fallback service;
* :mod:`repro.serving.faults` — deterministic fault injection
  (:class:`FaultPlan`) for reproducing every failure mode in tests.

Accounting guarantee: a shard worker runs its sub-batch serially on a
slice whose page geometry is identical to the full index, so its
:class:`~repro.core.service.ShardReport` I/O equals a fresh
single-process engine running the same sub-requests — proven by
``tests/test_serving.py``'s equivalence oracle.
"""

from repro.serving.dispatcher import (
    DispatchPlan,
    ShardedEngine,
    ShardedEngineClosedError,
)
from repro.serving.faults import (
    CORRUPT_FRAME,
    DELAY_RESPONSE,
    DROP_FRAME,
    KILL_BEFORE_RECV,
    RAISE_IN_SERVE,
    FaultPlan,
    FaultSpec,
)
from repro.serving.partition import PartitionPlan, ShardSpec, partition_network

__all__ = [
    "CORRUPT_FRAME",
    "DELAY_RESPONSE",
    "DROP_FRAME",
    "DispatchPlan",
    "FaultPlan",
    "FaultSpec",
    "KILL_BEFORE_RECV",
    "PartitionPlan",
    "RAISE_IN_SERVE",
    "ShardSpec",
    "ShardedEngine",
    "ShardedEngineClosedError",
    "partition_network",
]
