"""Shard worker process: rebuild a slice, serve sub-batches over a pipe.

One worker process hosts one or more shard engines (the dispatcher deals
shards round-robin across workers).  Each engine is rebuilt from its
:class:`~repro.serving.partition.ShardPayload`: the sub-network, the
statistics-only trajectory database, a sparse disk with the original
page geometry, and the restored ST-Index directory slice.  The Con-Index
is *not* shipped — it derives entirely from the speed model plus the
sub-network topology, so the worker builds it lazily exactly as a
single-process engine would, and its disk appends land at the same page
ids (the sparse disk preserved the parent's append tail).

A ``("run", request_id, ...)`` message carries each hosted shard's
sub-batch; the worker answers it with a fresh
:class:`~repro.core.service.QueryService` per message and a **serial**
``run_batch`` — determinism and exact accounting beat intra-shard thread
parallelism, which the process fan-out already provides.

Failure semantics: every command is handled in per-message isolation —
a malformed frame, a version mismatch, or an exception inside
:func:`_serve_run` answers ``(MSG_ERROR, request_id, traceback)`` and the
loop keeps serving.  The worker itself never initiates; only process
death (observed by the dispatcher's supervisor as EOF on the pipe) takes
it out of rotation.  A :class:`~repro.serving.faults.FaultPlan` threads
deterministic failures through the two hook points (:meth:`FaultInjector
.on_recv` / :meth:`FaultInjector.on_run`) so every one of those paths is
reproducible in tests.
"""

from __future__ import annotations

import traceback

from repro.core.engine import ReachabilityEngine
from repro.core.st_index import STIndex
from repro.io.persist import network_from_dict
from repro.serving.faults import (
    CORRUPT_FRAME,
    DELAY_RESPONSE,
    DROP_FRAME,
    FAULT_EXIT_CODE,
    KILL_IN_RUN,
    RAISE_IN_SERVE,
    FaultInjected,
    FaultInjector,
    FaultPlan,
)
from repro.serving.partition import ShardPayload
from repro.serving.protocol import (
    MSG_ERROR,
    MSG_OK,
    MSG_RUN,
    MSG_SHUTDOWN,
    PROTOCOL_VERSION,
    ProtocolError,
    pack_result,
    parse_command,
)
from repro.storage.backends import FileBackedDisk
from repro.storage.disk import SimulatedDisk
from repro.trajectory.store import TrajectoryDatabase


def build_shard_engine(payload: ShardPayload) -> ReachabilityEngine:
    """Reconstruct one shard's engine from its spawn-safe payload."""
    network = network_from_dict(payload.network)
    database = TrajectoryDatabase.from_speed_model(payload.speed_model)
    if payload.disk_path is not None:
        # Durable-store reference: open read-only and fault in only the
        # pages this shard's pointers touch, checksum-verified.  The
        # worker never writes the file, so any number of workers can
        # share one store.
        disk: SimulatedDisk = FileBackedDisk.open(
            payload.disk_path, readonly=True
        )
    else:
        disk = SimulatedDisk.from_state(
            payload.disk_buffer,
            payload.disk_used,
            payload.page_size,
            read_latency_ms=payload.read_latency_ms,
            write_latency_ms=payload.write_latency_ms,
        )
    engine = ReachabilityEngine(
        network,
        database,
        disk=disk,
        buffer_pool_pages=payload.engine_pool_pages,
    )
    st_index = STIndex.restore(
        network,
        payload.delta_t_s,
        disk,
        payload.directory,
        buffer_pool_pages=payload.st_pool_pages,
        record_cache_size=payload.record_cache_size,
    )
    engine.install_st_index(payload.delta_t_s, st_index)
    return engine


def _serve_run(
    engines: dict, delta_t_s: int, body: dict, faults: list | None = None
) -> dict:
    from time import perf_counter

    from repro.api.client import ReachabilityClient
    from repro.core.service import QueryService

    if faults and RAISE_IN_SERVE in faults:
        raise FaultInjected("injected failure inside _serve_run")
    warm = body["warm"]
    reply = {}
    for shard_id, entries in body["shards"].items():
        handling_started = perf_counter()
        engine = engines[shard_id]
        # A fresh service per message keeps the region cache batch-scoped,
        # matching the single-process oracle (one fresh service per batch);
        # the engine-level buffer pools persist and `warm` governs them.
        with ReachabilityClient(QueryService(engine, delta_t_s=delta_t_s)) as client:
            requests = [request for _, _, request in entries]
            report = client.run_batch(requests, warm=warm, max_workers=1)
        results = [
            (seq, part_idx, pack_result(result))
            for (seq, part_idx, _), result in zip(entries, report.results)
        ]
        reply[shard_id] = {
            "results": results,
            "io": report.io,
            "simulated_io_ms": report.simulated_io_ms,
            "wall_time_s": report.wall_time_s,
            # Everything this shard did in the worker — service setup,
            # compute, result packing — i.e. the time the shard would
            # occupy a dedicated core for, excluding only the shared
            # message-level pipe codec.
            "worker_wall_s": perf_counter() - handling_started,
            "regions_computed": report.regions_computed,
            "regions_reused": report.regions_reused,
        }
    return reply


def shard_worker_main(
    conn,
    payloads: list,
    worker_idx: int = 0,
    incarnation: int = 0,
    fault_plan: FaultPlan | None = None,
) -> None:
    """Worker-process entry point (spawn target).

    Args:
        conn: the worker's end of the dispatcher pipe.
        payloads: the :class:`ShardPayload` slices this worker hosts.
        worker_idx: this worker's index (fault targeting + diagnostics).
        incarnation: 0 for the originally spawned process, +1 per
            supervisor respawn; fault specs select on it.
        fault_plan: deterministic failures to inject (tests only).
    """
    injector = FaultInjector(fault_plan, worker_idx, incarnation)
    try:
        engines = {p.shard_id: build_shard_engine(p) for p in payloads}
        delta_t_s = payloads[0].delta_t_s if payloads else 300
    except Exception:  # pragma: no cover - construction failures
        conn.send((MSG_ERROR, -1, traceback.format_exc()))
        return
    # DELAY_RESPONSE parks a computed reply here; it is flushed (late)
    # just before the *next* command's reply, after the dispatcher's
    # deadline already expired and retried — the canonical stale frame.
    deferred: list = []
    while True:
        injector.on_recv()
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        try:
            kind, request_id, body = parse_command(message)
        except ProtocolError:
            conn.send((MSG_ERROR, -1, traceback.format_exc()))
            continue
        if kind == MSG_SHUTDOWN:
            break
        if kind != MSG_RUN:
            conn.send(
                (MSG_ERROR, request_id, f"unknown message kind {kind!r}")
            )
            continue
        faults = injector.on_run()
        if KILL_IN_RUN in faults:
            import os

            # Deterministic mid-batch death: the command is received (the
            # dispatcher has an outstanding attempt), nothing is replied.
            os._exit(FAULT_EXIT_CODE)
        for frame in deferred:
            conn.send(frame)
        deferred.clear()
        try:
            shards = _serve_run(engines, delta_t_s, body, faults=faults)
            reply_body = {"version": PROTOCOL_VERSION, "shards": shards}
            if DROP_FRAME in faults:
                continue
            if CORRUPT_FRAME in faults:
                conn.send(["not", "a", "protocol", "frame"])
                continue
            if DELAY_RESPONSE in faults:
                deferred.append((MSG_OK, request_id, reply_body))
                continue
            conn.send((MSG_OK, request_id, reply_body))
        except Exception:
            conn.send((MSG_ERROR, request_id, traceback.format_exc()))
