"""Shard worker process: rebuild a slice, serve sub-batches over a pipe.

One worker process hosts one or more shard engines (the dispatcher deals
shards round-robin across workers).  Each engine is rebuilt from its
:class:`~repro.serving.partition.ShardPayload`: the sub-network, the
statistics-only trajectory database, a sparse disk with the original
page geometry, and the restored ST-Index directory slice.  The Con-Index
is *not* shipped — it derives entirely from the speed model plus the
sub-network topology, so the worker builds it lazily exactly as a
single-process engine would, and its disk appends land at the same page
ids (the sparse disk preserved the parent's append tail).

A ``("run", ...)`` message carries each hosted shard's sub-batch; the
worker answers it with a fresh :class:`~repro.core.service.QueryService`
per message and a **serial** ``run_batch`` — determinism and exact
accounting beat intra-shard thread parallelism, which the process fan-out
already provides.
"""

from __future__ import annotations

import traceback

from repro.core.engine import ReachabilityEngine
from repro.core.st_index import STIndex
from repro.io.persist import network_from_dict
from repro.serving.partition import ShardPayload
from repro.serving.protocol import (
    MSG_ERROR,
    MSG_OK,
    MSG_RUN,
    MSG_SHUTDOWN,
    pack_result,
)
from repro.storage.disk import SimulatedDisk
from repro.trajectory.store import TrajectoryDatabase


def build_shard_engine(payload: ShardPayload) -> ReachabilityEngine:
    """Reconstruct one shard's engine from its spawn-safe payload."""
    network = network_from_dict(payload.network)
    database = TrajectoryDatabase.from_speed_model(payload.speed_model)
    disk = SimulatedDisk.from_state(
        payload.disk_buffer,
        payload.disk_used,
        payload.page_size,
        read_latency_ms=payload.read_latency_ms,
        write_latency_ms=payload.write_latency_ms,
    )
    engine = ReachabilityEngine(
        network,
        database,
        disk=disk,
        buffer_pool_pages=payload.engine_pool_pages,
    )
    st_index = STIndex.restore(
        network,
        payload.delta_t_s,
        disk,
        payload.directory,
        buffer_pool_pages=payload.st_pool_pages,
        record_cache_size=payload.record_cache_size,
    )
    engine.install_st_index(payload.delta_t_s, st_index)
    return engine


def _serve_run(engines: dict, delta_t_s: int, body: dict) -> dict:
    from time import perf_counter

    from repro.api.client import ReachabilityClient
    from repro.core.service import QueryService

    warm = body["warm"]
    reply = {}
    for shard_id, entries in body["shards"].items():
        handling_started = perf_counter()
        engine = engines[shard_id]
        # A fresh service per message keeps the region cache batch-scoped,
        # matching the single-process oracle (one fresh service per batch);
        # the engine-level buffer pools persist and `warm` governs them.
        with ReachabilityClient(QueryService(engine, delta_t_s=delta_t_s)) as client:
            requests = [request for _, _, request in entries]
            report = client.run_batch(requests, warm=warm, max_workers=1)
        results = [
            (seq, part_idx, pack_result(result))
            for (seq, part_idx, _), result in zip(entries, report.results)
        ]
        reply[shard_id] = {
            "results": results,
            "io": report.io,
            "simulated_io_ms": report.simulated_io_ms,
            "wall_time_s": report.wall_time_s,
            # Everything this shard did in the worker — service setup,
            # compute, result packing — i.e. the time the shard would
            # occupy a dedicated core for, excluding only the shared
            # message-level pipe codec.
            "worker_wall_s": perf_counter() - handling_started,
            "regions_computed": report.regions_computed,
            "regions_reused": report.regions_reused,
        }
    return reply


def shard_worker_main(conn, payloads: list) -> None:
    """Worker-process entry point (spawn target).

    Args:
        conn: the worker's end of the dispatcher pipe.
        payloads: the :class:`ShardPayload` slices this worker hosts.
    """
    try:
        engines = {p.shard_id: build_shard_engine(p) for p in payloads}
        delta_t_s = payloads[0].delta_t_s if payloads else 300
    except Exception:  # pragma: no cover - construction failures
        conn.send((MSG_ERROR, traceback.format_exc()))
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == MSG_SHUTDOWN:
            break
        if kind != MSG_RUN:  # pragma: no cover - protocol misuse
            conn.send((MSG_ERROR, f"unknown message kind {kind!r}"))
            continue
        try:
            conn.send((MSG_OK, _serve_run(engines, delta_t_s, message[1])))
        except Exception:
            conn.send((MSG_ERROR, traceback.format_exc()))
