"""Spatial partitioning of a road network into shard slices.

The partitioner splits the segment set into K *owned* sets by recursive
kd-median bisection over segment midpoints (balanced counts, arbitrary K,
fully deterministic), then replicates a **halo ring** around each shard:
every segment within ``halo_m`` metres of an owned midpoint.  The halo is
sized from the serving contract — the fastest observed speed, the maximum
supported query duration and the index granularity Δt — so any bounded
expansion seeded on an owned segment stays inside the shard's
sub-network and a worker answers its sub-requests without talking to its
neighbours.

A shard's materialized state is a :class:`ShardPayload`: the sub-network
(owned + halo, exported through the :mod:`repro.io.persist` dict format),
the ST-Index directory slice with its original extent pointers, a
*sparse* copy of the simulated disk that carries exactly the referenced
pages at their original page ids, and the statistics-only speed model the
Con-Index derives from.  Preserving page geometry is what makes shard
accounting exactly comparable to the single-process engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.engine import ReachabilityEngine
from repro.io.persist import network_to_dict
from repro.network.model import RoadNetwork
from repro.spatial.geometry import Point
from repro.storage.backends import FileBackedDisk

#: Safety margin, in maximum segment lengths, added to the halo radius on
#: top of the speed-and-duration travel bound: covers midpoint-vs-path
#: slack at both ends of an expansion plus the one extra neighbour hop
#: the trace-back search examines beyond its bounding region.
HALO_SEGMENT_SLACK = 6


@dataclass(frozen=True)
class ShardSpec:
    """One shard's segment sets.

    Attributes:
        shard_id: index of the shard in the partition plan.
        owned: segments this shard answers queries for.
        halo: replicated ring segments (readable, never owning queries).
    """

    shard_id: int
    owned: frozenset[int]
    halo: frozenset[int]

    @property
    def members(self) -> frozenset[int]:
        return self.owned | self.halo


@dataclass
class PartitionPlan:
    """A K-way spatial partition with halo replication.

    Attributes:
        shards: the shard specs, ``shard_id`` == list position.
        owner_of: segment id -> owning shard id (every segment owned by
            exactly one shard).
        halo_m: replication radius in metres.
        max_duration_s: longest query duration the halo contract covers.
        v_max_mps: fastest observed speed used to size the halo.
    """

    shards: list[ShardSpec] = field(default_factory=list)
    owner_of: dict[int, int] = field(default_factory=dict)
    halo_m: float = 0.0
    max_duration_s: float = 0.0
    v_max_mps: float = 0.0

    @property
    def num_shards(self) -> int:
        return len(self.shards)


@dataclass
class ShardPayload:
    """Everything a worker process needs to rebuild one shard engine.

    All fields are plain picklable values (dicts, bytes, dataclasses), so
    the payload crosses a ``spawn`` boundary as a Process argument.
    """

    shard_id: int
    network: dict
    speed_model: dict
    delta_t_s: int
    directory: dict
    disk_buffer: bytes
    disk_used: tuple
    page_size: int
    read_latency_ms: float
    write_latency_ms: float
    engine_pool_pages: int
    st_pool_pages: int
    record_cache_size: int
    #: Durable-store reference mode: when set, ``disk_buffer``/``disk_used``
    #: are empty and the worker opens this FileBackedDisk store read-only,
    #: faulting in (and checksum-verifying) only the pages its shard's
    #: pointers actually touch — the payload ships a path, not the data.
    disk_path: str | None = None


def reach_m(duration_s: float, delta_t_s: float, v_max_mps: float,
            max_segment_m: float) -> float:
    """Upper bound on how far (in metres, midpoint to midpoint) a bounded
    expansion seeded at one segment can reach for a query of
    ``duration_s``.

    The slot-quantized far bound travels at most ``duration + 2Δt``
    seconds at the fastest observed speed (ceil quantization plus the
    carried partial slot), and the segment-length slack absorbs the
    midpoint-vs-path difference at both ends plus TBS's one extra
    neighbour hop past the region boundary.
    """
    return (
        (duration_s + 2.0 * delta_t_s) * v_max_mps
        + HALO_SEGMENT_SLACK * max_segment_m
    )


def _kd_assign(
    mid_x: np.ndarray,
    mid_y: np.ndarray,
    weights: np.ndarray | None,
    rows: np.ndarray,
    num_shards: int,
    first_id: int,
    out: np.ndarray,
) -> None:
    """Recursively bisect ``rows`` into ``num_shards`` contiguous spatial
    blocks, writing shard ids into ``out``.

    Splits along the wider axis at the count-proportional rank (or, with
    ``weights``, the weight-proportional rank), so K need not be a power
    of two and shard populations stay balanced to ±1.  Sorting is stable
    with the row index as the final key, making the assignment a pure
    function of the midpoint geometry (and weights).
    """
    if num_shards <= 1 or rows.size == 0:
        out[rows] = first_id
        return
    xs, ys = mid_x[rows], mid_y[rows]
    span_x = xs.max() - xs.min() if rows.size else 0.0
    span_y = ys.max() - ys.min() if rows.size else 0.0
    axis = xs if span_x >= span_y else ys
    order = np.lexsort((rows, axis))
    left_shards = num_shards // 2
    right_shards = num_shards - left_shards
    if weights is None:
        cut = round(rows.size * left_shards / num_shards)
    else:
        cum = np.cumsum(weights[rows][order])
        cut = int(np.searchsorted(cum, cum[-1] * left_shards / num_shards))
    # every descendant must receive at least one row
    cut = min(max(cut, left_shards), rows.size - right_shards)
    _kd_assign(
        mid_x, mid_y, weights, rows[order[:cut]], left_shards, first_id, out
    )
    _kd_assign(
        mid_x, mid_y, weights, rows[order[cut:]], right_shards,
        first_id + left_shards, out,
    )


def _halo_rows(
    mid_x: np.ndarray,
    mid_y: np.ndarray,
    owned_rows: np.ndarray,
    halo_m: float,
    chunk: int = 512,
) -> np.ndarray:
    """Rows (owned excluded) whose midpoint lies within ``halo_m`` of any
    owned midpoint."""
    n = mid_x.size
    owned_mask = np.zeros(n, dtype=bool)
    owned_mask[owned_rows] = True
    candidates = np.flatnonzero(~owned_mask)
    if candidates.size == 0 or owned_rows.size == 0:
        return np.empty(0, dtype=np.int64)
    ox, oy = mid_x[owned_rows], mid_y[owned_rows]
    keep: list[np.ndarray] = []
    limit_sq = halo_m * halo_m
    for start in range(0, candidates.size, chunk):
        rows = candidates[start : start + chunk]
        dx = mid_x[rows][:, None] - ox[None, :]
        dy = mid_y[rows][:, None] - oy[None, :]
        near = ((dx * dx + dy * dy).min(axis=1)) <= limit_sq
        keep.append(rows[near])
    return np.concatenate(keep) if keep else np.empty(0, dtype=np.int64)


def partition_network(
    network: RoadNetwork,
    num_shards: int,
    halo_m: float,
    max_duration_s: float = 0.0,
    v_max_mps: float = 0.0,
    weights: np.ndarray | None = None,
) -> PartitionPlan:
    """Split ``network`` into ``num_shards`` spatial shards with halos.

    Deterministic: kd-median bisection over the CSR midpoint vectors
    (stable ties by row), halo by euclidean midpoint distance.  With
    ``num_shards == 1`` the single shard owns everything and the halo is
    empty.

    Args:
        weights: optional per-CSR-row load weights.  Without them the
            split balances segment *counts*; with them it balances
            weight sums, so shard boundaries concentrate where the
            weight (e.g. trajectory-visit density — the serving layer's
            proxy for query load) concentrates.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    csr = network.csr()
    n = csr.n
    if n == 0:
        raise ValueError("cannot partition an empty network")
    num_shards = min(num_shards, n)
    assignment = np.zeros(n, dtype=np.int64)
    _kd_assign(
        csr.mid_x, csr.mid_y, weights, np.arange(n, dtype=np.int64),
        num_shards, 0, assignment,
    )
    shards: list[ShardSpec] = []
    owner_of: dict[int, int] = {}
    for shard_id in range(num_shards):
        owned_rows = np.flatnonzero(assignment == shard_id)
        if num_shards == 1:
            halo_rows = np.empty(0, dtype=np.int64)
        else:
            halo_rows = _halo_rows(csr.mid_x, csr.mid_y, owned_rows, halo_m)
        owned_ids = frozenset(int(i) for i in csr.ids[owned_rows])
        halo_ids = frozenset(int(i) for i in csr.ids[halo_rows])
        shards.append(
            ShardSpec(shard_id=shard_id, owned=owned_ids, halo=halo_ids)
        )
        for segment_id in owned_ids:
            owner_of[segment_id] = shard_id
    return PartitionPlan(
        shards=shards,
        owner_of=owner_of,
        halo_m=halo_m,
        max_duration_s=max_duration_s,
        v_max_mps=v_max_mps,
    )


def build_subnetwork(network: RoadNetwork, segment_ids: frozenset[int]) -> RoadNetwork:
    """The induced sub-network over ``segment_ids``.

    Nodes and segments are inserted in the full network's iteration
    order, so id-order-dependent tie-breaks (nearest-segment lookups)
    resolve identically on the slice.  Dangling ``twin_id`` references
    (twin outside the slice) are legal: every consumer guards with
    ``has_segment``.
    """
    sub = RoadNetwork()
    needed_nodes: set[int] = set()
    for segment in network.segments():
        if segment.segment_id in segment_ids:
            needed_nodes.add(segment.start_node)
            needed_nodes.add(segment.end_node)
    for node_id, point in network.nodes():
        if node_id in needed_nodes:
            sub.add_node(node_id, point)
    for segment in network.segments():
        if segment.segment_id in segment_ids:
            sub.add_segment(segment)
    return sub


def export_shard_payload(
    engine: ReachabilityEngine,
    spec: ShardSpec,
    delta_t_s: int,
) -> ShardPayload:
    """Materialize one shard's spawn-safe slice from a built engine.

    The ST-Index slice keeps the original extent pointers and the sparse
    disk export keeps the original page geometry, so the shard worker's
    reads charge exactly the pages the full engine would charge.
    """
    st_index = engine.st_index(delta_t_s)
    members = spec.members
    directory = st_index.export_directory(members)
    disk = engine.disk
    disk_path: str | None = None
    if isinstance(disk, FileBackedDisk) and disk.is_synced:
        # Reference mode: every page is durable in the store, so the
        # payload ships the path instead of the buffer.  Unsynced disks
        # (or the RAM backend) fall back to the sparse buffer export.
        buffer, used = b"", ()
        disk_path = disk.path
    else:
        page_ids: set[int] = set()
        for chain in directory.values():
            for pointer in chain:
                page_ids.update(
                    range(
                        pointer.first_page, pointer.first_page + pointer.num_pages
                    )
                )
        buffer, used = disk.export_sparse_state(page_ids)
    subnetwork = build_subnetwork(engine.network, members)
    return ShardPayload(
        shard_id=spec.shard_id,
        network=network_to_dict(subnetwork),
        speed_model=engine.database.export_speed_model(members),
        delta_t_s=delta_t_s,
        directory=directory,
        disk_buffer=buffer,
        disk_used=used,
        page_size=disk.page_size,
        read_latency_ms=disk.read_latency_ms,
        write_latency_ms=disk.write_latency_ms,
        engine_pool_pages=engine.buffer_pool_pages,
        st_pool_pages=st_index.pool.capacity,
        record_cache_size=st_index.record_cache_size,
        disk_path=disk_path,
    )


def max_segment_length_m(network: RoadNetwork) -> float:
    """The longest segment in the network (halo sizing input)."""
    return max((seg.length for seg in network.segments()), default=0.0)


class SegmentLocator:
    """Vectorized batch counterpart of ``STIndex.find_start_segment``.

    The dispatcher must map every query location to the shard owning its
    start segment; doing that through the scalar R-tree walk costs more
    than the scatter itself on large batches.  The locator flattens every
    polyline into edge arrays once, then resolves whole location batches
    with one numpy point-to-edge distance pass (the same arithmetic as
    :func:`repro.spatial.geometry.point_segment_distance`), reduced to a
    per-segment minimum and tie-broken to the smallest segment id — the
    scalar path's contract.

    Dispatch-side only: workers still resolve start segments through the
    scalar R-tree on their sub-network, so in the measure-zero event of a
    floating-point tie resolving differently here, the query merely lands
    on the neighbouring shard — whose halo covers the true start segment
    by construction — and the result is unchanged.
    """

    def __init__(self, network: RoadNetwork) -> None:
        seg_ids: list[int] = []
        run_starts: list[int] = [0]
        sx: list[float] = []
        sy: list[float] = []
        ex: list[float] = []
        ey: list[float] = []
        for segment in network.segments():
            shape = segment.shape
            for a, b in zip(shape[:-1], shape[1:]):
                sx.append(a.x)
                sy.append(a.y)
                ex.append(b.x)
                ey.append(b.y)
            seg_ids.append(segment.segment_id)
            run_starts.append(len(sx))
        if not sx:
            raise ValueError("empty spatial index")
        self._seg_ids = np.asarray(seg_ids, dtype=np.int64)
        self._starts = np.asarray(run_starts[:-1], dtype=np.int64)
        self._sx = np.asarray(sx)
        self._sy = np.asarray(sy)
        self._dx = np.asarray(ex) - self._sx
        self._dy = np.asarray(ey) - self._sy
        length_sq = self._dx * self._dx + self._dy * self._dy
        self._degenerate = length_sq == 0.0
        self._length_sq = np.where(self._degenerate, 1.0, length_sq)

    def locate(self, locations: Sequence[Point], chunk: int = 256) -> np.ndarray:
        """Start segment ids for ``locations`` (sequence of ``Point``)."""
        points = np.asarray([(p.x, p.y) for p in locations])
        out = np.empty(len(locations), dtype=np.int64)
        for lo in range(0, len(locations), chunk):
            px = points[lo : lo + chunk, 0][:, None]
            py = points[lo : lo + chunk, 1][:, None]
            t = (
                (px - self._sx) * self._dx + (py - self._sy) * self._dy
            ) / self._length_sq
            np.clip(t, 0.0, 1.0, out=t)
            t[:, self._degenerate] = 0.0
            dist = np.hypot(
                px - (self._sx + t * self._dx),
                py - (self._sy + t * self._dy),
            )
            per_segment = np.minimum.reduceat(dist, self._starts, axis=1)
            best = per_segment.min(axis=1)
            for row in range(per_segment.shape[0]):
                winners = np.flatnonzero(per_segment[row] == best[row])
                out[lo + row] = self._seg_ids[winners].min()
        return out
