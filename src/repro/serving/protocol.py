"""Pipe protocol between the dispatcher and shard workers.

Messages are plain tuples sent over ``multiprocessing.Connection``
(pickle-framed).  The dispatcher speaks first; a worker only ever
replies.

Dispatcher -> worker::

    ("run", {"warm": bool,
             "shards": {shard_id: [(seq, part_idx, Request), ...]}})
    ("shutdown",)

Worker -> dispatcher::

    ("ok", {shard_id: {"results": [(seq, part_idx, packed_result), ...],
                       "io": DiskStats,
                       "simulated_io_ms": float,
                       "wall_time_s": float,
                       "regions_computed": int,
                       "regions_reused": int}})
    ("error", traceback_string)

``seq`` is the request's position in the dispatcher's batch; ``part_idx``
distinguishes the per-shard parts of a decomposed cross-shard m-query
(``0`` for whole requests).

Query results dominate reply size, so :func:`pack_result` flattens the
big set/dict fields into numpy arrays — pickle ships those as one buffer
each instead of per-element objects — and :func:`unpack_result` restores
an equal :class:`~repro.core.query.QueryResult` on the parent side.
``QueryCost``/``DiskStats`` are small flat dataclasses and travel as-is.
"""

from __future__ import annotations

from typing import Collection

import numpy as np

from repro.core.query import BoundingRegion, QueryResult

MSG_RUN = "run"
MSG_SHUTDOWN = "shutdown"
MSG_OK = "ok"
MSG_ERROR = "error"


def _pack_ids(ids: Collection[int]) -> np.ndarray:
    return np.fromiter(ids, dtype=np.int64, count=len(ids))


def _pack_region(
    region: BoundingRegion | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    if region is None:
        return None
    seed_items = region.seed_of.items()
    return (
        _pack_ids(region.cover),
        _pack_ids(region.boundary),
        np.array([[k, v] for k, v in seed_items], dtype=np.int64).reshape(-1, 2),
    )


def _unpack_region(
    packed: tuple[np.ndarray, np.ndarray, np.ndarray] | None,
) -> BoundingRegion | None:
    if packed is None:
        return None
    cover, boundary, seeds = packed
    return BoundingRegion(
        cover=set(cover.tolist()),
        boundary=set(boundary.tolist()),
        seed_of={int(k): int(v) for k, v in seeds},
    )


def pack_result(result: QueryResult) -> tuple:
    """Flatten a :class:`QueryResult` for cheap cross-process pickling."""
    prob_ids = _pack_ids(result.probabilities.keys())
    prob_values = np.fromiter(
        result.probabilities.values(), dtype=np.float64,
        count=len(result.probabilities),
    )
    return (
        _pack_ids(result.segments),
        prob_ids,
        prob_values,
        result.start_segments,
        _pack_region(result.max_region),
        _pack_region(result.min_region),
        result.cost,
    )


def unpack_result(packed: tuple) -> QueryResult:
    """Inverse of :func:`pack_result`."""
    segments, prob_ids, prob_values, starts, max_region, min_region, cost = packed
    return QueryResult(
        segments=set(segments.tolist()),
        probabilities=dict(
            zip((int(i) for i in prob_ids), (float(v) for v in prob_values))
        ),
        start_segments=tuple(starts),
        max_region=_unpack_region(max_region),
        min_region=_unpack_region(min_region),
        cost=cost,
    )
