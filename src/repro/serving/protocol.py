"""Pipe protocol between the dispatcher and shard workers.

Messages are plain tuples sent over ``multiprocessing.Connection``
(pickle-framed).  The dispatcher speaks first; a worker only ever
replies.  Since protocol version 2 every command/reply pair carries a
dispatcher-assigned **request id**: the supervisor retries a scatter
whose deadline expired, and the id is what lets it discard the original
(late) reply instead of mistaking it for the retry's answer.

Dispatcher -> worker::

    ("run", request_id, {"version": PROTOCOL_VERSION,
                         "warm": bool,
                         "shards": {shard_id: [(seq, part_idx, Request), ...]}})
    ("shutdown",)

Worker -> dispatcher::

    ("ok", request_id, {"version": PROTOCOL_VERSION,
                        "shards": {shard_id: {
                            "results": [(seq, part_idx, packed_result), ...],
                            "io": DiskStats,
                            "simulated_io_ms": float,
                            "wall_time_s": float,
                            "regions_computed": int,
                            "regions_reused": int}}})
    ("error", request_id, traceback_string)

``seq`` is the request's position in the dispatcher's batch; ``part_idx``
distinguishes the per-shard parts of a decomposed cross-shard m-query
(``0`` for whole requests).  A reply's ``request_id`` echoes the command
it answers (``-1`` when the worker could not even parse the command).

:func:`parse_command` and :func:`parse_reply` are the validation
chokepoints: both sides run every received frame through them and treat
:class:`ProtocolError` as a malformed peer — the worker answers
``MSG_ERROR``, the dispatcher's supervisor counts a failed attempt and
respawns (a corrupt frame means the pipe can no longer be trusted).

Query results dominate reply size, so :func:`pack_result` flattens the
big set/dict fields into numpy arrays — pickle ships those as one buffer
each instead of per-element objects — and :func:`unpack_result` restores
an equal :class:`~repro.core.query.QueryResult` on the parent side.
``QueryCost``/``DiskStats`` are small flat dataclasses and travel as-is.
"""

from __future__ import annotations

from typing import Any, Collection, Dict, Optional, Tuple

import numpy as np

from repro.core.query import BoundingRegion, QueryResult

#: Bumped whenever the frame layout changes; both sides verify it so a
#: stale worker (or a dispatcher driving one) fails loudly instead of
#: misreading pickled tuples.
PROTOCOL_VERSION = 2

MSG_RUN = "run"
MSG_SHUTDOWN = "shutdown"
MSG_OK = "ok"
MSG_ERROR = "error"


class ProtocolError(RuntimeError):
    """A frame that does not follow the pipe protocol."""


def parse_command(frame: object) -> Tuple[str, int, Optional[Dict[str, Any]]]:
    """Validate a dispatcher->worker frame.

    Returns ``(kind, request_id, body)``; ``MSG_SHUTDOWN`` has no id or
    body (``(kind, -1, None)``).  Raises :class:`ProtocolError` on
    malformed frames and on a protocol-version mismatch.
    """
    if not isinstance(frame, tuple) or not frame:
        raise ProtocolError(f"command frame is not a tuple: {frame!r}")
    kind = frame[0]
    if not isinstance(kind, str):
        raise ProtocolError(f"command kind is not a string: {kind!r}")
    if kind == MSG_SHUTDOWN:
        return kind, -1, None
    if len(frame) != 3:
        raise ProtocolError(
            f"command frame {kind!r} has {len(frame)} elements, want 3"
        )
    request_id, body = frame[1], frame[2]
    if not isinstance(request_id, int):
        raise ProtocolError(f"request id is not an int: {request_id!r}")
    if not isinstance(body, dict):
        raise ProtocolError(f"command body is not a dict: {type(body).__name__}")
    version = body.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    return kind, request_id, body


def parse_reply(frame: object) -> Tuple[str, int, Any]:
    """Validate a worker->dispatcher frame.

    Returns ``(kind, request_id, body)`` where ``body`` is the shard
    reply map for ``MSG_OK`` and the traceback string for ``MSG_ERROR``.
    Raises :class:`ProtocolError` on anything else.
    """
    if not isinstance(frame, tuple) or len(frame) != 3:
        raise ProtocolError(f"reply frame is not a 3-tuple: {frame!r}")
    kind, request_id, body = frame
    if not isinstance(kind, str):
        raise ProtocolError(f"reply kind is not a string: {kind!r}")
    if not isinstance(request_id, int):
        raise ProtocolError(f"reply request id is not an int: {request_id!r}")
    if kind == MSG_OK:
        if not isinstance(body, dict):
            raise ProtocolError(
                f"ok body is not a dict: {type(body).__name__}"
            )
        version = body.get("version")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: worker speaks {version!r}, "
                f"dispatcher speaks {PROTOCOL_VERSION}"
            )
        if not isinstance(body.get("shards"), dict):
            raise ProtocolError("ok body has no shard reply map")
    elif kind == MSG_ERROR:
        if not isinstance(body, str):
            raise ProtocolError(
                f"error body is not a string: {type(body).__name__}"
            )
    else:
        raise ProtocolError(f"unknown reply kind {kind!r}")
    return kind, request_id, body


def _pack_ids(ids: Collection[int]) -> np.ndarray:
    return np.fromiter(ids, dtype=np.int64, count=len(ids))


def _pack_region(
    region: BoundingRegion | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    if region is None:
        return None
    seed_items = region.seed_of.items()
    return (
        _pack_ids(region.cover),
        _pack_ids(region.boundary),
        np.array([[k, v] for k, v in seed_items], dtype=np.int64).reshape(-1, 2),
    )


def _unpack_region(
    packed: tuple[np.ndarray, np.ndarray, np.ndarray] | None,
) -> BoundingRegion | None:
    if packed is None:
        return None
    cover, boundary, seeds = packed
    return BoundingRegion(
        cover=set(cover.tolist()),
        boundary=set(boundary.tolist()),
        seed_of={int(k): int(v) for k, v in seeds},
    )


def pack_result(result: QueryResult) -> tuple:
    """Flatten a :class:`QueryResult` for cheap cross-process pickling."""
    prob_ids = _pack_ids(result.probabilities.keys())
    prob_values = np.fromiter(
        result.probabilities.values(), dtype=np.float64,
        count=len(result.probabilities),
    )
    return (
        _pack_ids(result.segments),
        prob_ids,
        prob_values,
        result.start_segments,
        _pack_region(result.max_region),
        _pack_region(result.min_region),
        result.cost,
    )


def unpack_result(packed: tuple) -> QueryResult:
    """Inverse of :func:`pack_result`."""
    segments, prob_ids, prob_values, starts, max_region, min_region, cost = packed
    return QueryResult(
        segments=set(segments.tolist()),
        probabilities=dict(
            zip((int(i) for i in prob_ids), (float(v) for v in prob_values))
        ),
        start_segments=tuple(starts),
        max_region=_unpack_region(max_region),
        min_region=_unpack_region(min_region),
        cost=cost,
    )
