"""Deterministic fault injection for the sharded serving stack.

Every failure mode the dispatcher's supervisor handles — a worker dying
mid-batch, a reply arriving after its deadline, a dropped or corrupted
frame, an executor raising inside the worker — is reproducible from a
:class:`FaultPlan` threaded through ``ShardedEngine(fault_plan=...)``
into each worker process.  Faults fire on *message counters* (the Nth
``recv`` / the Nth ``run`` a given worker incarnation sees), never on
wall time, so a test that injects a plan observes the identical failure
sequence on every run without sleeps or real crashes:

* ``KILL_BEFORE_RECV`` — the worker process exits (``os._exit``) just
  before its Nth pipe ``recv``, exactly as an OOM-kill between batches
  would look to the dispatcher (EOF on the pipe).  Note the timing is
  the *worker's*: whether the dispatcher notices before or after its
  next scatter depends on process startup speed, so tests that need a
  deterministic mid-batch death use ``KILL_IN_RUN`` instead.
* ``KILL_IN_RUN`` — the worker exits immediately after *receiving* its
  Nth ``run`` command, before sending anything: the dispatcher has an
  outstanding attempt and observes EOF, deterministically exercising the
  died-mid-batch → respawn → retry path.
* ``DELAY_RESPONSE`` — the worker computes the reply but *withholds* it
  until just before it answers its next command, so the frame arrives
  after the dispatcher's deadline fired and retried: the canonical
  late-frame case the request-id discard protects against.
* ``DROP_FRAME`` — the reply is computed and silently discarded; the
  dispatcher sees a worker that accepted the batch and never answered
  (a hung worker, minus the hang).
* ``CORRUPT_FRAME`` — the reply is replaced by a garbage object that
  fails frame validation on the parent side.
* ``RAISE_IN_SERVE`` — an injected exception raised inside
  ``_serve_run``, exercising the worker's per-message error isolation
  (``MSG_ERROR`` reply, loop stays alive).

A spec targets one worker index and, by default, only **incarnation 0**
(the originally spawned process) — a respawned replacement starts with
fresh counters and, unless the spec says ``incarnation=None`` (every
incarnation), a clean fault-free plan.  That is what makes "kill the
worker, watch the retry succeed on the respawn" a terminating,
deterministic scenario, while ``incarnation=None`` keeps the fault alive
through every respawn to drive the retries-exhausted/degradation path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

KILL_BEFORE_RECV = "kill_before_recv"
KILL_IN_RUN = "kill_in_run"
DELAY_RESPONSE = "delay_response"
DROP_FRAME = "drop_frame"
CORRUPT_FRAME = "corrupt_frame"
RAISE_IN_SERVE = "raise_in_serve"

FAULT_KINDS = frozenset(
    {
        KILL_BEFORE_RECV,
        KILL_IN_RUN,
        DELAY_RESPONSE,
        DROP_FRAME,
        CORRUPT_FRAME,
        RAISE_IN_SERVE,
    }
)

#: Exit status of a fault-killed worker, distinguishable from a real
#: crash (-signal) and a clean exit (0) in test assertions.
FAULT_EXIT_CODE = 86


class FaultInjected(RuntimeError):
    """The injected executor-side failure (``RAISE_IN_SERVE``)."""


# repro-lint: payload
@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: *what* happens, *where*, and *when*.

    Attributes:
        kind: one of the ``FAULT_KINDS`` constants.
        worker: index of the worker process the fault applies to.
        at: 1-based trigger count — the worker's Nth pipe ``recv`` for
            ``KILL_BEFORE_RECV``, its Nth ``run`` command for the other
            kinds (``KILL_IN_RUN`` included).  Counters are per process
            incarnation.
        incarnation: which incarnation of the worker the fault fires in
            (``0`` = the originally spawned process, the default); pass
            ``None`` to fire in every incarnation, so respawned
            replacements fail identically and retries exhaust.
    """

    kind: str
    worker: int = 0
    at: int = 1
    incarnation: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 1:
            raise ValueError(f"fault trigger count must be >= 1, got {self.at}")


# repro-lint: payload
@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of :class:`FaultSpec` entries.

    Plain data (strings, ints, tuples) by construction, so the plan
    crosses the ``spawn`` boundary as a ``Process`` argument — the same
    contract shard payloads obey (RL003).
    """

    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(faults=tuple(specs))

    def for_worker(
        self, worker: int, incarnation: int
    ) -> Tuple[FaultSpec, ...]:
        """The specs that apply to one worker-process incarnation."""
        return tuple(
            spec
            for spec in self.faults
            if spec.worker == worker
            and (spec.incarnation is None or spec.incarnation == incarnation)
        )


class FaultInjector:
    """Worker-side trigger bookkeeping for one process incarnation.

    The worker loop consults the injector at its two hook points:
    :meth:`on_recv` immediately before every pipe ``recv`` (may never
    return — ``KILL_BEFORE_RECV`` exits the process), and
    :meth:`on_run` once per ``run`` command, returning the reply-side
    fault kinds to apply to that command's handling.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan],
        worker: int,
        incarnation: int,
    ) -> None:
        self._specs = (
            plan.for_worker(worker, incarnation) if plan is not None else ()
        )
        self._recv_count = 0
        self._run_count = 0

    @property
    def active(self) -> bool:
        return bool(self._specs)

    def on_recv(self) -> None:
        """Hook before a pipe ``recv``; exits the process on a kill spec."""
        self._recv_count += 1
        for spec in self._specs:
            if spec.kind == KILL_BEFORE_RECV and spec.at == self._recv_count:
                import os

                # A real crash does not unwind the stack or flush pipes;
                # os._exit is the closest deterministic stand-in.
                os._exit(FAULT_EXIT_CODE)

    def on_run(self) -> List[str]:
        """Reply-side fault kinds that fire for this ``run`` command."""
        self._run_count += 1
        return [
            spec.kind
            for spec in self._specs
            if spec.kind != KILL_BEFORE_RECV and spec.at == self._run_count
        ]


def validate_plan(plan: Optional[FaultPlan], num_workers: int) -> None:
    """Reject specs that target workers the engine never spawns."""
    if plan is None:
        return
    for spec in plan.faults:
        if not 0 <= spec.worker < num_workers:
            raise ValueError(
                f"fault spec targets worker {spec.worker}, but the engine "
                f"runs {num_workers} worker(s)"
            )


def describe_plan(plan: Optional[FaultPlan]) -> str:
    """One-line human-readable plan summary (CLI / logs)."""
    if plan is None or not plan.faults:
        return "no injected faults"
    parts: Iterable[str] = (
        f"{spec.kind}@worker{spec.worker}"
        f"[recv/run {spec.at}, incarnation "
        f"{'any' if spec.incarnation is None else spec.incarnation}]"
        for spec in plan.faults
    )
    return ", ".join(parts)
