"""Scatter-gather dispatch over supervised shard worker processes.

:class:`ShardedEngine` is the multi-process counterpart of
:meth:`repro.api.ReachabilityClient.run_batch`: it partitions the road
network once (construction), spawns worker processes hosting the shard
slices, and answers each batch by scattering sub-requests to the owning
shards, running any out-of-contract requests locally, and gathering and
merging the replies into one classic
:class:`~repro.core.service.BatchReport`.

Routing: a request belongs to the shard that **owns its start segment**
(resolved through the parent's in-memory ST-Index R-tree — no I/O).  A
cross-shard m-query decomposes into per-shard m-query parts whose union
is, by the union semantics of multi-seed reachability, the same segment
set the single-process engine computes.  A request whose travel bound
exceeds the halo contract (duration too long, or a foreign Δt) falls
back to the dispatcher's own single-process service.

Failure semantics (the supervisor): the dispatcher retains every shard's
spawn payload, so a worker is a *replaceable* process.  Each scatter is
an **attempt** with a fresh protocol request id and a deadline
(``deadline_ms``); the gather loop waits with that deadline
(:meth:`ShardedEngine._poll_workers` is the single blocking chokepoint —
lint rule RL010), and an attempt that dies (EOF on the pipe), times out,
answers ``MSG_ERROR``, or sends a corrupt frame is **retried** with
exponential backoff up to ``max_retries`` times — on a freshly respawned
worker when the process is gone or untrusted, on the same worker when it
is merely slow (a late reply is then discarded by request id, never
mismatched).  A sub-batch that exhausts its retries **degrades**: it
re-executes on the dispatcher-local fallback service, so ``run_batch``
still returns a complete report and one lost process costs one
redispatch, not the batch.

Accounting: every shard worker reports its sub-batch's exact
:class:`~repro.storage.disk.DiskStats` window; ``report.io`` is the sum
of those windows plus the dispatcher-local fallback window (out-of-
contract *and* degraded sub-batches), so the sharded report aggregates
**exactly** — per-shard snapshots add up to what a single-process engine
would have charged for the same sub-batches, faults or not.  A failed
attempt reports no window at all (whatever pages the doomed worker
touched died with its private disk copy), which is what keeps degraded
accounting exact.  The fault counters (``worker_restarts``, ``retries``,
``degraded_requests``, ``stale_frames``) aggregate onto the report the
same way the windows do.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection

from repro.api.envelope import Request
from repro.api.router import Router
from repro.core.engine import ReachabilityEngine
from repro.core.planner import QueryPlan, plan_query
from repro.core.query import BoundingRegion, MQuery, QueryCost, QueryResult
from repro.core.service import (
    BatchReport,
    QueryService,
    ShardReport,
    as_service,
)
from repro.serving.faults import FaultPlan, validate_plan
from repro.serving.partition import (
    PartitionPlan,
    SegmentLocator,
    export_shard_payload,
    max_segment_length_m,
    partition_network,
    reach_m,
)
from repro.serving.protocol import (
    MSG_ERROR,
    MSG_OK,
    MSG_RUN,
    MSG_SHUTDOWN,
    PROTOCOL_VERSION,
    ProtocolError,
    pack_result,
    parse_reply,
    unpack_result,
)
from repro.serving.worker import shard_worker_main
from repro.storage.disk import DiskStats

#: Default longest query duration the halo contract covers (one hour —
#: generous against the paper's 5..30-minute workloads).
DEFAULT_MAX_DURATION_S = 3600.0

#: Default per-scatter deadline.  Generous: the fig-4.8 workloads answer
#: whole batches in well under a second, so 30 s only ever fires on a
#: genuinely wedged worker, not a slow one.
DEFAULT_DEADLINE_MS = 30_000.0

#: Default bounded-retry limit per scatter (initial attempt excluded).
DEFAULT_MAX_RETRIES = 2

#: Default base for exponential retry backoff (seconds); attempt ``n``
#: sleeps ``backoff * 2**(n-1)`` before redispatching.  Only the failure
#: path ever sleeps.
DEFAULT_RETRY_BACKOFF_S = 0.05


class ShardedEngineClosedError(RuntimeError):
    """A batch was submitted to a :class:`ShardedEngine` after ``close``.

    Subclasses :class:`RuntimeError` so pre-existing callers catching
    the old bare error keep working.
    """


@dataclass
class DispatchPlan:
    """How one batch splits across shards.

    Attributes:
        per_shard: ``shard_id -> [(seq, part_idx, Request), ...]`` — the
            sub-requests each shard executes, in submission order.
        fallback: ``[(seq, Request), ...]`` answered dispatcher-locally
            (out-of-contract duration or foreign Δt).
        decomposed: ``seq -> Request`` for cross-shard m-queries whose
            per-shard parts need merging.
        decomposed_starts: ``seq -> start segment ids`` for decomposed
            m-queries, one per location in query order (the routing
            pass already resolved them; the merge reuses them instead
            of re-querying the R-tree).
    """

    per_shard: dict[int, list[tuple[int, int, Request]]] = field(
        default_factory=dict
    )
    fallback: list[tuple[int, Request]] = field(default_factory=list)
    decomposed: dict[int, Request] = field(default_factory=dict)
    decomposed_starts: dict[int, tuple[int, ...]] = field(
        default_factory=dict
    )

    @property
    def num_sub_requests(self) -> int:
        return sum(len(entries) for entries in self.per_shard.values())


@dataclass
class _WorkerHandle:
    """One live worker process plus its pipe and incarnation number."""

    worker_idx: int
    process: object
    conn: object
    incarnation: int = 0


@dataclass
class _Attempt:
    """One in-flight scatter to one worker."""

    request_id: int
    shard_map: dict[int, list]
    attempt: int  # 0 = initial dispatch, 1.. = retries
    deadline_at: float | None  # monotonic seconds, None = no deadline


@dataclass
class _FaultStats:
    """Per-batch supervision counters, merged onto the report."""

    worker_restarts: int = 0
    retries: int = 0
    stale_frames: int = 0
    restarts_of: dict[int, int] = field(default_factory=dict)
    retries_of: dict[int, int] = field(default_factory=dict)

    def count_restart(self, worker_idx: int) -> None:
        self.worker_restarts += 1
        self.restarts_of[worker_idx] = self.restarts_of.get(worker_idx, 0) + 1

    def count_retry(self, worker_idx: int) -> None:
        self.retries += 1
        self.retries_of[worker_idx] = self.retries_of.get(worker_idx, 0) + 1


def _merge_regions(regions: list) -> BoundingRegion | None:
    if any(region is None for region in regions):
        return None
    merged = BoundingRegion()
    for region in regions:
        merged.cover |= region.cover
        merged.boundary |= region.boundary
        for segment_id, seed in region.seed_of.items():
            merged.seed_of.setdefault(segment_id, seed)
    return merged


def _merge_costs(costs: list[QueryCost]) -> QueryCost:
    merged = QueryCost()
    for cost in costs:
        merged.wall_time_s += cost.wall_time_s
        merged.io = merged.io + cost.io
        merged.simulated_io_ms += cost.simulated_io_ms
        merged.probability_checks += cost.probability_checks
        merged.segments_expanded += cost.segments_expanded
        merged.kernel_probability_evals += cost.kernel_probability_evals
        merged.scalar_probability_evals += cost.scalar_probability_evals
        merged.probability_waves += cost.probability_waves
        merged.max_wave_size = max(merged.max_wave_size, cost.max_wave_size)
        merged.batched_record_reads += cost.batched_record_reads
        merged.prefetched_pages += cost.prefetched_pages
        merged.pool_lock_shards = max(
            merged.pool_lock_shards, cost.pool_lock_shards
        )
    return merged


class ShardedEngine:
    """Spatially sharded, multi-process batch execution engine.

    Args:
        target: the single-process service or engine to shard.  Build it
            **fresh** (indexes built, no queries run) so the shard
            slices' disk geometry matches a from-scratch engine.
        shards: spatial partition arity K.
        workers: worker-process count (default: one per shard); worker
            ``i`` hosts shards ``i, i+workers, ...``.
        delta_t_s: index granularity the shards serve (default: the
            service's).  Requests at any other Δt fall back.
        max_duration_s: longest query duration the halo contract covers;
            longer requests fall back to the local service.
        deadline_ms: per-scatter reply deadline; an attempt that exceeds
            it is retried (``None`` disables deadlines — the gather then
            blocks until the worker answers or dies).
        max_retries: redispatch attempts per scatter after the initial
            one; a sub-batch that exhausts them degrades to the local
            fallback service.
        retry_backoff_s: exponential-backoff base between retries
            (``backoff * 2**(n-1)`` before the nth retry; 0 disables).
        fault_plan: deterministic fault injection for tests (see
            :mod:`repro.serving.faults`).
    """

    def __init__(
        self,
        target: QueryService | ReachabilityEngine,
        shards: int = 4,
        workers: int | None = None,
        delta_t_s: int | None = None,
        max_duration_s: float = DEFAULT_MAX_DURATION_S,
        deadline_ms: float | None = DEFAULT_DEADLINE_MS,
        max_retries: int = DEFAULT_MAX_RETRIES,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        # `_closed` first: a partially constructed engine must survive
        # __del__ -> close() without AttributeError noise at GC time.
        self._closed = False
        self._workers: dict[int, _WorkerHandle] = {}
        self.service = as_service(target)
        self.engine = self.service.engine
        self.delta_t_s = (
            delta_t_s if delta_t_s is not None else self.service.delta_t_s
        )
        self.router = Router()
        self.max_duration_s = max_duration_s
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {deadline_ms}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.deadline_ms = deadline_ms
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.fault_plan = fault_plan
        self._st_index = self.engine.st_index(self.delta_t_s)
        self._v_max = self.engine.database.max_observed_speed_mps()
        self._max_segment_m = max_segment_length_m(self.engine.network)
        self.halo_m = reach_m(
            max_duration_s, self.delta_t_s, self._v_max, self._max_segment_m
        )
        self.plan: PartitionPlan = partition_network(
            self.engine.network,
            shards,
            self.halo_m,
            max_duration_s=max_duration_s,
            v_max_mps=self._v_max,
            weights=self._load_weights(),
        )
        self._locator = SegmentLocator(self.engine.network)
        payloads = [
            export_shard_payload(self.engine, spec, self.delta_t_s)
            for spec in self.plan.shards
        ]
        self.num_workers = min(
            workers if workers is not None else self.plan.num_shards,
            self.plan.num_shards,
        )
        if self.num_workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        validate_plan(fault_plan, self.num_workers)
        self._ctx = multiprocessing.get_context("spawn")
        # The supervisor's respawn substrate: every worker's payload
        # slice is retained for the engine's whole lifetime, so a dead
        # process is replaceable at any point between or during batches.
        self._hosted: dict[int, list] = {
            worker_idx: payloads[worker_idx :: self.num_workers]
            for worker_idx in range(self.num_workers)
        }
        self._worker_of_shard: dict[int, int] = {
            payload.shard_id: worker_idx
            for worker_idx, hosted in self._hosted.items()
            for payload in hosted
        }
        self._next_request_id = 0
        for worker_idx in range(self.num_workers):
            self._workers[worker_idx] = self._spawn_worker(worker_idx, 0)

    def _load_weights(self):
        """Per-CSR-row trajectory-visit volume, the partition's load proxy.

        Query traffic follows data density (queries in the empty
        periphery answer trivially), so balancing shard boundaries by
        time-list bytes instead of segment counts evens out the *work*
        each worker receives.  The +1 floor keeps zero-data rows
        weighted, so the periphery still spreads across shards.
        """
        import numpy as np

        csr = self.engine.network.csr()
        volume = np.ones(csr.n)
        row_of = {int(sid): row for row, sid in enumerate(csr.ids)}
        for (segment_id, _slot), chain in (
            self._st_index.export_directory().items()
        ):
            row = row_of.get(segment_id)
            if row is not None:
                volume[row] += sum(pointer.length for pointer in chain)
        return volume

    # -- supervision -------------------------------------------------------

    def _spawn_worker(self, worker_idx: int, incarnation: int) -> _WorkerHandle:
        """Start one worker process hosting its payload slice."""
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(
                child_conn,
                self._hosted[worker_idx],
                worker_idx,
                incarnation,
                self.fault_plan,
            ),
            daemon=True,
            name=f"reach-shard-worker-{worker_idx}.{incarnation}",
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(worker_idx, process, parent_conn, incarnation)

    def _retire_worker(self, handle: _WorkerHandle) -> None:
        """Tear one worker down without touching engine state."""
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=5)
        if handle.process.is_alive():  # pragma: no cover - unkillable child
            handle.process.kill()
            handle.process.join(timeout=5)

    def _respawn_worker(
        self, worker_idx: int, stats: _FaultStats
    ) -> _WorkerHandle:
        """Replace a dead/untrusted worker with a fresh incarnation."""
        old = self._workers[worker_idx]
        self._retire_worker(old)
        handle = self._spawn_worker(worker_idx, old.incarnation + 1)
        self._workers[worker_idx] = handle
        stats.count_restart(worker_idx)
        return handle

    def _ensure_worker(
        self, worker_idx: int, stats: _FaultStats
    ) -> _WorkerHandle:
        """The liveness check: respawn transparently if the process died."""
        handle = self._workers[worker_idx]
        if not handle.process.is_alive():
            handle = self._respawn_worker(worker_idx, stats)
        return handle

    def _dispatch_attempt(
        self,
        worker_idx: int,
        shard_map: dict[int, list],
        attempt: int,
        warm: bool,
        outstanding: dict[int, _Attempt],
        stats: _FaultStats,
    ) -> None:
        """Send one scatter attempt; opens its deadline window."""
        handle = self._ensure_worker(worker_idx, stats)
        request_id = self._next_request_id
        self._next_request_id += 1
        body = {
            "version": PROTOCOL_VERSION,
            "warm": warm,
            "shards": shard_map,
        }
        try:
            handle.conn.send((MSG_RUN, request_id, body))
        except (BrokenPipeError, OSError):
            # Died between the liveness check and the send; one fresh
            # incarnation gets the frame (a new pipe cannot be broken).
            handle = self._respawn_worker(worker_idx, stats)
            handle.conn.send((MSG_RUN, request_id, body))
        deadline_at = (
            time.monotonic() + self.deadline_ms / 1e3
            if self.deadline_ms is not None
            else None
        )
        outstanding[worker_idx] = _Attempt(
            request_id=request_id,
            shard_map=shard_map,
            attempt=attempt,
            deadline_at=deadline_at,
        )

    # The gather side's single blocking wait.  Everything the supervisor
    # learns about worker health flows through here: readable frames,
    # EOF/OSError death, and (by returning empty-handed) deadline expiry.
    # repro-lint: deadline-wait
    def _poll_workers(
        self, worker_idxs: list[int], timeout_s: float | None
    ) -> list[tuple[int, object, Exception | None]]:
        """Wait for replies with a deadline; never blocks past it.

        Returns ``(worker_idx, frame, failure)`` triples for every
        connection that became ready — ``failure`` is the ``EOFError``/
        ``OSError`` when the pipe is dead, else ``frame`` holds one
        received object.  An empty list means the timeout elapsed.
        """
        conn_of = {id(self._workers[w].conn): w for w in worker_idxs}
        ready = mp_connection.wait(
            [self._workers[w].conn for w in worker_idxs], timeout_s
        )
        events: list[tuple[int, object, Exception | None]] = []
        for conn in ready:
            worker_idx = conn_of[id(conn)]
            try:
                events.append((worker_idx, conn.recv(), None))
            except (EOFError, OSError) as exc:
                events.append((worker_idx, None, exc))
        return events

    def _attempt_failed(
        self,
        worker_idx: int,
        reason: str,
        outstanding: dict[int, _Attempt],
        degraded: list[tuple[int, dict[int, list]]],
        stats: _FaultStats,
        warm: bool,
    ) -> None:
        """Retry (with backoff) or, when retries are exhausted, degrade.

        ``reason`` decides whether the worker process is still trusted:
        ``died``/``corrupt`` respawn before any retry, ``timeout``
        retries the same (possibly just slow) worker and only replaces
        it on exhaustion, ``error`` keeps the worker (it answered
        coherently — the failure was in the request's execution).
        """
        failed = outstanding.pop(worker_idx)
        if reason in ("died", "corrupt"):
            self._respawn_worker(worker_idx, stats)
        if failed.attempt >= self.max_retries:
            if reason == "timeout":
                # A worker that ate the full retry budget without ever
                # answering is wedged; replace it so the *next* batch
                # starts clean (its late frames die with the old pipe).
                self._respawn_worker(worker_idx, stats)
            degraded.append((worker_idx, failed.shard_map))
            return
        stats.count_retry(worker_idx)
        if self.retry_backoff_s > 0:
            time.sleep(self.retry_backoff_s * (2 ** failed.attempt))
        self._dispatch_attempt(
            worker_idx, failed.shard_map, failed.attempt + 1, warm,
            outstanding, stats,
        )

    def _gather(
        self,
        outstanding: dict[int, _Attempt],
        warm: bool,
        stats: _FaultStats,
    ) -> tuple[dict[int, dict], list[tuple[int, dict[int, list]]]]:
        """Collect every attempt's reply, retrying/degrading as needed."""
        replies: dict[int, dict] = {}
        degraded: list[tuple[int, dict[int, list]]] = []
        while outstanding:
            now = time.monotonic()
            deadlines = [
                a.deadline_at
                for a in outstanding.values()
                if a.deadline_at is not None
            ]
            timeout_s = (
                max(0.0, min(deadlines) - now) if deadlines else None
            )
            events = self._poll_workers(sorted(outstanding), timeout_s)
            for worker_idx, frame, failure in events:
                attempt = outstanding.get(worker_idx)
                if attempt is None:  # resolved earlier in this wave
                    continue
                if failure is not None:
                    self._attempt_failed(
                        worker_idx, "died", outstanding, degraded, stats, warm
                    )
                    continue
                try:
                    kind, request_id, body = parse_reply(frame)
                except ProtocolError:
                    self._attempt_failed(
                        worker_idx, "corrupt", outstanding, degraded, stats,
                        warm,
                    )
                    continue
                if request_id != attempt.request_id:
                    # A reply to an attempt whose deadline already fired:
                    # drop it — the retry's answer is the only one merged.
                    stats.stale_frames += 1
                    continue
                if kind == MSG_ERROR:
                    self._attempt_failed(
                        worker_idx, "error", outstanding, degraded, stats,
                        warm,
                    )
                elif kind == MSG_OK:
                    replies.update(body["shards"])
                    outstanding.pop(worker_idx)
            # Deadline sweep: anything still outstanding past its
            # deadline is retried (same worker — a late frame is handled
            # by the request-id discard above) or degraded.
            now = time.monotonic()
            for worker_idx in list(outstanding):
                attempt = outstanding[worker_idx]
                if attempt.deadline_at is not None and now >= attempt.deadline_at:
                    self._attempt_failed(
                        worker_idx, "timeout", outstanding, degraded, stats,
                        warm,
                    )
        return replies, degraded

    def _run_degraded(self, entries: list, warm: bool) -> dict:
        """Execute one shard's sub-batch on the local fallback service.

        Returns a reply body shaped exactly like a worker's, so the
        merge path and the accounting are shared: the ``io`` window is
        measured on the parent engine and sums into ``report.io`` like
        any other shard window.
        """
        from repro.api.client import ReachabilityClient

        with ReachabilityClient(self.service) as client:
            local = client.run_batch(
                [request for _, _, request in entries],
                warm=warm,
                max_workers=1,
            )
        results = [
            (seq, part_idx, pack_result(result))
            for (seq, part_idx, _), result in zip(entries, local.results)
        ]
        return {
            "results": results,
            "io": local.io,
            "simulated_io_ms": local.simulated_io_ms,
            "wall_time_s": local.wall_time_s,
            "worker_wall_s": 0.0,
            "regions_computed": local.regions_computed,
            "regions_reused": local.regions_reused,
            "degraded": len(entries),
        }

    # -- routing -----------------------------------------------------------

    def _resolve_delta_t(self, request: Request) -> int:
        options_dt = request.options.delta_t_s
        return options_dt if options_dt is not None else self.service.delta_t_s

    def _in_contract(self, request: Request) -> bool:
        if self._resolve_delta_t(request) != self.delta_t_s:
            return False
        bound = reach_m(
            request.query.duration_s,
            self.delta_t_s,
            self._v_max,
            self._max_segment_m,
        )
        return bound <= self.halo_m

    def plan_dispatch(self, requests: list[Request]) -> DispatchPlan:
        """Split a batch into per-shard sub-requests plus fallbacks."""
        dispatch = DispatchPlan(
            per_shard={spec.shard_id: [] for spec in self.plan.shards}
        )
        # One vectorized in-memory pass resolves every location's start
        # segment (no I/O, so nothing is double-charged); the worker
        # re-resolves the same deterministic segment when it executes.
        spans: list[tuple[int, int] | None] = []
        locations: list = []
        for request in requests:
            if not self._in_contract(request):
                spans.append(None)
                continue
            query = request.query
            locs = (
                query.locations
                if isinstance(query, MQuery)
                else (query.location,)
            )
            spans.append((len(locations), len(locs)))
            locations.extend(locs)
        starts = self._locator.locate(locations) if locations else []
        owner_flat = [self.plan.owner_of[int(sid)] for sid in starts]
        for seq, (request, span) in enumerate(zip(requests, spans)):
            if span is None:
                dispatch.fallback.append((seq, request))
                continue
            first, count = span
            owners = owner_flat[first : first + count]
            query = request.query
            if isinstance(query, MQuery):
                if len(set(owners)) > 1:
                    dispatch.decomposed[seq] = request
                    dispatch.decomposed_starts[seq] = tuple(
                        int(sid) for sid in starts[first : first + count]
                    )
                    groups: dict[int, list] = {}
                    for owner, location in zip(owners, query.locations):
                        groups.setdefault(owner, []).append(location)
                    for part_idx, (owner, locations) in enumerate(
                        groups.items()
                    ):
                        part = MQuery(
                            locations=tuple(locations),
                            start_time_s=query.start_time_s,
                            duration_s=query.duration_s,
                            prob=query.prob,
                        )
                        dispatch.per_shard[owner].append(
                            (seq, part_idx, Request(part, request.options))
                        )
                    continue
            owner = owners[0]
            dispatch.per_shard[owner].append((seq, 0, request))
        return dispatch

    # -- execution ---------------------------------------------------------

    def run_batch(
        self, requests, warm: bool = False
    ) -> BatchReport:
        """Scatter a batch across the shard workers and merge the replies.

        Args:
            requests: :class:`Request` envelopes or bare queries.
            warm: keep the workers' (and the fallback service's) buffer
                pools from previous batches.

        Returns:
            A :class:`BatchReport` whose ``results``/``plans``/``routes``
            are in submission order and whose ``io`` equals the sum of
            the per-shard windows (``shard_reports``) plus any
            dispatcher-local fallback window — degraded sub-batches
            included, since they execute *as* fallback windows.

        Raises:
            ShardedEngineClosedError: the engine was already closed.
        """
        if self._closed:
            raise ShardedEngineClosedError(
                "ShardedEngine is closed; build a new one to keep serving"
            )
        requests = [
            r if isinstance(r, Request) else Request(query=r) for r in requests
        ]
        report = BatchReport()
        report.deadline_ms = self.deadline_ms
        if not requests:
            return report
        started = time.perf_counter()
        dispatch = self.plan_dispatch(requests)

        # Scatter: one attempt per worker carrying all its shards'
        # parts, each with a deadline and a fresh request id.
        stats = _FaultStats()
        jobs: dict[int, dict[int, list]] = {}
        for shard_id, entries in dispatch.per_shard.items():
            if entries:
                worker_idx = self._worker_of_shard[shard_id]
                jobs.setdefault(worker_idx, {})[shard_id] = entries
        outstanding: dict[int, _Attempt] = {}
        for worker_idx in sorted(jobs):
            self._dispatch_attempt(
                worker_idx, jobs[worker_idx], 0, warm, outstanding, stats
            )

        # Plans and routing decisions are dispatcher-side bookkeeping
        # (identical to what BatchStream records), deduplicated per
        # shape and done after the scatter so the workers crunch while
        # the parent annotates.
        plan_cache: dict[QueryPlan, QueryPlan] = {}
        for request in requests:
            dt = self._resolve_delta_t(request)
            decision = self.router.route(request, dt)
            plan = plan_query(
                decision.kind, request.query, decision.algorithm, dt, warm=True
            )
            cached = plan_cache.get(plan)
            if cached is not None:
                report.plans_reused += 1
                plan = cached
            else:
                plan_cache[plan] = plan
            report.plans.append(plan)
            report.routes.append(decision)

        # Fallbacks run locally while the workers crunch.
        fallback_report = None
        if dispatch.fallback:
            from repro.api.client import ReachabilityClient

            with ReachabilityClient(self.service) as client:
                fallback_report = client.run_batch(
                    [request for _, request in dispatch.fallback],
                    warm=warm,
                    max_workers=1,
                )

        # Gather under supervision: deadlines, retries, respawns.
        replies, degraded_jobs = self._gather(outstanding, warm, stats)

        # Graceful degradation: sub-batches that exhausted their retries
        # re-execute on the local fallback service, so the batch still
        # completes with full results and exact accounting.
        for _worker_idx, shard_map in degraded_jobs:
            for shard_id in sorted(shard_map):
                replies[shard_id] = self._run_degraded(
                    shard_map[shard_id], warm
                )

        # Merge.
        parts: dict[int, list[tuple[int, QueryResult]]] = {}
        for body in replies.values():
            for seq, part_idx, packed in body["results"]:
                parts.setdefault(seq, []).append(
                    (part_idx, unpack_result(packed))
                )
        results_by_seq: dict[int, QueryResult] = {}
        if fallback_report is not None:
            for (seq, _), result in zip(
                dispatch.fallback, fallback_report.results
            ):
                results_by_seq[seq] = result
        for seq, pieces in parts.items():
            pieces.sort(key=lambda item: item[0])
            results = [result for _, result in pieces]
            if seq in dispatch.decomposed:
                results_by_seq[seq] = self._merge_decomposed(
                    dispatch.decomposed_starts[seq], results
                )
            else:
                results_by_seq[seq] = results[0]

        report.results = [results_by_seq[seq] for seq in range(len(requests))]
        total_io = DiskStats()
        for shard_id in sorted(replies):
            body = replies[shard_id]
            total_io = total_io + body["io"]
            report.simulated_io_ms += body["simulated_io_ms"]
            report.regions_computed += body["regions_computed"]
            report.regions_reused += body["regions_reused"]
            worker_idx = self._worker_of_shard[shard_id]
            report.shard_reports.append(
                ShardReport(
                    shard_id=shard_id,
                    queries=len(body["results"]),
                    io=body["io"],
                    simulated_io_ms=body["simulated_io_ms"],
                    wall_time_s=body["wall_time_s"],
                    worker_wall_s=body.get("worker_wall_s", 0.0),
                    worker_restarts=stats.restarts_of.get(worker_idx, 0),
                    retries=stats.retries_of.get(worker_idx, 0),
                    degraded_requests=body.get("degraded", 0),
                )
            )
        if fallback_report is not None:
            total_io = total_io + fallback_report.io
            report.simulated_io_ms += fallback_report.simulated_io_ms
            report.regions_computed += fallback_report.regions_computed
            report.regions_reused += fallback_report.regions_reused
        report.io = total_io
        report.worker_restarts = stats.worker_restarts
        report.retries = stats.retries
        report.stale_frames = stats.stale_frames
        report.degraded_requests = sum(
            shard.degraded_requests for shard in report.shard_reports
        )
        report.wall_time_s = time.perf_counter() - started
        return report

    def _merge_decomposed(
        self, starts: tuple[int, ...], results: list[QueryResult]
    ) -> QueryResult:
        """Union the per-shard parts of a decomposed m-query.

        Segments union exactly (multi-seed reachability is a union over
        seeds).  Probabilities max-merge: TBS only *computes* shell
        probabilities, so a segment examined by two parts keeps the
        larger (more-informed) value.  ``start_segments`` dedups the
        routing pass's per-location start segments in query-location
        order, so ordering matches the single-process result (the
        locator resolves the same segment the scalar R-tree path does —
        asserted in ``tests/test_serving.py``).
        """
        merged = QueryResult()
        for result in results:
            merged.segments |= result.segments
            for segment_id, prob in result.probabilities.items():
                if prob > merged.probabilities.get(segment_id, -1.0):
                    merged.probabilities[segment_id] = prob
        merged.start_segments = tuple(dict.fromkeys(starts))
        merged.max_region = _merge_regions([r.max_region for r in results])
        merged.min_region = _merge_regions([r.min_region for r in results])
        merged.cost = _merge_costs([r.cost for r in results])
        return merged

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the worker processes down.

        Idempotent and dead-worker-safe: a worker that already died (or
        whose pipe is gone) is skipped past the handshake and still
        joined/killed, so close never raises on a degraded engine.
        """
        if getattr(self, "_closed", True):
            return
        self._closed = True
        for handle in self._workers.values():
            try:
                handle.conn.send((MSG_SHUTDOWN,))
            except (BrokenPipeError, OSError, ValueError):
                pass  # dead worker or closed pipe: join/kill below
        for handle in self._workers.values():
            try:
                handle.conn.close()
            except OSError:
                pass
        for handle in self._workers.values():
            handle.process.join(timeout=10)
            if handle.process.is_alive():  # pragma: no cover - hung worker
                handle.process.terminate()
                handle.process.join(timeout=5)

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        # Never raise during interpreter shutdown: attributes may be
        # missing (failed __init__) or modules already torn down.
        try:
            if getattr(self, "_closed", True):
                return
            self.close()
        except Exception:
            pass
