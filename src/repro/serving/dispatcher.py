"""Scatter-gather dispatch over shard worker processes.

:class:`ShardedEngine` is the multi-process counterpart of
:meth:`repro.api.ReachabilityClient.run_batch`: it partitions the road
network once (construction), spawns worker processes hosting the shard
slices, and answers each batch by scattering sub-requests to the owning
shards, running any out-of-contract requests locally, and gathering and
merging the replies into one classic
:class:`~repro.core.service.BatchReport`.

Routing: a request belongs to the shard that **owns its start segment**
(resolved through the parent's in-memory ST-Index R-tree — no I/O).  A
cross-shard m-query decomposes into per-shard m-query parts whose union
is, by the union semantics of multi-seed reachability, the same segment
set the single-process engine computes.  A request whose travel bound
exceeds the halo contract (duration too long, or a foreign Δt) falls
back to the dispatcher's own single-process service.

Accounting: every shard worker reports its sub-batch's exact
:class:`~repro.storage.disk.DiskStats` window; ``report.io`` is the sum
of those windows plus the dispatcher-local fallback window, so the
sharded report aggregates **exactly** — per-shard snapshots add up to
what a single-process engine would have charged for the same
sub-batches.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection

from repro.api.envelope import Request
from repro.api.router import Router
from repro.core.engine import ReachabilityEngine
from repro.core.planner import QueryPlan, plan_query
from repro.core.query import BoundingRegion, MQuery, QueryCost, QueryResult
from repro.core.service import (
    BatchReport,
    QueryService,
    ShardReport,
    as_service,
)
from repro.serving.partition import (
    PartitionPlan,
    SegmentLocator,
    export_shard_payload,
    max_segment_length_m,
    partition_network,
    reach_m,
)
from repro.serving.protocol import (
    MSG_ERROR,
    MSG_OK,
    MSG_RUN,
    MSG_SHUTDOWN,
    unpack_result,
)
from repro.serving.worker import shard_worker_main
from repro.storage.disk import DiskStats

#: Default longest query duration the halo contract covers (one hour —
#: generous against the paper's 5..30-minute workloads).
DEFAULT_MAX_DURATION_S = 3600.0


@dataclass
class DispatchPlan:
    """How one batch splits across shards.

    Attributes:
        per_shard: ``shard_id -> [(seq, part_idx, Request), ...]`` — the
            sub-requests each shard executes, in submission order.
        fallback: ``[(seq, Request), ...]`` answered dispatcher-locally
            (out-of-contract duration or foreign Δt).
        decomposed: ``seq -> Request`` for cross-shard m-queries whose
            per-shard parts need merging.
        decomposed_starts: ``seq -> start segment ids`` for decomposed
            m-queries, one per location in query order (the routing
            pass already resolved them; the merge reuses them instead
            of re-querying the R-tree).
    """

    per_shard: dict[int, list[tuple[int, int, Request]]] = field(
        default_factory=dict
    )
    fallback: list[tuple[int, Request]] = field(default_factory=list)
    decomposed: dict[int, Request] = field(default_factory=dict)
    decomposed_starts: dict[int, tuple[int, ...]] = field(
        default_factory=dict
    )

    @property
    def num_sub_requests(self) -> int:
        return sum(len(entries) for entries in self.per_shard.values())


def _merge_regions(regions: list) -> BoundingRegion | None:
    if any(region is None for region in regions):
        return None
    merged = BoundingRegion()
    for region in regions:
        merged.cover |= region.cover
        merged.boundary |= region.boundary
        for segment_id, seed in region.seed_of.items():
            merged.seed_of.setdefault(segment_id, seed)
    return merged


def _merge_costs(costs: list[QueryCost]) -> QueryCost:
    merged = QueryCost()
    for cost in costs:
        merged.wall_time_s += cost.wall_time_s
        merged.io = merged.io + cost.io
        merged.simulated_io_ms += cost.simulated_io_ms
        merged.probability_checks += cost.probability_checks
        merged.segments_expanded += cost.segments_expanded
        merged.kernel_probability_evals += cost.kernel_probability_evals
        merged.scalar_probability_evals += cost.scalar_probability_evals
        merged.probability_waves += cost.probability_waves
        merged.max_wave_size = max(merged.max_wave_size, cost.max_wave_size)
        merged.batched_record_reads += cost.batched_record_reads
        merged.prefetched_pages += cost.prefetched_pages
        merged.pool_lock_shards = max(
            merged.pool_lock_shards, cost.pool_lock_shards
        )
    return merged


class ShardedEngine:
    """Spatially sharded, multi-process batch execution engine.

    Args:
        target: the single-process service or engine to shard.  Build it
            **fresh** (indexes built, no queries run) so the shard
            slices' disk geometry matches a from-scratch engine.
        shards: spatial partition arity K.
        workers: worker-process count (default: one per shard); worker
            ``i`` hosts shards ``i, i+workers, ...``.
        delta_t_s: index granularity the shards serve (default: the
            service's).  Requests at any other Δt fall back.
        max_duration_s: longest query duration the halo contract covers;
            longer requests fall back to the local service.
    """

    def __init__(
        self,
        target: QueryService | ReachabilityEngine,
        shards: int = 4,
        workers: int | None = None,
        delta_t_s: int | None = None,
        max_duration_s: float = DEFAULT_MAX_DURATION_S,
    ) -> None:
        self.service = as_service(target)
        self.engine = self.service.engine
        self.delta_t_s = (
            delta_t_s if delta_t_s is not None else self.service.delta_t_s
        )
        self.router = Router()
        self.max_duration_s = max_duration_s
        self._st_index = self.engine.st_index(self.delta_t_s)
        self._v_max = self.engine.database.max_observed_speed_mps()
        self._max_segment_m = max_segment_length_m(self.engine.network)
        self.halo_m = reach_m(
            max_duration_s, self.delta_t_s, self._v_max, self._max_segment_m
        )
        self.plan: PartitionPlan = partition_network(
            self.engine.network,
            shards,
            self.halo_m,
            max_duration_s=max_duration_s,
            v_max_mps=self._v_max,
            weights=self._load_weights(),
        )
        self._locator = SegmentLocator(self.engine.network)
        payloads = [
            export_shard_payload(self.engine, spec, self.delta_t_s)
            for spec in self.plan.shards
        ]
        self.num_workers = min(
            workers if workers is not None else self.plan.num_shards,
            self.plan.num_shards,
        )
        if self.num_workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        ctx = multiprocessing.get_context("spawn")
        self._processes: list = []
        self._conns: list = []
        self._conn_of_shard: dict[int, object] = {}
        self._closed = False
        for worker_idx in range(self.num_workers):
            hosted = payloads[worker_idx :: self.num_workers]
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=shard_worker_main,
                args=(child_conn, hosted),
                daemon=True,
                name=f"reach-shard-worker-{worker_idx}",
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._conns.append(parent_conn)
            for payload in hosted:
                self._conn_of_shard[payload.shard_id] = parent_conn

    def _load_weights(self):
        """Per-CSR-row trajectory-visit volume, the partition's load proxy.

        Query traffic follows data density (queries in the empty
        periphery answer trivially), so balancing shard boundaries by
        time-list bytes instead of segment counts evens out the *work*
        each worker receives.  The +1 floor keeps zero-data rows
        weighted, so the periphery still spreads across shards.
        """
        import numpy as np

        csr = self.engine.network.csr()
        volume = np.ones(csr.n)
        row_of = {int(sid): row for row, sid in enumerate(csr.ids)}
        for (segment_id, _slot), chain in (
            self._st_index.export_directory().items()
        ):
            row = row_of.get(segment_id)
            if row is not None:
                volume[row] += sum(pointer.length for pointer in chain)
        return volume

    # -- routing -----------------------------------------------------------

    def _resolve_delta_t(self, request: Request) -> int:
        options_dt = request.options.delta_t_s
        return options_dt if options_dt is not None else self.service.delta_t_s

    def _in_contract(self, request: Request) -> bool:
        if self._resolve_delta_t(request) != self.delta_t_s:
            return False
        bound = reach_m(
            request.query.duration_s,
            self.delta_t_s,
            self._v_max,
            self._max_segment_m,
        )
        return bound <= self.halo_m

    def plan_dispatch(self, requests: list[Request]) -> DispatchPlan:
        """Split a batch into per-shard sub-requests plus fallbacks."""
        dispatch = DispatchPlan(
            per_shard={spec.shard_id: [] for spec in self.plan.shards}
        )
        # One vectorized in-memory pass resolves every location's start
        # segment (no I/O, so nothing is double-charged); the worker
        # re-resolves the same deterministic segment when it executes.
        spans: list[tuple[int, int] | None] = []
        locations: list = []
        for request in requests:
            if not self._in_contract(request):
                spans.append(None)
                continue
            query = request.query
            locs = (
                query.locations
                if isinstance(query, MQuery)
                else (query.location,)
            )
            spans.append((len(locations), len(locs)))
            locations.extend(locs)
        starts = self._locator.locate(locations) if locations else []
        owner_flat = [self.plan.owner_of[int(sid)] for sid in starts]
        for seq, (request, span) in enumerate(zip(requests, spans)):
            if span is None:
                dispatch.fallback.append((seq, request))
                continue
            first, count = span
            owners = owner_flat[first : first + count]
            query = request.query
            if isinstance(query, MQuery):
                if len(set(owners)) > 1:
                    dispatch.decomposed[seq] = request
                    dispatch.decomposed_starts[seq] = tuple(
                        int(sid) for sid in starts[first : first + count]
                    )
                    groups: dict[int, list] = {}
                    for owner, location in zip(owners, query.locations):
                        groups.setdefault(owner, []).append(location)
                    for part_idx, (owner, locations) in enumerate(
                        groups.items()
                    ):
                        part = MQuery(
                            locations=tuple(locations),
                            start_time_s=query.start_time_s,
                            duration_s=query.duration_s,
                            prob=query.prob,
                        )
                        dispatch.per_shard[owner].append(
                            (seq, part_idx, Request(part, request.options))
                        )
                    continue
            owner = owners[0]
            dispatch.per_shard[owner].append((seq, 0, request))
        return dispatch

    # -- execution ---------------------------------------------------------

    def run_batch(
        self, requests, warm: bool = False
    ) -> BatchReport:
        """Scatter a batch across the shard workers and merge the replies.

        Args:
            requests: :class:`Request` envelopes or bare queries.
            warm: keep the workers' (and the fallback service's) buffer
                pools from previous batches.

        Returns:
            A :class:`BatchReport` whose ``results``/``plans``/``routes``
            are in submission order and whose ``io`` equals the sum of
            the per-shard windows (``shard_reports``) plus any
            dispatcher-local fallback window.
        """
        if self._closed:
            raise RuntimeError("ShardedEngine is closed")
        requests = [
            r if isinstance(r, Request) else Request(query=r) for r in requests
        ]
        report = BatchReport()
        if not requests:
            return report
        started = time.perf_counter()
        dispatch = self.plan_dispatch(requests)

        # Scatter: one message per worker carrying all its shards' parts.
        by_conn: dict = {}
        for shard_id, entries in dispatch.per_shard.items():
            if entries:
                conn = self._conn_of_shard[shard_id]
                by_conn.setdefault(id(conn), (conn, {}))[1][shard_id] = entries
        for conn, shard_map in by_conn.values():
            try:
                conn.send((MSG_RUN, {"warm": warm, "shards": shard_map}))
            except (BrokenPipeError, OSError) as exc:
                raise RuntimeError(
                    "shard worker died before batch dispatch; workers do "
                    "not restart mid-session — rebuild the ShardedEngine"
                ) from exc

        # Plans and routing decisions are dispatcher-side bookkeeping
        # (identical to what BatchStream records), deduplicated per
        # shape and done after the scatter so the workers crunch while
        # the parent annotates.
        plan_cache: dict[QueryPlan, QueryPlan] = {}
        for request in requests:
            dt = self._resolve_delta_t(request)
            decision = self.router.route(request, dt)
            plan = plan_query(
                decision.kind, request.query, decision.algorithm, dt, warm=True
            )
            cached = plan_cache.get(plan)
            if cached is not None:
                report.plans_reused += 1
                plan = cached
            else:
                plan_cache[plan] = plan
            report.plans.append(plan)
            report.routes.append(decision)

        # Fallbacks run locally while the workers crunch.
        fallback_report = None
        if dispatch.fallback:
            from repro.api.client import ReachabilityClient

            with ReachabilityClient(self.service) as client:
                fallback_report = client.run_batch(
                    [request for _, request in dispatch.fallback],
                    warm=warm,
                    max_workers=1,
                )

        # Gather.
        replies: dict[int, dict] = {}
        waiting = {key: conn for key, (conn, _) in by_conn.items()}
        while waiting:
            ready = mp_connection.wait(list(waiting.values()))
            for conn in ready:
                try:
                    kind, body = conn.recv()
                except EOFError:
                    raise RuntimeError(
                        "shard worker exited before replying"
                    ) from None
                except (ValueError, TypeError) as exc:
                    raise RuntimeError(
                        f"malformed reply frame from shard worker: {exc}"
                    ) from exc
                if kind == MSG_ERROR:
                    raise RuntimeError(f"shard worker failed:\n{body}")
                if kind != MSG_OK:
                    raise RuntimeError(
                        f"unexpected reply kind {kind!r} from shard worker"
                    )
                replies.update(body)
                waiting.pop(id(conn))

        # Merge.
        parts: dict[int, list[tuple[int, QueryResult]]] = {}
        for body in replies.values():
            for seq, part_idx, packed in body["results"]:
                parts.setdefault(seq, []).append(
                    (part_idx, unpack_result(packed))
                )
        results_by_seq: dict[int, QueryResult] = {}
        if fallback_report is not None:
            for (seq, _), result in zip(
                dispatch.fallback, fallback_report.results
            ):
                results_by_seq[seq] = result
        for seq, pieces in parts.items():
            pieces.sort(key=lambda item: item[0])
            results = [result for _, result in pieces]
            if seq in dispatch.decomposed:
                results_by_seq[seq] = self._merge_decomposed(
                    dispatch.decomposed_starts[seq], results
                )
            else:
                results_by_seq[seq] = results[0]

        report.results = [results_by_seq[seq] for seq in range(len(requests))]
        total_io = DiskStats()
        for shard_id in sorted(replies):
            body = replies[shard_id]
            total_io = total_io + body["io"]
            report.simulated_io_ms += body["simulated_io_ms"]
            report.regions_computed += body["regions_computed"]
            report.regions_reused += body["regions_reused"]
            report.shard_reports.append(
                ShardReport(
                    shard_id=shard_id,
                    queries=len(body["results"]),
                    io=body["io"],
                    simulated_io_ms=body["simulated_io_ms"],
                    wall_time_s=body["wall_time_s"],
                    worker_wall_s=body.get("worker_wall_s", 0.0),
                )
            )
        if fallback_report is not None:
            total_io = total_io + fallback_report.io
            report.simulated_io_ms += fallback_report.simulated_io_ms
            report.regions_computed += fallback_report.regions_computed
            report.regions_reused += fallback_report.regions_reused
        report.io = total_io
        report.wall_time_s = time.perf_counter() - started
        return report

    def _merge_decomposed(
        self, starts: tuple[int, ...], results: list[QueryResult]
    ) -> QueryResult:
        """Union the per-shard parts of a decomposed m-query.

        Segments union exactly (multi-seed reachability is a union over
        seeds).  Probabilities max-merge: TBS only *computes* shell
        probabilities, so a segment examined by two parts keeps the
        larger (more-informed) value.  ``start_segments`` dedups the
        routing pass's per-location start segments in query-location
        order, so ordering matches the single-process result (the
        locator resolves the same segment the scalar R-tree path does —
        asserted in ``tests/test_serving.py``).
        """
        merged = QueryResult()
        for result in results:
            merged.segments |= result.segments
            for segment_id, prob in result.probabilities.items():
                if prob > merged.probabilities.get(segment_id, -1.0):
                    merged.probabilities[segment_id] = prob
        merged.start_segments = tuple(dict.fromkeys(starts))
        merged.max_region = _merge_regions([r.max_region for r in results])
        merged.min_region = _merge_regions([r.min_region for r in results])
        merged.cost = _merge_costs([r.cost for r in results])
        return merged

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send((MSG_SHUTDOWN,))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5)

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
