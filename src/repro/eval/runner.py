"""Parameter sweeps regenerating every figure of Chapter 4.

Each ``run_*`` function executes one figure's sweep and returns a list of
:class:`SweepPoint` rows carrying both evaluation metrics (running time,
reachable road length) for each algorithm at each x-axis value.  The
benchmark modules print these rows as the paper-style series and feed
representative queries to pytest-benchmark.

All sweeps go through the :class:`~repro.api.ReachabilityClient`
request/response path; each function accepts a client, a service or a
bare engine (adapted on the fly), and every sweep point is measured with
cold buffer pools *and* fresh bounding regions
(``reuse_regions=False``), matching the paper's per-query running-time
protocol — the service-lifetime region cache would otherwise hide the
Con-Index expansion cost of repeated same-shape sweep points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.client import ReachabilityClient, as_client
from repro.api.envelope import QueryOptions, Request
from repro.core.engine import ReachabilityEngine
from repro.core.query import MQuery, SQuery
from repro.core.service import BatchReport, QueryService
from repro.eval.metrics import region_road_length_km
from repro.spatial.geometry import Point


@dataclass
class SweepPoint:
    """One (x, algorithm) cell of a figure.

    Attributes:
        x: the x-axis value (minutes, probability, seconds-of-day, count).
        algorithm: which algorithm produced the numbers.
        running_time_ms: the headline running-time metric (wall + simulated
            I/O), cf. §4.1.
        wall_ms / io_ms: its components.
        road_length_km: total length of the Prob-reachable result.
        region_segments: result size in segments.
        probability_checks: trajectory verifications performed.
        label: extra curve discriminator (e.g. "Δt=5min" or "L=10min").
    """

    x: float
    algorithm: str
    running_time_ms: float
    wall_ms: float
    io_ms: float
    road_length_km: float
    region_segments: int
    probability_checks: int
    label: str = ""


def _measure(
    target: ReachabilityClient | QueryService | ReachabilityEngine,
    query: SQuery | MQuery,
    algorithm: str,
    delta_t_s: int,
    x: float,
    label: str = "",
) -> SweepPoint:
    client = as_client(target)
    response = client.send(
        Request(
            query,
            QueryOptions(
                algorithm=algorithm, delta_t_s=delta_t_s,
                # The paper's protocol: every point pays its own
                # bounding-region expansion.
                reuse_regions=False,
            ),
        )
    )
    result = response.result
    return SweepPoint(
        x=x,
        algorithm=algorithm,
        running_time_ms=result.cost.total_cost_ms,
        wall_ms=result.cost.wall_time_s * 1e3,
        io_ms=result.cost.simulated_io_ms,
        road_length_km=region_road_length_km(result, client.network),
        region_segments=len(result.segments),
        probability_checks=result.cost.probability_checks,
        label=label,
    )


_measure_s = _measure
_measure_m = _measure


def run_workload_batch(
    engine: ReachabilityClient | ReachabilityEngine | QueryService,
    queries,
    algorithm: str | None = None,
    delta_t_s: int = 300,
    max_workers: int = 1,
    repeats: int = 1,
    backend: str | None = None,
) -> BatchReport:
    """Run a query workload as one streamed batch (throughput protocol).

    Unlike the figure sweeps — which pay cold I/O per query, matching the
    paper's per-query measurements — a batch shares warm buffer pools and
    deduplicated bounding regions across the whole workload, which is the
    deployment-facing number.

    Pass a client or :class:`QueryService` (rather than a bare engine) to
    keep the service-lifetime region cache across calls; with
    ``repeats > 1`` the workload is run that many times against one
    service and the *last* report is returned — the steady-state number,
    where every bounding region is served from the cross-batch cache.

    The workload may mix plain queries and :class:`repro.api.Request`
    envelopes (per-request direction/algorithm); ``algorithm`` overrides
    the route for plain queries only.  ``backend`` selects the batch
    execution backend per :meth:`repro.api.ReachabilityClient.run_batch`
    (``"sharded"`` scatters across the client's shard workers).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    client = as_client(engine)
    requests = [
        query
        if isinstance(query, Request)
        else Request(
            query,
            QueryOptions(
                algorithm=algorithm if algorithm is not None else "auto",
                delta_t_s=delta_t_s,
            ),
        )
        for query in queries
    ]
    report = None
    for _ in range(repeats):
        report = client.run_batch(
            requests, max_workers=max_workers, backend=backend
        )
    return report


def run_duration_sweep(
    engine: ReachabilityClient | ReachabilityEngine | QueryService,
    location: Point,
    durations_s: tuple[int, ...],
    start_time_s: float,
    prob: float,
    delta_ts: tuple[int, ...] = (300, 600),
    include_es: bool = True,
) -> list[SweepPoint]:
    """Fig 4.1: running time and road length as duration L grows."""
    points: list[SweepPoint] = []
    for duration_s in durations_s:
        minutes = duration_s / 60.0
        for delta_t in delta_ts:
            query = SQuery(location, start_time_s, duration_s, prob)
            points.append(
                _measure_s(
                    engine, query, "sqmb_tbs", delta_t, minutes,
                    label=f"Δt={delta_t // 60}min",
                )
            )
        if include_es:
            query = SQuery(location, start_time_s, duration_s, prob)
            points.append(
                _measure_s(engine, query, "es", delta_ts[0], minutes, label="ES")
            )
    return points


def run_probability_sweep(
    engine: ReachabilityClient | ReachabilityEngine | QueryService,
    location: Point,
    probabilities: tuple[float, ...],
    start_time_s: float,
    durations_s: tuple[int, ...] = (600, 900),
    delta_t_s: int = 300,
    include_es: bool = True,
) -> list[SweepPoint]:
    """Fig 4.3: effect of the query probability Prob."""
    points: list[SweepPoint] = []
    for prob in probabilities:
        for duration_s in durations_s:
            query = SQuery(location, start_time_s, duration_s, prob)
            points.append(
                _measure_s(
                    engine, query, "sqmb_tbs", delta_t_s, prob * 100,
                    label=f"L={duration_s // 60}min",
                )
            )
        if include_es:
            query = SQuery(location, start_time_s, durations_s[0], prob)
            points.append(
                _measure_s(engine, query, "es", delta_t_s, prob * 100, label="ES")
            )
    return points


def run_start_time_sweep(
    engine: ReachabilityClient | ReachabilityEngine | QueryService,
    location: Point,
    start_times_s: tuple[int, ...],
    durations_s: tuple[int, ...] = (300, 600),
    prob: float = 0.8,
    delta_t_s: int = 300,
) -> list[SweepPoint]:
    """Fig 4.5: effect of the start time T over the day (rush-hour dips)."""
    points: list[SweepPoint] = []
    for start_time_s in start_times_s:
        for duration_s in durations_s:
            query = SQuery(location, start_time_s, duration_s, prob)
            points.append(
                _measure_s(
                    engine, query, "sqmb_tbs", delta_t_s, start_time_s,
                    label=f"L={duration_s // 60}min",
                )
            )
    return points


def run_interval_sweep(
    engine: ReachabilityClient | ReachabilityEngine | QueryService,
    location: Point,
    intervals_s: tuple[int, ...],
    start_time_s: float,
    durations_s: tuple[int, ...] = (300, 600),
    prob: float = 0.2,
    include_es: bool = True,
) -> list[SweepPoint]:
    """Fig 4.7: effect of the index granularity Δt."""
    points: list[SweepPoint] = []
    for delta_t_s in intervals_s:
        minutes = delta_t_s / 60.0
        for duration_s in durations_s:
            query = SQuery(location, start_time_s, duration_s, prob)
            points.append(
                _measure_s(
                    engine, query, "sqmb_tbs", delta_t_s, minutes,
                    label=f"L={duration_s // 60}min",
                )
            )
        if include_es:
            query = SQuery(location, start_time_s, durations_s[0], prob)
            points.append(
                _measure_s(engine, query, "es", delta_t_s, minutes, label="ES")
            )
    return points


def run_mquery_duration_sweep(
    engine: ReachabilityClient | ReachabilityEngine | QueryService,
    locations: tuple[Point, ...],
    durations_s: tuple[int, ...],
    start_time_s: float,
    prob: float = 0.2,
    delta_t_s: int = 300,
) -> list[SweepPoint]:
    """Fig 4.8(a): m-query vs repeated s-query over duration."""
    points: list[SweepPoint] = []
    for duration_s in durations_s:
        minutes = duration_s / 60.0
        query = MQuery(locations, start_time_s, duration_s, prob)
        points.append(
            _measure_m(engine, query, "mqmb_tbs", delta_t_s, minutes, "m-query")
        )
        points.append(
            _measure_m(
                engine, query, "sqmb_tbs_each", delta_t_s, minutes, "s-query"
            )
        )
    return points


def run_location_count_sweep(
    engine: ReachabilityClient | ReachabilityEngine | QueryService,
    locations: tuple[Point, ...],
    counts: tuple[int, ...],
    start_time_s: float,
    duration_s: int = 1200,
    prob: float = 0.2,
    delta_t_s: int = 300,
) -> list[SweepPoint]:
    """Fig 4.8(b): m-query vs repeated s-query over #locations."""
    points: list[SweepPoint] = []
    for count in counts:
        subset = tuple(locations[:count])
        query = MQuery(subset, start_time_s, duration_s, prob)
        points.append(
            _measure_m(engine, query, "mqmb_tbs", delta_t_s, count, "m-query")
        )
        points.append(
            _measure_m(
                engine, query, "sqmb_tbs_each", delta_t_s, count, "s-query"
            )
        )
    return points
