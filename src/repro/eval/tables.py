"""ASCII table and series formatting for benchmark output.

The benchmark suite prints the paper's tables and figure series as text so
``pytest benchmarks/ --benchmark-only -s`` regenerates the evaluation
chapter on a terminal.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.eval.runner import SweepPoint


def format_table(
    title: str, rows: Sequence[tuple[str, str]], width: int = 64
) -> str:
    """A two-column key/value table (Tables 4.1 / 4.2 style)."""
    lines = [f"== {title} ==".center(width)]
    key_width = max((len(key) for key, _ in rows), default=0)
    for key, value in rows:
        lines.append(f"  {key.ljust(key_width)}  {value}")
    return "\n".join(lines)


def _series_key(point: SweepPoint) -> str:
    if point.label and point.label != point.algorithm:
        if point.algorithm in point.label or point.label in ("ES", "m-query", "s-query"):
            return point.label
        return f"{point.algorithm} {point.label}"
    return point.algorithm


def format_series(
    title: str,
    points: Sequence[SweepPoint],
    metric: str = "running_time_ms",
    x_name: str = "x",
    x_format: str = "{:g}",
    value_format: str = "{:.1f}",
) -> str:
    """A figure as a text matrix: one row per x value, one column per curve.

    Args:
        title: figure caption.
        points: sweep output.
        metric: attribute of :class:`SweepPoint` to tabulate.
        x_name: x-axis label.
        x_format / value_format: cell formatting.
    """
    curves: dict[str, dict[float, float]] = defaultdict(dict)
    xs: list[float] = []
    for point in points:
        key = _series_key(point)
        if point.x not in xs:
            xs.append(point.x)
        curves[key][point.x] = getattr(point, metric)
    names = list(curves)
    col_width = max([len(n) for n in names] + [10])
    header = x_name.ljust(10) + "".join(name.rjust(col_width + 2) for name in names)
    lines = [f"-- {title} --", header]
    for x in xs:
        cells = []
        for name in names:
            value = curves[name].get(x)
            cells.append(
                (value_format.format(value) if value is not None else "-").rjust(
                    col_width + 2
                )
            )
        lines.append(x_format.format(x).ljust(10) + "".join(cells))
    return "\n".join(lines)


def format_cache_effectiveness(title: str, stats) -> str:
    """Buffer-pool cache effectiveness as a key/value table.

    Args:
        title: table caption.
        stats: a :class:`~repro.storage.disk.DiskStats` (typically a
            before/after difference, e.g. ``BatchReport.io``) carrying the
            pool hit/miss/eviction counters.
    """
    return format_table(
        title,
        [
            ("page reads (disk)", f"{stats.page_reads:,}"),
            ("pool hits", f"{stats.pool_hits:,}"),
            ("pool misses", f"{stats.pool_misses:,}"),
            ("pool evictions", f"{stats.pool_evictions:,}"),
            ("hit rate", f"{stats.pool_hit_rate * 100:.1f}%"),
        ],
    )


def format_batch_report(title: str, report) -> str:
    """A :class:`~repro.core.service.BatchReport` as a key/value table."""
    return format_table(title, report.as_rows())


def format_savings(
    title: str,
    points: Sequence[SweepPoint],
    ours: str,
    baseline: str,
    x_name: str = "x",
) -> str:
    """Percentage running-time savings of curve ``ours`` over ``baseline``."""
    by_x: dict[float, dict[str, float]] = defaultdict(dict)
    for point in points:
        by_x[point.x][_series_key(point)] = point.running_time_ms
    lines = [f"-- {title} --", f"{x_name:<10}{'saving':>10}"]
    for x in by_x:
        row = by_x[x]
        if ours in row and baseline in row and row[baseline] > 0:
            saving = 100.0 * (1.0 - row[ours] / row[baseline])
            lines.append(f"{x:<10g}{saving:>9.0f}%")
    return "\n".join(lines)
