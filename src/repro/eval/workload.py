"""Query workload generation.

Parameterised query batches for throughput-style measurements: random
locations (biased downtown, where queries make sense), random start times,
and the Table 4.2 parameter grids.  Deterministic given the seed.

The batches are plain query lists, shaped for
:meth:`repro.core.service.QueryService.run_batch` — the service dedups the
bounding regions the batch's queries share and keeps buffer pools warm
across it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.query import MQuery, SQuery
from repro.network.model import RoadNetwork
from repro.spatial.geometry import Point
from repro.trajectory.model import SECONDS_PER_DAY


def fig48_m_query_batch(
    locations: Sequence[Point],
    durations_s: Sequence[int],
    start_time_s: float,
    prob: float = 0.2,
) -> list[MQuery]:
    """The Fig 4.8(a) m-query workload as one flat service batch.

    One m-query over the same location set per duration — the batch whose
    queries share every bounding-region prefix, which is what
    ``QueryService.run_batch`` deduplicates.
    """
    return [
        MQuery(
            locations=tuple(locations),
            start_time_s=start_time_s,
            duration_s=duration_s,
            prob=prob,
        )
        for duration_s in durations_s
    ]


@dataclass
class QueryWorkload:
    """Random-but-reproducible query batches over a road network.

    Args:
        network: road network supplying the spatial extent.
        seed: RNG seed.
        center_fraction: fraction of the city half-width within which query
            locations are drawn (queries in the far periphery hit empty
            data and answer trivially).
    """

    network: RoadNetwork
    seed: int = 7
    center_fraction: float = 0.5

    def _rng(self, salt: str) -> random.Random:
        return random.Random(f"{self.seed}:{salt}")

    def random_location(self, rng: random.Random) -> Point:
        bounds = self.network.bounds()
        half_w = bounds.width / 2.0 * self.center_fraction
        half_h = bounds.height / 2.0 * self.center_fraction
        center = bounds.center
        return Point(
            center.x + rng.uniform(-half_w, half_w),
            center.y + rng.uniform(-half_h, half_h),
        )

    def s_queries(
        self,
        count: int,
        duration_s: float = 600.0,
        prob: float = 0.2,
        start_time_s: float | None = None,
        salt: str = "s",
    ) -> list[SQuery]:
        """A batch of s-queries at random downtown locations.

        Args:
            salt: RNG stream discriminator — callers drawing several
                independent traffic shares (e.g. forward and reverse
                queries) pass distinct salts so the shares do not
                duplicate each other query for query.
        """
        rng = self._rng(salt)
        queries = []
        for _ in range(count):
            start = (
                start_time_s
                if start_time_s is not None
                else rng.uniform(0, SECONDS_PER_DAY - duration_s - 1)
            )
            queries.append(
                SQuery(
                    location=self.random_location(rng),
                    start_time_s=start,
                    duration_s=duration_s,
                    prob=prob,
                )
            )
        return queries

    def m_queries(
        self,
        count: int,
        locations_per_query: int = 3,
        duration_s: float = 1200.0,
        prob: float = 0.2,
        start_time_s: float | None = None,
    ) -> list[MQuery]:
        """A batch of m-queries, each with several downtown locations."""
        rng = self._rng("m")
        queries = []
        for _ in range(count):
            start = (
                start_time_s
                if start_time_s is not None
                else rng.uniform(0, SECONDS_PER_DAY - duration_s - 1)
            )
            queries.append(
                MQuery(
                    locations=tuple(
                        self.random_location(rng)
                        for _ in range(locations_per_query)
                    ),
                    start_time_s=start,
                    duration_s=duration_s,
                    prob=prob,
                )
            )
        return queries

    def mixed_batch(
        self,
        s_count: int,
        m_count: int,
        duration_s: float = 600.0,
        prob: float = 0.2,
        start_time_s: float | None = None,
    ) -> list[SQuery | MQuery]:
        """An interleaved s-/m-query batch (multi-user traffic shape)."""
        batch: list[SQuery | MQuery] = []
        batch.extend(
            self.s_queries(s_count, duration_s, prob, start_time_s)
        )
        batch.extend(
            self.m_queries(
                m_count, duration_s=duration_s * 2, prob=prob,
                start_time_s=start_time_s,
            )
        )
        rng = self._rng("mix")
        rng.shuffle(batch)
        return batch
