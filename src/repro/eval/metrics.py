"""Evaluation metrics (§4.1).

Two metrics, exactly as the paper defines them:

* **running time** — how long an algorithm takes to process a query.  In
  this reproduction that is wall-clock time plus the accounted cost of the
  simulated disk reads (``QueryCost.total_cost_ms``), since the simulated
  disk is what stands in for the paper's I/O-bound testbed.
* **total length of covered road segments** — the effectiveness measure:
  the summed length (km) of the Prob-reachable result, deduplicating
  two-way twins.
"""

from __future__ import annotations

from repro.core.query import QueryResult
from repro.network.model import RoadNetwork


def region_road_length_km(result: QueryResult, network: RoadNetwork) -> float:
    """Total result road length in kilometres."""
    return result.road_length_m(network) / 1000.0


def region_area_km2(result: QueryResult, network: RoadNetwork) -> float:
    """Convex-hull area (km^2) of the result region's segment midpoints."""
    from repro.spatial.hull import convex_hull, polygon_area

    points = [network.segment(s).midpoint for s in result.segments]
    if len(points) < 3:
        return 0.0
    return polygon_area(convex_hull(points)) / 1e6


def saving_percent(ours_ms: float, baseline_ms: float) -> float:
    """Percentage running-time reduction of ``ours`` over ``baseline``."""
    if baseline_ms <= 0:
        return 0.0
    return 100.0 * (1.0 - ours_ms / baseline_ms)
