"""Evaluation harness: workloads, sweeps, metrics and table printers.

One module per concern:

* :mod:`~repro.eval.config` — the benchmark configurations of Table 4.2.
* :mod:`~repro.eval.metrics` — running time / road length metrics.
* :mod:`~repro.eval.workload` — query workload generators.
* :mod:`~repro.eval.runner` — parameter sweeps for every figure.
* :mod:`~repro.eval.tables` — ASCII table/series formatting.
"""

from repro.eval.config import (
    BenchmarkSettings,
    DEFAULT_SETTINGS,
    SMALL_SETTINGS,
)
from repro.eval.metrics import region_road_length_km, saving_percent
from repro.eval.runner import (
    SweepPoint,
    run_duration_sweep,
    run_interval_sweep,
    run_location_count_sweep,
    run_mquery_duration_sweep,
    run_probability_sweep,
    run_start_time_sweep,
)
from repro.eval.tables import format_series, format_table
from repro.eval.workload import QueryWorkload

__all__ = [
    "BenchmarkSettings",
    "DEFAULT_SETTINGS",
    "SMALL_SETTINGS",
    "region_road_length_km",
    "saving_percent",
    "SweepPoint",
    "run_duration_sweep",
    "run_probability_sweep",
    "run_start_time_sweep",
    "run_interval_sweep",
    "run_mquery_duration_sweep",
    "run_location_count_sweep",
    "format_table",
    "format_series",
    "QueryWorkload",
]
