"""Benchmark configurations mirroring Table 4.2.

The paper's evaluation grid:

========================  =========================================
duration ``L``            {5, 10, ..., 35} min
probability ``Prob``      {20%, ..., 100%}
start time ``T``          whole day at 5-minute alignment
interval ``Δt``           {1, 5, 10, 20} min
s-query algorithms        ES, SQMB+TBS
m-query algorithms        SQMB+TBS (xN), MQMB+TBS
========================  =========================================

Query locations: the paper queries a fixed downtown location
(22.5311 N, 114.0550 E); our synthetic city centres that location at the
origin of the local metric plane, so the benchmark queries use ``(0, 0)``
and a ring of nearby business locations for m-queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.shenzhen_like import ShenzhenLikeConfig
from repro.spatial.geometry import Point
from repro.trajectory.model import day_time

MINUTE = 60

#: Fig 4.1 / 4.8(a): query durations, in seconds.
DURATIONS_S: tuple[int, ...] = tuple(m * MINUTE for m in (5, 10, 15, 20, 25, 30, 35))

#: Fig 4.3: query probabilities.
PROBABILITIES: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)

#: Fig 4.5: start times over the day (every 2 hours keeps the sweep fast
#: while clearly resolving the two rush-hour dips).
START_TIMES_S: tuple[int, ...] = tuple(day_time(h) for h in range(0, 24, 2))

#: Fig 4.7: index granularities Δt, in seconds.
INTERVALS_S: tuple[int, ...] = (1 * MINUTE, 5 * MINUTE, 10 * MINUTE, 20 * MINUTE)

#: Fig 4.8(b): number of m-query locations.
LOCATION_COUNTS: tuple[int, ...] = (1, 2, 3, 5, 7, 9)

#: The downtown query location (maps to the paper's s = 22.5311, 114.0550).
CENTER_LOCATION = Point(0.0, 0.0)

#: Business locations for m-queries (downtown ring, Fig 4.9's three
#: locations are the first three).
M_QUERY_LOCATIONS: tuple[Point, ...] = (
    Point(0.0, 0.0),
    Point(3000.0, 2000.0),
    Point(-2500.0, 1500.0),
    Point(1500.0, -2800.0),
    Point(-1000.0, -1500.0),
    Point(4000.0, -500.0),
    Point(-3500.0, -2500.0),
    Point(2500.0, 3500.0),
    Point(-4000.0, 3000.0),
)


@dataclass(frozen=True)
class BenchmarkSettings:
    """One benchmark scenario: dataset + default query parameters."""

    dataset: ShenzhenLikeConfig = field(default_factory=ShenzhenLikeConfig)
    location: Point = CENTER_LOCATION
    start_time_s: int = day_time(11)
    duration_s: int = 10 * MINUTE
    prob: float = 0.2
    delta_t_s: int = 5 * MINUTE


#: The full-size scenario used by most figure benchmarks.
DEFAULT_SETTINGS = BenchmarkSettings()

#: A reduced scenario for the expensive sweeps (Δt granularities down to
#: one minute multiply index construction cost).
SMALL_SETTINGS = BenchmarkSettings(
    dataset=ShenzhenLikeConfig(grid_rows=9, grid_cols=9, num_taxis=200),
)
