"""Planar geometry primitives.

The synthetic city lives in a local projected coordinate system measured in
metres; :func:`to_lonlat` / :func:`from_lonlat` convert to WGS84 around a
reference origin (defaulting to the Shenzhen query location used throughout
the paper's evaluation, §4.2.1) so GeoJSON exports land on a plausible map.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


#: Reference origin for lon/lat conversion: the paper's s-query location
#: ``s = (22.5311, 114.0550)`` (§4.2.1).
REFERENCE_LAT = 22.5311
REFERENCE_LON = 114.0550

_EARTH_RADIUS_M = 6_371_008.8
_M_PER_DEG_LAT = math.pi * _EARTH_RADIUS_M / 180.0


@dataclass(frozen=True, order=True)
class Point:
    """A point in the local metric plane (metres east/north of the origin)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True)
class BBox:
    """An axis-aligned bounding box (the paper's MBR, §2.1)."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(f"degenerate bbox: {self}")

    # -- constructors ----------------------------------------------------

    @staticmethod
    def from_points(points: Iterable[Point]) -> "BBox":
        pts = list(points)
        if not pts:
            raise ValueError("cannot build a bbox from no points")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return BBox(min(xs), min(ys), max(xs), max(ys))

    @staticmethod
    def around(point: Point, radius: float) -> "BBox":
        """A square box of half-width ``radius`` centred on ``point``."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        return BBox(
            point.x - radius, point.y - radius, point.x + radius, point.y + radius
        )

    # -- measures ----------------------------------------------------------

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def margin(self) -> float:
        """Half-perimeter; used by R*-style split heuristics."""
        return self.width + self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    # -- predicates ---------------------------------------------------------

    def intersects(self, other: "BBox") -> bool:
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def contains_point(self, point: Point) -> bool:
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def contains_bbox(self, other: "BBox") -> bool:
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    # -- combinators ---------------------------------------------------------

    def union(self, other: "BBox") -> "BBox":
        return BBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def enlargement(self, other: "BBox") -> float:
        """Area growth needed for this box to absorb ``other``."""
        return self.union(other).area - self.area

    def distance_to_point(self, point: Point) -> float:
        """Minimum distance from ``point`` to this box (0 if inside)."""
        dx = max(self.min_x - point.x, 0.0, point.x - self.max_x)
        dy = max(self.min_y - point.y, 0.0, point.y - self.max_y)
        return math.hypot(dx, dy)


def point_segment_distance(point: Point, start: Point, end: Point) -> float:
    """Distance from ``point`` to the line segment ``start``–``end``."""
    sx, sy = start.x, start.y
    dx, dy = end.x - sx, end.y - sy
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return point.distance_to(start)
    t = ((point.x - sx) * dx + (point.y - sy) * dy) / length_sq
    t = max(0.0, min(1.0, t))
    return math.hypot(point.x - (sx + t * dx), point.y - (sy + t * dy))


def project_onto_segment(point: Point, start: Point, end: Point) -> tuple[Point, float]:
    """Closest point on segment and the parameter ``t`` in [0, 1]."""
    sx, sy = start.x, start.y
    dx, dy = end.x - sx, end.y - sy
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return start, 0.0
    t = ((point.x - sx) * dx + (point.y - sy) * dy) / length_sq
    t = max(0.0, min(1.0, t))
    return Point(sx + t * dx, sy + t * dy), t


def polyline_length(points: Sequence[Point]) -> float:
    """Total length of a polyline through ``points``."""
    return sum(points[i].distance_to(points[i + 1]) for i in range(len(points) - 1))


def interpolate_along(points: Sequence[Point], distance: float) -> Point:
    """The point at arc-length ``distance`` along a polyline (clamped)."""
    if not points:
        raise ValueError("empty polyline")
    if distance <= 0:
        return points[0]
    remaining = distance
    for i in range(len(points) - 1):
        seg = points[i].distance_to(points[i + 1])
        if remaining <= seg and seg > 0:
            t = remaining / seg
            return Point(
                points[i].x + t * (points[i + 1].x - points[i].x),
                points[i].y + t * (points[i + 1].y - points[i].y),
            )
        remaining -= seg
    return points[-1]


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in metres between two WGS84 coordinates."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * _EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def to_lonlat(
    point: Point, origin_lat: float = REFERENCE_LAT, origin_lon: float = REFERENCE_LON
) -> tuple[float, float]:
    """Convert a local metric point to (lon, lat) around the origin."""
    lat = origin_lat + point.y / _M_PER_DEG_LAT
    lon = origin_lon + point.x / (_M_PER_DEG_LAT * math.cos(math.radians(origin_lat)))
    return lon, lat


def from_lonlat(
    lon: float,
    lat: float,
    origin_lat: float = REFERENCE_LAT,
    origin_lon: float = REFERENCE_LON,
) -> Point:
    """Convert WGS84 (lon, lat) to the local metric plane."""
    y = (lat - origin_lat) * _M_PER_DEG_LAT
    x = (lon - origin_lon) * _M_PER_DEG_LAT * math.cos(math.radians(origin_lat))
    return Point(x, y)
