"""Spatial index substrate built from scratch.

The paper's ST-Index uses an R-tree over the re-segmented road network
(§3.2.1) and a B-tree over time slots; no third-party spatial libraries are
used in this reproduction, so this package provides:

* :mod:`~repro.spatial.geometry` — points, bounding boxes, metric helpers.
* :mod:`~repro.spatial.rtree` — an R-tree with STR bulk loading and
  quadratic-split dynamic inserts.
* :mod:`~repro.spatial.btree` — a B+-tree used as the temporal index.
* :mod:`~repro.spatial.grid` — a uniform grid index (ablation comparator).
* :mod:`~repro.spatial.hull` — convex hulls and point-in-polygon tests for
  reachable-region area reporting and visualisation.
"""

from repro.spatial.geometry import (
    BBox,
    Point,
    haversine_m,
    point_segment_distance,
    polyline_length,
)
from repro.spatial.rtree import RTree
from repro.spatial.btree import BPlusTree
from repro.spatial.grid import GridIndex
from repro.spatial.hull import convex_hull, point_in_polygon, polygon_area

__all__ = [
    "Point",
    "BBox",
    "haversine_m",
    "point_segment_distance",
    "polyline_length",
    "RTree",
    "BPlusTree",
    "GridIndex",
    "convex_hull",
    "point_in_polygon",
    "polygon_area",
]
