"""Convex hulls and polygon predicates.

Used to report reachable-region *areas* and to draw the region outlines that
stand in for the paper's Leaflet map screenshots (Figs 4.2, 4.4, 4.6, 4.9).
"""

from __future__ import annotations

from typing import Sequence

from repro.spatial.geometry import Point


def _cross(o: Point, a: Point, b: Point) -> float:
    """Z-component of (a - o) x (b - o); >0 means a left turn."""
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


def convex_hull(points: Sequence[Point]) -> list[Point]:
    """Andrew's monotone-chain convex hull, counter-clockwise, no duplicates.

    Degenerate inputs (0–2 distinct points, collinear sets) return the
    distinct sorted points.
    """
    unique = sorted(set(points))
    if len(unique) <= 2:
        return unique
    lower: list[Point] = []
    for p in unique:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[Point] = []
    for p in reversed(unique):
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:  # all points collinear
        return unique
    return hull


def polygon_area(polygon: Sequence[Point]) -> float:
    """Absolute area of a simple polygon (shoelace formula)."""
    if len(polygon) < 3:
        return 0.0
    total = 0.0
    for i, p in enumerate(polygon):
        q = polygon[(i + 1) % len(polygon)]
        total += p.x * q.y - q.x * p.y
    return abs(total) / 2.0


def point_in_polygon(point: Point, polygon: Sequence[Point]) -> bool:
    """Ray-casting point-in-polygon test (boundary counts as inside)."""
    n = len(polygon)
    if n < 3:
        return False
    inside = False
    j = n - 1
    for i in range(n):
        pi, pj = polygon[i], polygon[j]
        # On-edge check for robustness on boundary points.
        if _on_segment(point, pi, pj):
            return True
        if (pi.y > point.y) != (pj.y > point.y):
            x_cross = pi.x + (point.y - pi.y) * (pj.x - pi.x) / (pj.y - pi.y)
            if point.x < x_cross:
                inside = not inside
        j = i
    return inside


def _on_segment(point: Point, a: Point, b: Point, eps: float = 1e-9) -> bool:
    cross = abs(_cross(a, b, point))
    if cross > eps * max(1.0, a.distance_to(b)):
        return False
    return (
        min(a.x, b.x) - eps <= point.x <= max(a.x, b.x) + eps
        and min(a.y, b.y) - eps <= point.y <= max(a.y, b.y) + eps
    )
