"""A uniform grid spatial index.

§5.1 discusses grid-based structures (SETI-style) as the standard
alternative to R-trees for trajectory data.  We keep one as an ablation
comparator for the ST-Index's start-segment lookup
(``benchmarks/test_ablation_spatial.py``): same query interface as
:class:`~repro.spatial.rtree.RTree`, different guts.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Callable, Iterator

from repro.spatial.geometry import BBox, Point


class GridIndex:
    """Buckets items by the grid cells their bounding boxes overlap.

    Args:
        bounds: overall spatial extent covered by the grid.
        cell_size: side length of one square cell, in the same units as
            ``bounds`` (metres in this codebase).
    """

    def __init__(self, bounds: BBox, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.bounds = bounds
        self.cell_size = cell_size
        self.cols = max(1, math.ceil(bounds.width / cell_size))
        self.rows = max(1, math.ceil(bounds.height / cell_size))
        self._cells: dict[tuple[int, int], list[tuple[BBox, Any]]] = defaultdict(list)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- mutation ---------------------------------------------------------

    def insert(self, bbox: BBox, item: Any) -> None:
        for cell in self._cells_for(bbox):
            self._cells[cell].append((bbox, item))
        self._size += 1

    # -- queries ------------------------------------------------------------

    def search(self, window: BBox) -> list[Any]:
        """All items whose bbox intersects ``window`` (deduplicated)."""
        seen: set[int] = set()
        results: list[Any] = []
        for cell in self._cells_for(window):
            for bbox, item in self._cells.get(cell, ()):
                if id(item) in seen:
                    continue
                if bbox.intersects(window):
                    seen.add(id(item))
                    results.append(item)
        return results

    def search_point(self, point: Point) -> list[Any]:
        cell = self._cell_of(point)
        return [
            item
            for bbox, item in self._cells.get(cell, ())
            if bbox.contains_point(point)
        ]

    def nearest(
        self,
        point: Point,
        k: int = 1,
        distance: Callable[[Point, Any], float] | None = None,
    ) -> list[Any]:
        """k nearest items by expanding rings of cells around ``point``."""
        if k <= 0 or self._size == 0:
            return []
        if distance is None:
            distance = lambda p, item_with_box: 0.0  # noqa: E731 - replaced below
        col0, row0 = self._cell_of(point)
        best: list[tuple[float, int, Any]] = []
        seen: set[int] = set()
        counter = 0
        max_radius = max(self.cols, self.rows)
        for radius in range(0, max_radius + 1):
            for col, row in self._ring(col0, row0, radius):
                for bbox, item in self._cells.get((col, row), ()):
                    if id(item) in seen:
                        continue
                    seen.add(id(item))
                    d = (
                        bbox.distance_to_point(point)
                        if distance is None
                        else distance(point, item)
                    )
                    counter += 1
                    best.append((d, counter, item))
            if len(best) >= k:
                # One extra ring guards against a closer item that lives in
                # the next ring (its cell centre is farther but its geometry
                # is nearer).
                for col, row in self._ring(col0, row0, radius + 1):
                    for bbox, item in self._cells.get((col, row), ()):
                        if id(item) in seen:
                            continue
                        seen.add(id(item))
                        counter += 1
                        d = (
                            bbox.distance_to_point(point)
                            if distance is None
                            else distance(point, item)
                        )
                        best.append((d, counter, item))
                break
        best.sort()
        return [item for _, _, item in best[:k]]

    def items(self) -> Iterator[Any]:
        seen: set[int] = set()
        for bucket in self._cells.values():
            for _, item in bucket:
                if id(item) not in seen:
                    seen.add(id(item))
                    yield item

    # -- internal ---------------------------------------------------------

    def _cell_of(self, point: Point) -> tuple[int, int]:
        col = int((point.x - self.bounds.min_x) // self.cell_size)
        row = int((point.y - self.bounds.min_y) // self.cell_size)
        return (
            max(0, min(self.cols - 1, col)),
            max(0, min(self.rows - 1, row)),
        )

    def _cells_for(self, bbox: BBox) -> Iterator[tuple[int, int]]:
        lo_col, lo_row = self._cell_of(Point(bbox.min_x, bbox.min_y))
        hi_col, hi_row = self._cell_of(Point(bbox.max_x, bbox.max_y))
        for col in range(lo_col, hi_col + 1):
            for row in range(lo_row, hi_row + 1):
                yield col, row

    def _ring(self, col0: int, row0: int, radius: int) -> Iterator[tuple[int, int]]:
        if radius == 0:
            if 0 <= col0 < self.cols and 0 <= row0 < self.rows:
                yield col0, row0
            return
        for col in range(col0 - radius, col0 + radius + 1):
            for row in (row0 - radius, row0 + radius):
                if 0 <= col < self.cols and 0 <= row < self.rows:
                    yield col, row
        for row in range(row0 - radius + 1, row0 + radius):
            for col in (col0 - radius, col0 + radius):
                if 0 <= col < self.cols and 0 <= row < self.rows:
                    yield col, row
