"""An R-tree for road-segment MBRs.

The ST-Index keeps one R-tree over the (static) re-segmented road network and
shares it across every temporal leaf (§3.2.1: "essentially all the leaf nodes
in the temporal index have the same spatial index structure").  This module
implements:

* STR (sort-tile-recursive) bulk loading — the network is static, so bulk
  loading produces a well-packed tree once at index-construction time;
* Guttman-style dynamic insertion with quadratic split, so incremental
  updates (tests, ablations) also work;
* window queries (:meth:`RTree.search`), point queries and best-first
  nearest-neighbour search (:meth:`RTree.nearest`), which the query processor
  uses to map a query location ``s`` to its start segment ``r0``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.spatial.geometry import BBox, Point

DEFAULT_MAX_ENTRIES = 16


@dataclass
class _Entry:
    bbox: BBox
    child: "_Node | None" = None
    item: Any = None


@dataclass
class _Node:
    is_leaf: bool
    entries: list[_Entry] = field(default_factory=list)

    def bbox(self) -> BBox:
        box = self.entries[0].bbox
        for entry in self.entries[1:]:
            box = box.union(entry.bbox)
        return box


class RTree:
    """A planar R-tree mapping bounding boxes to opaque items.

    Args:
        max_entries: node fan-out; nodes split when they exceed it.
        min_entries: minimum node occupancy after a split (defaults to
            ``max_entries // 2`` like Guttman's m = M/2).
    """

    def __init__(
        self, max_entries: int = DEFAULT_MAX_ENTRIES, min_entries: int | None = None
    ) -> None:
        if max_entries < 2:
            raise ValueError(f"max_entries must be >= 2, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries if min_entries is not None else max(1, max_entries // 2)
        )
        if not 1 <= self.min_entries <= self.max_entries // 2:
            raise ValueError(
                f"min_entries must be in [1, {self.max_entries // 2}],"
                f" got {self.min_entries}"
            )
        self._root = _Node(is_leaf=True)
        self._size = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        items: list[tuple[BBox, Any]],
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> "RTree":
        """Build a packed tree from ``(bbox, item)`` pairs via STR.

        Sort-tile-recursive packing: sort by centre x, cut into vertical
        slices of ~sqrt(n/M) each, sort each slice by centre y, pack runs of
        ``max_entries``.  Repeats one level up until a single root remains.
        """
        tree = cls(max_entries=max_entries)
        if not items:
            return tree
        entries = [_Entry(bbox=bbox, item=item) for bbox, item in items]
        level_is_leaf = True
        while len(entries) > max_entries:
            entries = tree._str_pack(entries, level_is_leaf)
            level_is_leaf = False
        tree._root = _Node(is_leaf=level_is_leaf, entries=entries)
        tree._size = len(items)
        return tree

    def _str_pack(self, entries: list[_Entry], is_leaf: bool) -> list[_Entry]:
        node_count = math.ceil(len(entries) / self.max_entries)
        slice_count = max(1, math.ceil(math.sqrt(node_count)))
        per_slice = math.ceil(len(entries) / slice_count)
        entries = sorted(entries, key=lambda e: e.bbox.center.x)
        parents: list[_Entry] = []
        for s in range(0, len(entries), per_slice):
            column = sorted(
                entries[s : s + per_slice], key=lambda e: e.bbox.center.y
            )
            for n in range(0, len(column), self.max_entries):
                node = _Node(is_leaf=is_leaf, entries=column[n : n + self.max_entries])
                parents.append(_Entry(bbox=node.bbox(), child=node))
        return parents

    # -- mutation ---------------------------------------------------------

    def insert(self, bbox: BBox, item: Any) -> None:
        """Insert one item (Guttman insert with quadratic split)."""
        entry = _Entry(bbox=bbox, item=item)
        split = self._insert_into(self._root, entry)
        if split is not None:
            old_root = self._root
            self._root = _Node(
                is_leaf=False,
                entries=[
                    _Entry(bbox=old_root.bbox(), child=old_root),
                    _Entry(bbox=split.bbox(), child=split),
                ],
            )
        self._size += 1

    def _insert_into(self, node: _Node, entry: _Entry) -> "_Node | None":
        if node.is_leaf:
            node.entries.append(entry)
        else:
            best = min(
                node.entries,
                key=lambda e: (e.bbox.enlargement(entry.bbox), e.bbox.area),
            )
            split = self._insert_into(best.child, entry)
            best.bbox = best.child.bbox()
            if split is not None:
                node.entries.append(_Entry(bbox=split.bbox(), child=split))
        if len(node.entries) > self.max_entries:
            return self._quadratic_split(node)
        return None

    def _quadratic_split(self, node: _Node) -> _Node:
        """Split ``node`` in place; return the newly created sibling."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        bbox_a, bbox_b = group_a[0].bbox, group_b[0].bbox
        rest = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
        while rest:
            # Force assignment when one group must absorb all remaining
            # entries to satisfy minimum occupancy.
            if len(group_a) + len(rest) == self.min_entries:
                group_a.extend(rest)
                bbox_a = _union_all(bbox_a, rest)
                rest = []
                break
            if len(group_b) + len(rest) == self.min_entries:
                group_b.extend(rest)
                bbox_b = _union_all(bbox_b, rest)
                rest = []
                break
            best_index, prefer_a = self._pick_next(rest, bbox_a, bbox_b)
            entry = rest.pop(best_index)
            if prefer_a:
                group_a.append(entry)
                bbox_a = bbox_a.union(entry.bbox)
            else:
                group_b.append(entry)
                bbox_b = bbox_b.union(entry.bbox)
        node.entries = group_a
        return _Node(is_leaf=node.is_leaf, entries=group_b)

    @staticmethod
    def _pick_seeds(entries: list[_Entry]) -> tuple[int, int]:
        worst = -1.0
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i].bbox.union(entries[j].bbox).area
                    - entries[i].bbox.area
                    - entries[j].bbox.area
                )
                if waste > worst:
                    worst = waste
                    seeds = (i, j)
        return seeds

    @staticmethod
    def _pick_next(
        rest: list[_Entry], bbox_a: BBox, bbox_b: BBox
    ) -> tuple[int, bool]:
        best_index = 0
        best_diff = -1.0
        prefer_a = True
        for i, entry in enumerate(rest):
            grow_a = bbox_a.enlargement(entry.bbox)
            grow_b = bbox_b.enlargement(entry.bbox)
            diff = abs(grow_a - grow_b)
            if diff > best_diff:
                best_diff = diff
                best_index = i
                prefer_a = grow_a < grow_b
        return best_index, prefer_a

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def search(self, window: BBox) -> list[Any]:
        """All items whose bbox intersects ``window``."""
        results: list[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if not entry.bbox.intersects(window):
                    continue
                if node.is_leaf:
                    results.append(entry.item)
                else:
                    stack.append(entry.child)
        return results

    def search_point(self, point: Point) -> list[Any]:
        """All items whose bbox contains ``point``."""
        results: list[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if not entry.bbox.contains_point(point):
                    continue
                if node.is_leaf:
                    results.append(entry.item)
                else:
                    stack.append(entry.child)
        return results

    def nearest(
        self,
        point: Point,
        k: int = 1,
        distance: Callable[[Point, Any], float] | None = None,
    ) -> list[Any]:
        """Best-first k-nearest-neighbour search from ``point``.

        Args:
            point: query location.
            k: number of neighbours.
            distance: optional exact item distance used to refine the
                bbox lower bound (e.g. point-to-polyline distance for road
                segments).  Defaults to bbox distance.
        """
        if k <= 0:
            return []
        if self._size == 0:
            return []
        counter = 0
        heap: list[tuple[float, int, _Node | None, Any]] = [
            (0.0, counter, self._root, None)
        ]
        results: list[Any] = []
        while heap and len(results) < k:
            dist, _, node, item = heapq.heappop(heap)
            if node is None:
                results.append(item)
                continue
            for entry in node.entries:
                counter += 1
                if node.is_leaf:
                    if distance is not None:
                        d = distance(point, entry.item)
                    else:
                        d = entry.bbox.distance_to_point(point)
                    heapq.heappush(heap, (d, counter, None, entry.item))
                else:
                    d = entry.bbox.distance_to_point(point)
                    heapq.heappush(heap, (d, counter, entry.child, None))
        return results

    def items(self) -> Iterator[Any]:
        """Iterate every stored item (arbitrary order)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if node.is_leaf:
                    yield entry.item
                else:
                    stack.append(entry.child)

    # -- invariants (used by tests) -----------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated."""
        self._check_node(self._root, is_root=True)

    def _check_node(self, node: _Node, is_root: bool) -> int:
        # STR packing may leave boundary nodes below Guttman's minimum
        # occupancy, so the structural requirement is only non-emptiness.
        if not is_root:
            assert len(node.entries) >= 1, "empty node"
        assert len(node.entries) <= self.max_entries, "overfull node"
        if node.is_leaf:
            return 1
        depths = set()
        for entry in node.entries:
            assert entry.child is not None
            assert entry.bbox.contains_bbox(entry.child.bbox()), "stale parent bbox"
            depths.add(self._check_node(entry.child, is_root=False))
        assert len(depths) == 1, "unbalanced tree"
        return depths.pop() + 1


def _union_all(box: BBox, entries: list[_Entry]) -> BBox:
    for entry in entries:
        box = box.union(entry.bbox)
    return box
