"""A B+-tree used as the temporal index of the ST-Index.

The paper splits each day into Δt-minute slots and "build[s] a B-tree upon
all the small temporal intervals to speed up the temporal range selection"
(§3.2.1).  Keys here are slot start offsets (seconds since midnight, or any
orderable scalar); values are opaque (per-slot spatial index payloads in the
ST-Index).  Leaves are chained for efficient range scans over ``[T, T+L]``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterator

DEFAULT_ORDER = 32


@dataclass
class _Leaf:
    keys: list[Any] = field(default_factory=list)
    values: list[Any] = field(default_factory=list)
    next: "_Leaf | None" = None


@dataclass
class _Internal:
    keys: list[Any] = field(default_factory=list)
    children: list[Any] = field(default_factory=list)  # _Leaf | _Internal


class BPlusTree:
    """A B+-tree with linked leaves.

    Args:
        order: maximum number of keys per node.
    """

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        if order < 3:
            raise ValueError(f"order must be >= 3, got {order}")
        self.order = order
        self._root: _Leaf | _Internal = _Leaf()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- point access --------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        split = self._insert(self._root, key, value)
        if split is not None:
            sep_key, right = split
            self._root = _Internal(keys=[sep_key], children=[self._root, right])

    # -- range access --------------------------------------------------------

    def range(self, low: Any, high: Any) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``low <= key <= high`` in order."""
        if low > high:
            return
        leaf = self._find_leaf(low)
        index = bisect.bisect_left(leaf.keys, low)
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key > high:
                    return
                yield key, leaf.values[index]
                index += 1
            leaf = leaf.next
            index = 0

    def floor(self, key: Any) -> tuple[Any, Any] | None:
        """The greatest ``(k, v)`` with ``k <= key``, or None.

        This is how a timestamp is mapped to the slot containing it.
        """
        result: tuple[Any, Any] | None = None
        node = self._root
        while isinstance(node, _Internal):
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        index = bisect.bisect_right(node.keys, key) - 1
        if index >= 0:
            return node.keys[index], node.values[index]
        # The floor may live in an earlier leaf only if key < every key in
        # tree order along this path, which means there is no floor at all
        # for a B+-tree descended by bisect_right.
        return result

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All pairs in key order."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        leaf: _Leaf | None = node
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def keys(self) -> Iterator[Any]:
        for key, _ in self.items():
            yield key

    # -- internals -------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def _insert(
        self, node: _Leaf | _Internal, key: Any, value: Any
    ) -> tuple[Any, Any] | None:
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self._size += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        sep_key, right = split
        node.keys.insert(index, sep_key)
        node.children.insert(index + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    @staticmethod
    def _split_leaf(leaf: _Leaf) -> tuple[Any, _Leaf]:
        mid = len(leaf.keys) // 2
        right = _Leaf(keys=leaf.keys[mid:], values=leaf.values[mid:], next=leaf.next)
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next = right
        return right.keys[0], right

    @staticmethod
    def _split_internal(node: _Internal) -> tuple[Any, _Internal]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal(keys=node.keys[mid + 1 :], children=node.children[mid + 1 :])
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # -- invariants (used by tests) --------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError on structural violations."""
        self._check(self._root, is_root=True)
        keys = list(self.keys())
        assert keys == sorted(keys), "leaf chain out of order"
        assert len(keys) == self._size, "size mismatch"

    def _check(self, node: _Leaf | _Internal, is_root: bool) -> int:
        if isinstance(node, _Leaf):
            assert len(node.keys) == len(node.values)
            assert len(node.keys) <= self.order
            return 1
        assert len(node.children) == len(node.keys) + 1
        assert len(node.keys) <= self.order
        if not is_root:
            assert len(node.keys) >= 1
        depths = {self._check(child, is_root=False) for child in node.children}
        assert len(depths) == 1, "unbalanced B+-tree"
        return depths.pop() + 1
