"""repro: Mining Spatio-Temporal Reachable Regions over Massive Trajectory Data.

A from-scratch reproduction of Ding (2017): a data-driven spatio-temporal
reachability query system over massive trajectory data, with the ST-Index,
Con-Index, and the SQMB / TBS / MQMB query-processing algorithms, plus every
substrate they depend on (spatial indexes, road networks, a taxi-trajectory
generator, map matching, and a simulated disk with I/O accounting).

Quickstart::

    from repro import (
        ReachabilityEngine, SQuery, build_shenzhen_like, day_time, Point,
    )

    dataset = build_shenzhen_like()
    engine = ReachabilityEngine(dataset.network, dataset.database)
    query = SQuery(
        location=Point(0.0, 0.0),
        start_time_s=day_time(11),
        duration_s=10 * 60,
        prob=0.2,
    )
    result = engine.s_query(query)
    print(len(result.segments), "reachable segments")
"""

from repro.core import (
    ConnectionIndex,
    MQuery,
    ProbabilityEstimator,
    QueryResult,
    ReachabilityEngine,
    SQuery,
    STIndex,
)
from repro.datasets import (
    ShenzhenLikeConfig,
    ShenzhenLikeDataset,
    build_shenzhen_like,
    default_dataset,
)
from repro.network import RoadNetwork, grid_city, resegment
from repro.preprocessing import PreprocessingPipeline
from repro.spatial.geometry import Point
from repro.trajectory import (
    SpeedProfile,
    TaxiFleetGenerator,
    TrajectoryDatabase,
    day_time,
)

__version__ = "1.0.0"

__all__ = [
    "ReachabilityEngine",
    "SQuery",
    "MQuery",
    "QueryResult",
    "STIndex",
    "ConnectionIndex",
    "ProbabilityEstimator",
    "RoadNetwork",
    "grid_city",
    "resegment",
    "PreprocessingPipeline",
    "Point",
    "SpeedProfile",
    "TaxiFleetGenerator",
    "TrajectoryDatabase",
    "day_time",
    "ShenzhenLikeConfig",
    "ShenzhenLikeDataset",
    "build_shenzhen_like",
    "default_dataset",
    "__version__",
]
