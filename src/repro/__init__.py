"""repro: Mining Spatio-Temporal Reachable Regions over Massive Trajectory Data.

A from-scratch reproduction of Ding (2017): a data-driven spatio-temporal
reachability query system over massive trajectory data, with the ST-Index,
Con-Index, and the SQMB / TBS / MQMB query-processing algorithms, plus every
substrate they depend on (spatial indexes, road networks, a taxi-trajectory
generator, map matching, and a simulated disk with I/O accounting).

Module map (see ``docs/architecture.md`` for the routing diagram):

* ``repro.api`` — the stable front door: :class:`Request`/:class:`Response`
  envelopes, the adaptive :class:`Router` behind ``algorithm="auto"``, and
  :class:`ReachabilityClient` (``send`` / ``submit`` futures / ``stream``
  with bounded in-flight window / ``run_batch``); see ``docs/api.md``.
* ``repro.core`` — planner -> executor-registry -> storage query stack:
  :class:`QueryService` (batching, bounding-region dedup),
  :class:`ReachabilityEngine` (index ownership + classic facade),
  ``planner`` / ``executors`` (routing and pluggable algorithms),
  ``st_index`` / ``con_index`` / ``probability`` / ``sqmb`` / ``tbs`` /
  ``mqmb`` / ``baseline`` / ``reverse`` (the paper's machinery),
  ``explain`` (plan + cost rendering).
* ``repro.storage`` — simulated disk, page store, LRU buffer pools with
  hit/miss/eviction accounting.
* ``repro.spatial`` — R-tree, B+-tree, grid, hulls, geometry.
* ``repro.network`` — road-network model, generators, re-segmentation,
  time-bounded expansion.
* ``repro.trajectory`` — fleet generator, map matching, speed profiles,
  the compact trajectory database.
* ``repro.datasets`` / ``repro.preprocessing`` / ``repro.io`` — the
  ShenzhenLike synthetic dataset, cleaning pipeline, persistence.
* ``repro.eval`` — Chapter-4 sweeps, workloads, table formatting.
* ``repro.apps`` — coverage, POI recommendation, isochrones, ETA demos.
* ``repro.viz`` / ``repro.cli`` — ASCII maps, GeoJSON, the command line.

Quickstart::

    from repro import (
        ReachabilityClient, ReachabilityEngine, Request, SQuery,
        build_shenzhen_like, day_time, Point,
    )

    dataset = build_shenzhen_like()
    client = ReachabilityClient(
        ReachabilityEngine(dataset.network, dataset.database)
    )
    query = SQuery(
        location=Point(0.0, 0.0),
        start_time_s=day_time(11),
        duration_s=10 * 60,
        prob=0.2,
    )
    response = client.send(Request(query))  # algorithm="auto"
    print(len(response.segments), "reachable segments via",
          response.route.algorithm)

    report = client.run_batch([query, SQuery(Point(0, 0), day_time(11),
                                             10 * 60, 0.8)])
    print(report.page_reads, "page reads for the whole batch")
"""

from repro.api import (
    QueryOptions,
    ReachabilityClient,
    Request,
    Response,
    RouteDecision,
    Router,
    as_client,
)
from repro.core import (
    BatchReport,
    ConnectionIndex,
    MQuery,
    ProbabilityEstimator,
    QueryPlan,
    QueryResult,
    QueryService,
    ReachabilityEngine,
    SQuery,
    STIndex,
)
from repro.datasets import (
    ShenzhenLikeConfig,
    ShenzhenLikeDataset,
    build_shenzhen_like,
    default_dataset,
)
from repro.network import RoadNetwork, grid_city, resegment
from repro.preprocessing import PreprocessingPipeline
from repro.spatial.geometry import Point
from repro.trajectory import (
    SpeedProfile,
    TaxiFleetGenerator,
    TrajectoryDatabase,
    day_time,
)

__version__ = "1.0.0"

__all__ = [
    "ReachabilityClient",
    "Request",
    "Response",
    "QueryOptions",
    "Router",
    "RouteDecision",
    "as_client",
    "ReachabilityEngine",
    "QueryService",
    "QueryPlan",
    "BatchReport",
    "SQuery",
    "MQuery",
    "QueryResult",
    "STIndex",
    "ConnectionIndex",
    "ProbabilityEstimator",
    "RoadNetwork",
    "grid_city",
    "resegment",
    "PreprocessingPipeline",
    "Point",
    "SpeedProfile",
    "TaxiFleetGenerator",
    "TrajectoryDatabase",
    "day_time",
    "ShenzhenLikeConfig",
    "ShenzhenLikeDataset",
    "build_shenzhen_like",
    "default_dataset",
    "__version__",
]
