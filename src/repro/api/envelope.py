"""The frozen request/response envelopes of the client API.

One query used to travel through the system as a loose bundle of kwargs
(``algorithm=``, ``delta_t_s=``, ``kind=``, ``warm=``) repeated across
``QueryService``, the engine facade, the CLI and every app — and a batch
could not even express per-query intent, because ``kind`` and
``algorithm`` were batch-global.  The envelope fixes the shape once:

* :class:`QueryOptions` — everything about *how* to answer a query
  (direction, algorithm incl. ``"auto"``, Δt, cache policy, a tag for
  correlation, an optional cost budget);
* :class:`Request` — a query plus its options, the one unit every client
  entry point (``send`` / ``submit`` / ``stream`` / ``run_batch``)
  accepts;
* :class:`Response` — the result plus the plan that ran, the
  :class:`~repro.api.router.RouteDecision` that chose it, and per-query
  cost/cache metrics.

Requests are frozen and hashable, so they can key caches and cross
thread boundaries safely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.query import MQuery, QueryCost, QueryResult, SQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.router import RouteDecision
    from repro.core.planner import QueryPlan

#: Query directions: ``forward`` ("where can I reach from S?") and
#: ``reverse`` ("from where can S be reached?", Fig 1.2).
DIRECTIONS = ("forward", "reverse")

#: The algorithm name that asks the router to choose (the default).
AUTO = "auto"


@dataclass(frozen=True)
class QueryOptions:
    """Per-request execution intent.

    Attributes:
        direction: ``"forward"`` or ``"reverse"`` (reverse asks who can
            reach the query location; single-location queries only).
        algorithm: a registered executor name, or ``"auto"`` (default) to
            let the :class:`~repro.api.router.Router` pick the cheapest
            correct route for the request's shape.
        delta_t_s: index granularity Δt, or None for the client default.
        warm: keep buffer pools from previous queries instead of paying
            cold I/O (ignored inside batches, which manage warmth at the
            batch level).
        reuse_regions: serve bounding regions from the service-lifetime
            cache when an identically-shaped query already computed them.
            Disable to reproduce the paper's cold per-query protocol.
        tag: opaque correlation id echoed on the response (multi-tenant
            streams use it to match responses to submitters).
        cost_budget_ms: advisory cost ceiling; the router avoids
            unbounded exhaustive routes when set, and the response
            reports whether the actual cost stayed within it.
    """

    direction: str = "forward"
    algorithm: str = AUTO
    delta_t_s: int | None = None
    warm: bool = False
    reuse_regions: bool = True
    tag: str = ""
    cost_budget_ms: float | None = None

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"unknown direction {self.direction!r}, want one of {DIRECTIONS}"
            )
        if self.delta_t_s is not None and self.delta_t_s <= 0:
            raise ValueError(f"bad index granularity {self.delta_t_s}")
        if self.cost_budget_ms is not None and self.cost_budget_ms <= 0:
            raise ValueError(f"bad cost budget {self.cost_budget_ms}")


@dataclass(frozen=True)
class Request:
    """One query plus how to answer it — the client API's unit of work.

    Attributes:
        query: an :class:`~repro.core.query.SQuery` or
            :class:`~repro.core.query.MQuery`.
        options: the execution intent; defaults to auto-routed forward
            execution at the client's Δt.
    """

    query: SQuery | MQuery
    options: QueryOptions = field(default_factory=QueryOptions)

    def __post_init__(self) -> None:
        if not isinstance(self.query, (SQuery, MQuery)):
            raise TypeError(f"not a query: {self.query!r}")
        if self.options.direction == "reverse" and isinstance(self.query, MQuery):
            raise ValueError("reverse queries take a single location")

    @property
    def kind(self) -> str:
        """The planner kind the request resolves to (``s``/``m``/``r``)."""
        if self.options.direction == "reverse":
            return "r"
        return "m" if isinstance(self.query, MQuery) else "s"

    @property
    def tag(self) -> str:
        return self.options.tag


@dataclass
class Response:
    """What comes back for one :class:`Request`.

    Attributes:
        request: the request this answers (its tag, options, query).
        result: the Prob-reachable region plus per-query cost metrics.
        plan: the frozen :class:`~repro.core.planner.QueryPlan` that ran.
        route: the routing decision that chose the plan (inspectable:
            rule, reason, classified features).
        sequence: submission index within a ``stream``/``run_batch``
            pipeline (0 for single sends).
        regions_computed: bounding regions this query expanded itself.
        regions_reused: bounding regions served from the shared cache.
            Both counters are exact for single sends and serial
            pipelines; a concurrent stream (``max_workers > 1``) cannot
            attribute the shared counters per query and reports 0 here —
            read the exact totals off its ``BatchReport``.
    """

    request: Request
    result: QueryResult
    plan: "QueryPlan"
    route: "RouteDecision"
    sequence: int = 0
    regions_computed: int = 0
    regions_reused: int = 0

    @property
    def segments(self) -> set[int]:
        return self.result.segments

    @property
    def cost(self) -> QueryCost:
        return self.result.cost

    @property
    def tag(self) -> str:
        return self.request.tag

    @property
    def within_budget(self) -> bool | None:
        """Whether the cost met the request's budget (None if unbudgeted)."""
        budget = self.request.options.cost_budget_ms
        if budget is None:
            return None
        return self.result.cost.total_cost_ms <= budget

    def describe(self) -> str:
        """One progress line (the CLI's streaming batch output)."""
        tag = f" tag={self.tag}" if self.tag else ""
        budget = ""
        if self.within_budget is not None:
            budget = " within-budget" if self.within_budget else " OVER-BUDGET"
        return (
            f"#{self.sequence}{tag} {self.request.options.direction}"
            f" {self.plan.kind}/{self.plan.algorithm}"
            f" -> {len(self.result.segments)} segments in"
            f" {self.result.cost.total_cost_ms:.0f} ms{budget}"
        )
