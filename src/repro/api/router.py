"""Adaptive query routing: classify a request, pick the cheapest route.

``algorithm="auto"`` is resolved here.  The router looks only at the
*shape* of a request — duration vs Δt, location count and spread,
probability threshold, direction, budget — and maps it onto one of the
registered execution routes:

* **SQMB+TBS** (``sqmb_tbs``) — the paper's s-query method, the default
  forward route;
* **MQMB+TBS** (``mqmb_tbs``) — the paper's m-query method for
  overlapping multi-location requests;
* **decomposed-s** (``sqmb_tbs_each``) — per-location SQMB+TBS for
  m-queries whose seeds cannot interact (one location, or spread so far
  apart their maximum regions are provably disjoint);
* **ES baseline** (``es`` / ``es_each``) — exhaustive verification for
  sub-slot durations, where the Δt-hop bounding machinery degenerates to
  a single quantized hop.

Every classification is recorded as an inspectable
:class:`RouteDecision` (rule id, human reason, the feature values it
fired on), rendered by ``EXPLAIN`` and carried on every
:class:`~repro.api.envelope.Response`.  Routing never changes answers —
each route is an exact executor for its shape — so forcing
``algorithm=<decision.algorithm>`` returns the identical segment set;
the router only moves cost.

The design follows the "traffic light" routing exemplar (virt-graph):
one front door, a small ordered rule table, first match wins, and the
decision is always explainable after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.api.envelope import AUTO, Request
from repro.core.query import MQuery

#: Algorithms that verify exhaustively, without Con-Index bounds.
ES_FAMILY = frozenset({"es", "es_pruned", "es_each"})

#: The paper's method per query kind (the bounded routes).
PAPER_ALGORITHMS = {"s": "sqmb_tbs", "m": "mqmb_tbs", "r": "sqmb_tbs"}


@dataclass(frozen=True)
class RouterConfig:
    """Thresholds the routing rules classify against.

    Attributes:
        es_prob_floor: minimum probability threshold for the sub-slot ES
            route; below it, a permissive threshold can pass enough
            far-flung segments to make exhaustive verification expensive,
            so low-prob requests stay on the bounded route.
        disjoint_speed_mps: speed bound used to prove that m-query seeds
            cannot interact: when *every* pair of seeds is farther apart
            than ``2 · duration · disjoint_speed_mps``, all per-seed
            maximum regions are provably disjoint, so the unified MQMB
            expansion degenerates and the decomposed-s route skips its
            overlap elimination.  Keep this above any speed the dataset
            can exhibit.
    """

    es_prob_floor: float = 0.2
    disjoint_speed_mps: float = 40.0


@dataclass(frozen=True)
class RouteDecision:
    """One request's routing outcome, ready for execution or display.

    Attributes:
        kind: planner kind (``s``/``m``/``r``) from the direction and
            query type.
        algorithm: the executor route chosen.
        rule: id of the routing rule that fired (``"forced"`` when the
            request named a concrete algorithm).
        reason: one human sentence explaining the choice.
        requested: what the request asked for (``"auto"`` or a name).
        features: the classified shape, as ``(name, value)`` pairs.
    """

    kind: str
    algorithm: str
    rule: str
    reason: str
    requested: str = AUTO
    features: tuple[tuple[str, object], ...] = ()

    def describe(self) -> str:
        """One-line routing summary (rendered by ``EXPLAIN``)."""
        shape = ", ".join(f"{name}={value}" for name, value in self.features)
        return (
            f"route: {self.kind}-query -> {self.algorithm!r} "
            f"[rule {self.rule}] {self.reason}"
            + (f" | shape: {shape}" if shape else "")
        )


class Router:
    """Shape-based request classifier behind ``algorithm="auto"``.

    Stateless and engine-free: decisions depend only on the request and
    Δt, so they can be made (and tested) without touching any index.

    Args:
        config: rule thresholds; defaults are safe for every dataset the
            generator produces.
    """

    def __init__(self, config: RouterConfig | None = None) -> None:
        self.config = config if config is not None else RouterConfig()

    def route(self, request: Request, delta_t_s: int) -> RouteDecision:
        """Classify one request into a :class:`RouteDecision`.

        Args:
            request: the request to classify.
            delta_t_s: the resolved index granularity Δt (the request's
                override or the client default).
        """
        options = request.options
        kind = request.kind
        features = self._features(request, delta_t_s)
        if options.algorithm != AUTO:
            return RouteDecision(
                kind=kind,
                algorithm=options.algorithm,
                rule="forced",
                reason="algorithm named explicitly by the request",
                requested=options.algorithm,
                features=features,
            )
        decision = self._auto(request, kind, delta_t_s, features)
        if (
            options.cost_budget_ms is not None
            and decision.algorithm in ES_FAMILY
        ):
            # Exhaustive verification has data-dependent, unbounded cost;
            # a budgeted request gets the bounded paper route instead.
            return RouteDecision(
                kind=kind,
                algorithm=PAPER_ALGORITHMS[kind],
                rule="budget-bounds",
                reason=(
                    f"cost budget {options.cost_budget_ms:.0f} ms forbids the "
                    f"unbounded {decision.algorithm!r} route (was rule "
                    f"{decision.rule})"
                ),
                features=features,
            )
        return decision

    # -- classification ----------------------------------------------------

    def _features(
        self, request: Request, delta_t_s: int
    ) -> tuple[tuple[str, object], ...]:
        query = request.query
        features: list[tuple[str, object]] = [
            ("direction", request.options.direction),
            ("duration_s", query.duration_s),
            ("delta_t_s", delta_t_s),
            ("sub_slot", query.duration_s < delta_t_s),
            ("prob", query.prob),
        ]
        if isinstance(query, MQuery):
            distinct = tuple(dict.fromkeys(query.locations))
            features.append(("locations", len(query.locations)))
            features.append(("distinct_locations", len(distinct)))
            features.append(("min_gap_m", round(self._min_gap_m(distinct), 1)))
        else:
            features.append(("locations", 1))
        return tuple(features)

    @staticmethod
    def _min_gap_m(locations: tuple) -> float:
        """Smallest pairwise distance between query locations (metres).

        Disjointness must hold for *every* pair, so the rule gates on
        the minimum — a clustered pair plus a far outlier is not sparse.
        """
        if len(locations) < 2:
            return 0.0
        return min(
            a.distance_to(b) for a, b in combinations(locations, 2)
        )

    def _auto(
        self,
        request: Request,
        kind: str,
        delta_t_s: int,
        features: tuple[tuple[str, object], ...],
    ) -> RouteDecision:
        query = request.query
        config = self.config
        sub_slot = query.duration_s < delta_t_s

        def decide(algorithm: str, rule: str, reason: str) -> RouteDecision:
            return RouteDecision(
                kind=kind, algorithm=algorithm, rule=rule, reason=reason,
                features=features,
            )

        if kind == "r":
            return decide(
                "sqmb_tbs", "reverse-bounds",
                "reverse reachability runs backward Con-Index bounds + "
                "trace-back",
            )
        if kind == "s":
            if sub_slot and query.prob >= config.es_prob_floor:
                return decide(
                    "es", "sub-slot-es",
                    f"duration {query.duration_s:.0f}s < Δt={delta_t_s}s: "
                    "the Δt-hop bounding search degenerates to one "
                    "quantized hop, so exhaustive verification of the "
                    "in-window support is the cheaper exact route",
                )
            return decide(
                "sqmb_tbs", "paper-s",
                "single-location forward query takes the paper's "
                "SQMB bounds + trace-back",
            )
        # m-queries.
        distinct = tuple(dict.fromkeys(query.locations))
        if len(distinct) == 1:
            return decide(
                "sqmb_tbs_each", "single-location-decompose",
                "one distinct location: MQMB's unified expansion and "
                "overlap elimination add nothing over a single SQMB run",
            )
        if sub_slot and query.prob >= config.es_prob_floor:
            return decide(
                "es_each", "sub-slot-es",
                f"duration {query.duration_s:.0f}s < Δt={delta_t_s}s per "
                "seed: exhaustive verification beats one-hop bounds",
            )
        min_gap = self._min_gap_m(distinct)
        if min_gap > 2.0 * query.duration_s * config.disjoint_speed_mps:
            return decide(
                "sqmb_tbs_each", "sparse-decompose",
                f"every seed pair is ≥ {min_gap:.0f} m apart and cannot "
                f"interact within {query.duration_s:.0f}s "
                f"(≤ {config.disjoint_speed_mps:.0f} m/s): per-seed maximum "
                "regions are disjoint, so the decomposed route skips "
                "MQMB's overlap elimination",
            )
        return decide(
            "mqmb_tbs", "paper-m",
            "overlapping multi-location query takes the paper's unified "
            "MQMB bounds + trace-back",
        )


#: The routing rule table, for documentation and ``--explain`` rendering:
#: (rule id, fires when, route).
ROUTING_TABLE: tuple[tuple[str, str, str], ...] = (
    ("forced", "the request names a concrete algorithm", "that algorithm"),
    ("reverse-bounds", "direction=reverse", "sqmb_tbs (backward bounds)"),
    ("sub-slot-es", "duration < Δt and prob ≥ es_prob_floor",
     "es / es_each"),
    ("single-location-decompose", "m-query with one distinct location",
     "sqmb_tbs_each"),
    ("sparse-decompose",
     "every m-query seed pair farther apart than 2·duration·disjoint_speed",
     "sqmb_tbs_each"),
    ("paper-s", "any other s-query", "sqmb_tbs"),
    ("paper-m", "any other m-query", "mqmb_tbs"),
    ("budget-bounds", "cost budget set and an ES route was chosen",
     "the paper route for the kind"),
)
