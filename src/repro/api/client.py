"""The unified client: one front door for every query, batch or stream.

:class:`ReachabilityClient` replaces the kwarg-sprawl entry points
(``engine.s_query`` / ``service.query`` / per-kind wrappers) with one
request/response surface:

* :meth:`~ReachabilityClient.send` — answer one
  :class:`~repro.api.envelope.Request` synchronously (through the
  service-lifetime bounding-region cache);
* :meth:`~ReachabilityClient.submit` — the same, as a
  :class:`concurrent.futures.Future` on the client's worker pool;
* :meth:`~ReachabilityClient.stream` — run many requests over a worker
  pool with a bounded in-flight window, yielding
  :class:`~repro.api.envelope.Response` objects *as they complete*;
* :meth:`~ReachabilityClient.run_batch` — a thin aggregation over the
  same streaming pipeline, returning the classic
  :class:`~repro.core.service.BatchReport` (totals unchanged).

Every request is routed by the :class:`~repro.api.router.Router`
(``algorithm="auto"``) and the decision travels on the response, so a
multi-tenant workload can mix forward/reverse, s-/m-, forced and
auto-routed queries freely in one stream — per-query intent lives in the
envelope, not in batch-global kwargs.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Iterable, Iterator

from repro.api.envelope import QueryOptions, Request, Response
from repro.api.router import RouteDecision, Router
from repro.core.engine import ReachabilityEngine
from repro.core.executors import ExecutionContext, execute_plan
from repro.core.explain import QueryExplanation, explain_m_query, explain_s_query
from repro.core.planner import QueryPlan, plan_query
from repro.core.query import MQuery, SQuery
from repro.core.service import BatchReport, QueryService, as_service


def _coerce(request: Request | SQuery | MQuery) -> Request:
    """Wrap bare queries in a default (auto-routed, forward) envelope."""
    if isinstance(request, Request):
        return request
    return Request(query=request)


class ReachabilityClient:
    """Request/response client over a :class:`QueryService`.

    Args:
        target: the service to answer through, or a bare engine (a
            private service is created around it).
        router: the routing policy for ``algorithm="auto"`` requests.
        max_workers: worker-pool size for :meth:`submit` futures (stream
            pipelines size their own pools per call).
        backend: default :meth:`run_batch` execution backend —
            ``"threaded"`` (the in-process pipeline) or ``"sharded"``
            (spatial shards on worker processes, see
            :mod:`repro.serving`).  The sharded engine spawns lazily on
            the first sharded batch and is shut down by :meth:`close`.
        shards: spatial partition arity for the sharded backend.
        shard_workers: worker-process count for the sharded backend
            (default ``None`` = one process per shard).
        deadline_ms: per-scatter reply deadline for the sharded backend
            (default ``None`` = the engine's default; pass through to
            :class:`~repro.serving.ShardedEngine`).
        max_retries: bounded-retry limit per scatter for the sharded
            backend (default ``None`` = the engine's default).
        disk_backend: storage backend for a bare-engine target —
            ``"sim"`` (in-RAM, the default) or ``"file"`` (the durable
            :class:`~repro.storage.backends.FileBackedDisk`).  Applied
            via :meth:`ReachabilityEngine.use_disk`, so it must be set
            before the engine builds its first index; ``None`` keeps
            whatever disk the engine already has.
        disk_path: store directory for ``disk_backend="file"``.
    """

    def __init__(
        self,
        target: QueryService | ReachabilityEngine,
        router: Router | None = None,
        max_workers: int = 4,
        backend: str = "threaded",
        shards: int = 4,
        shard_workers: int | None = None,
        deadline_ms: float | None = None,
        max_retries: int | None = None,
        disk_backend: str | None = None,
        disk_path: str | None = None,
    ) -> None:
        if backend not in ("threaded", "sharded"):
            raise ValueError(f"unknown backend {backend!r}")
        if disk_backend is not None:
            from repro.storage.backends import create_disk

            if not isinstance(target, ReachabilityEngine):
                raise ValueError(
                    "disk_backend applies to a bare engine target; services "
                    "already carry a configured engine"
                )
            target.use_disk(
                create_disk(
                    disk_backend, path=disk_path, page_size=target.disk.page_size,
                    read_latency_ms=target.disk.read_latency_ms,
                    write_latency_ms=target.disk.write_latency_ms,
                )
            )
        self.service = as_service(target)
        self.router = router if router is not None else Router()
        self.max_workers = max_workers
        self.backend = backend
        self.shards = shards
        self.shard_workers = shard_workers
        self.deadline_ms = deadline_ms
        self.max_retries = max_retries
        self._pool: ThreadPoolExecutor | None = None  # guarded_by: _pool_lock
        self._pool_lock = threading.Lock()
        self._sharded = None  # guarded_by: _sharded_lock
        self._sharded_lock = threading.Lock()

    # -- durable stores ----------------------------------------------------

    @classmethod
    def open(cls, path, crash_plan=None, readonly: bool = False, **kwargs):
        """Open a :func:`~repro.io.persist.save_store` bundle as a client.

        The cold-start entry point: the returned client serves queries
        immediately, faulting checksum-verified data pages in from the
        durable store on demand instead of loading everything up front.
        Extra keyword arguments go to the constructor.
        """
        from repro.io.persist import open_store

        engine = open_store(path, crash_plan=crash_plan, readonly=readonly)
        # The store's index granularity becomes the client's default Δt,
        # so un-optioned requests hit the restored index instead of
        # triggering a from-scratch build at the service default.
        delta_t_s = next(iter(engine._st_indexes), None)
        if delta_t_s is not None:
            return cls(QueryService(engine, delta_t_s=delta_t_s), **kwargs)
        return cls(engine, **kwargs)

    def save(self, path):
        """Persist this client's engine as a durable store bundle."""
        from repro.io.persist import save_store

        return save_store(self.engine, path, self.delta_t_s)

    # -- conveniences ------------------------------------------------------

    @property
    def engine(self) -> ReachabilityEngine:
        return self.service.engine

    @property
    def network(self):
        return self.service.engine.network

    @property
    def delta_t_s(self) -> int:
        return self.service.delta_t_s

    def _resolve_delta_t(self, options: QueryOptions) -> int:
        return (
            options.delta_t_s
            if options.delta_t_s is not None
            else self.service.delta_t_s
        )

    # -- planning / routing ------------------------------------------------

    def route(self, request: Request | SQuery | MQuery) -> RouteDecision:
        """Classify a request without planning or executing it."""
        request = _coerce(request)
        return self.router.route(request, self._resolve_delta_t(request.options))

    def plan(
        self, request: Request | SQuery | MQuery
    ) -> tuple[QueryPlan, RouteDecision]:
        """Route and plan one request (``EXPLAIN``-style, no execution)."""
        request = _coerce(request)
        delta_t_s = self._resolve_delta_t(request.options)
        decision = self.router.route(request, delta_t_s)
        plan = plan_query(
            decision.kind, request.query, decision.algorithm, delta_t_s,
            warm=request.options.warm,
        )
        return plan, decision

    # -- single requests ---------------------------------------------------

    def send(self, request: Request | SQuery | MQuery) -> Response:
        """Answer one request synchronously.

        Single sends run against cold buffer pools unless
        ``options.warm`` (the paper's per-query protocol), but still
        share the service-lifetime bounding-region cache — repeated
        identically-shaped queries reuse their bounds — unless
        ``options.reuse_regions`` is off.
        """
        request = _coerce(request)
        plan, decision = self.plan(request)
        result, context = self.service.run_plan(
            plan, request.query, reuse_regions=request.options.reuse_regions
        )
        return Response(
            request=request,
            result=result,
            plan=plan,
            route=decision,
            regions_computed=context.regions_computed,
            regions_reused=context.regions_reused,
        )

    def submit(self, request: Request | SQuery | MQuery) -> "Future[Response]":
        """Answer one request on the client's worker pool.

        Returns a future resolving to the :class:`Response`; submissions
        from many tenants interleave on the shared pool.  Per-response
        cost attribution is exact even while submissions overlap — each
        execution windows its own thread-local disk counters
        (:meth:`~repro.storage.disk.SimulatedDisk.local_snapshot`) — but
        a *cold* request still invalidates the shared buffer pools for
        everyone, so overlapping cold submissions charge each other
        re-reads; pass ``warm=True`` options, or use
        :meth:`stream`/:meth:`run_batch`, for a shared warm window.
        """
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="reach-client",
                )
            return self._pool.submit(self.send, _coerce(request))

    # -- pipelines ---------------------------------------------------------

    def stream(
        self,
        requests: Iterable[Request | SQuery | MQuery],
        warm: bool = False,
        max_workers: int = 1,
        window: int | None = None,
    ) -> "BatchStream":
        """Run many requests as one pipeline, yielding as they complete.

        The batch pays one cold start (unless ``warm``), then every
        request runs against warm buffer pools, the shared
        bounding-region cache and one frozen plan per request shape —
        exactly :meth:`run_batch`'s sharing, delivered incrementally.
        With ``max_workers > 1`` requests execute concurrently with at
        most ``window`` in flight; responses arrive in completion order,
        each stamped with its submission ``sequence``.

        Requests are materialized up front (planning and index
        resolution happen before the first yield); execution is lazy —
        the cold start and the accounting window open at the first
        pull, so queries run between ``stream()`` and iteration are not
        charged to the batch.
        Per-request ``warm``/``reuse_regions`` options are batch-managed
        here: members always run warm inside the pipeline and share the
        region cache.

        Returns:
            A :class:`BatchStream` — iterate it for responses; read its
            ``report`` after exhaustion for the exact batch totals.
        """
        return BatchStream(
            self, [_coerce(r) for r in requests], warm=warm,
            max_workers=max_workers, window=window,
        )

    def run_batch(
        self,
        requests: Iterable[Request | SQuery | MQuery],
        warm: bool = False,
        max_workers: int = 1,
        window: int | None = None,
        backend: str | None = None,
    ) -> BatchReport:
        """Run requests through :meth:`stream` and aggregate the report.

        Args:
            backend: override the client's default backend for this
                batch — ``"sharded"`` scatters the requests across the
                spatial shard workers (:mod:`repro.serving`) instead of
                the in-process thread pipeline; ``max_workers``/``window``
                only apply to the threaded backend.
        """
        resolved = backend if backend is not None else self.backend
        if resolved == "sharded":
            return self._sharded_engine().run_batch(
                [_coerce(r) for r in requests], warm=warm
            )
        if resolved != "threaded":
            raise ValueError(f"unknown backend {resolved!r}")
        stream = self.stream(
            requests, warm=warm, max_workers=max_workers, window=window
        )
        for _ in stream:
            pass
        return stream.report

    def _sharded_engine(self):
        """The lazily spawned sharded backend (see :mod:`repro.serving`)."""
        with self._sharded_lock:
            if self._sharded is None:
                # Imported lazily: repro.serving pulls in multiprocessing
                # machinery most clients never need.
                from repro.serving import ShardedEngine

                overrides = {}
                if self.deadline_ms is not None:
                    overrides["deadline_ms"] = self.deadline_ms
                if self.max_retries is not None:
                    overrides["max_retries"] = self.max_retries
                self._sharded = ShardedEngine(
                    self.service,
                    shards=self.shards,
                    workers=self.shard_workers,
                    **overrides,
                )
            return self._sharded

    # -- explanation -------------------------------------------------------

    def explain(self, request: Request | SQuery | MQuery) -> QueryExplanation:
        """Explain one request: the routing decision plus staged costs.

        Paper routes (SQMB/MQMB + TBS) run with per-stage
        instrumentation; other routes return the plan and decision
        without stage decomposition.
        """
        request = _coerce(request)
        plan, decision = self.plan(request)
        if decision.kind == "s" and decision.algorithm == "sqmb_tbs":
            explanation = explain_s_query(
                self.engine, request.query, plan.delta_t_s
            )
        elif decision.kind == "m" and decision.algorithm == "mqmb_tbs":
            explanation = explain_m_query(
                self.engine, request.query, plan.delta_t_s
            )
        else:
            explanation = QueryExplanation(plan=plan)
        explanation.route = decision
        return explanation

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the submit pool and any shard workers down (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        with self._sharded_lock:
            sharded, self._sharded = self._sharded, None
        if sharded is not None:
            sharded.close()

    def __enter__(self) -> "ReachabilityClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BatchStream(Iterator[Response]):
    """A lazily-executing request pipeline with exact batch accounting.

    Created by :meth:`ReachabilityClient.stream`.  Iterating yields
    :class:`Response` objects as requests complete (submission order
    under one worker, completion order under many); after exhaustion
    :attr:`report` holds the same :class:`BatchReport` the classic
    ``run_batch`` produced — per-query results in submission order,
    batch-level page reads, simulated I/O, pool counters and the
    bounding-region dedup totals.
    """

    def __init__(
        self,
        client: ReachabilityClient,
        requests: list[Request],
        warm: bool,
        max_workers: int,
        window: int | None,
    ) -> None:
        self._client = client
        self._max_workers = max(1, max_workers)
        self._window = (
            max(self._max_workers, window)
            if window is not None
            else 2 * self._max_workers
        )
        self._report = BatchReport()
        self._responses: dict[int, Response] = {}
        self._started: float | None = None
        self._finished = not requests
        self._pool: ThreadPoolExecutor | None = None
        self._pending: dict = {}
        self._buffer: list[Response] = []
        engine = client.engine
        # Plan everything up front: routing decisions, one frozen plan per
        # request shape (members always run warm — the batch-level cold
        # start below is the only cache invalidation).
        plan_cache: dict[QueryPlan, QueryPlan] = {}
        self._prepared: list[tuple[int, Request, QueryPlan]] = []
        for sequence, request in enumerate(requests):
            delta_t_s = client._resolve_delta_t(request.options)
            decision = client.router.route(request, delta_t_s)
            plan = plan_query(
                decision.kind, request.query, decision.algorithm, delta_t_s,
                warm=True,
            )
            cached = plan_cache.get(plan)
            if cached is not None:
                self._report.plans_reused += 1
                plan = cached
            else:
                plan_cache[plan] = plan
            self._report.plans.append(plan)
            self._report.routes.append(decision)
            self._prepared.append((sequence, request, plan))
        self._iter = iter(self._prepared)
        if not requests:
            return
        # Resolve indexes before the accounting window opens (index
        # construction is offline work in the paper's model), then take
        # the batch-level cold start.
        delta_ts = sorted({plan.delta_t_s for plan in self._report.plans})
        for delta_t_s in delta_ts:
            engine.st_index(delta_t_s)
            if any(
                plan.uses_con_index and plan.delta_t_s == delta_t_s
                for plan in self._report.plans
            ):
                engine.con_index(delta_t_s)
        self._contexts = {
            delta_t_s: ExecutionContext(
                engine, delta_t_s, region_cache=client.service.region_cache
            )
            for delta_t_s in delta_ts
        }
        self._warm = warm
        self._before = None

    # -- iteration ---------------------------------------------------------

    def __iter__(self) -> "BatchStream":
        return self

    def __next__(self) -> Response:
        if self._finished and not self._buffer:
            raise StopIteration
        if self._started is None:
            # The batch-level cold start and the accounting window open
            # at the first pull, not at construction, so execution (and
            # what the report charges) really is lazy.
            if not self._warm:
                self._client.engine.invalidate_caches()
            self._before = self._client.engine.disk.snapshot()
            self._started = time.perf_counter()
        if self._max_workers == 1:
            return self._next_serial()
        return self._next_threaded()

    def _next_serial(self) -> Response:
        try:
            sequence, request, plan = next(self._iter)
        except StopIteration:
            self._finalize()
            raise
        context = self._contexts[plan.delta_t_s]
        computed, reused = context.regions_computed, context.regions_reused
        response = self._execute(sequence, request, plan)
        response.regions_computed = context.regions_computed - computed
        response.regions_reused = context.regions_reused - reused
        self._responses[sequence] = response
        return response

    def _next_threaded(self) -> Response:
        if self._buffer:
            return self._buffer.pop(0)
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="reach-stream",
            )
        while len(self._pending) < self._window:
            try:
                sequence, request, plan = next(self._iter)
            except StopIteration:
                break
            future = self._pool.submit(self._execute, sequence, request, plan)
            self._pending[future] = sequence
        if not self._pending:
            self._finalize()
            raise StopIteration
        done, _ = wait(self._pending, return_when=FIRST_COMPLETED)
        # Within one completion wave, yield in submission order so the
        # stream is deterministic when everything finishes together.
        for future in sorted(done, key=self._pending.get):
            del self._pending[future]
            try:
                response = future.result()
            except BaseException:
                self._finished = True
                self.close()
                raise
            self._responses[response.sequence] = response
            self._buffer.append(response)
        return self._buffer.pop(0)

    def _execute(
        self, sequence: int, request: Request, plan: QueryPlan
    ) -> Response:
        result = execute_plan(
            self._client.engine, plan, request.query,
            context=self._contexts[plan.delta_t_s],
        )
        return Response(
            request=request,
            result=result,
            plan=plan,
            route=self._report.routes[sequence],
            sequence=sequence,
        )

    # -- accounting --------------------------------------------------------

    def _finalize(self) -> None:
        if self._finished:
            return
        self._finished = True
        engine = self._client.engine
        diff = engine.disk.snapshot() - self._before
        report = self._report
        report.wall_time_s = (
            time.perf_counter() - self._started if self._started else 0.0
        )
        report.io = diff
        report.simulated_io_ms = diff.page_reads * engine.disk.read_latency_ms
        report.regions_computed = sum(
            context.regions_computed for context in self._contexts.values()
        )
        report.regions_reused = sum(
            context.regions_reused for context in self._contexts.values()
        )
        report.results = [
            self._responses[sequence].result
            for sequence in sorted(self._responses)
        ]
        self.close()

    @property
    def report(self) -> BatchReport:
        """The batch totals; exact once the stream is exhausted."""
        return self._report

    @property
    def responses(self) -> list[Response]:
        """Responses received so far, in submission order."""
        return [self._responses[s] for s in sorted(self._responses)]

    def close(self) -> None:
        """Stop executing (pending requests are cancelled)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        self._pending.clear()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        self.close()


def as_client(
    target: "ReachabilityClient | QueryService | ReachabilityEngine",
) -> ReachabilityClient:
    """Adapt a service or engine to a client (call sites accept any)."""
    if isinstance(target, ReachabilityClient):
        return target
    return ReachabilityClient(target)
