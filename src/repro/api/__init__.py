"""The stable public API: request/response client with adaptive routing.

This package is the single front door to the query system.  Callers
build a frozen :class:`Request` (query + :class:`QueryOptions`: direction,
algorithm incl. ``"auto"``, Δt, warmth, tag, cost budget), hand it to a
:class:`ReachabilityClient`, and get a :class:`Response` back (result +
plan + per-query cost + the :class:`RouteDecision` that picked the
execution route).  Batches are streams: ``client.stream(requests)``
yields responses as they complete over a bounded-window worker pool, and
``client.run_batch`` aggregates the same pipeline into a
:class:`~repro.core.service.BatchReport`.

Quickstart::

    from repro.api import QueryOptions, ReachabilityClient, Request

    client = ReachabilityClient(engine)
    response = client.send(Request(query))          # auto-routed
    print(response.route.describe(), len(response.segments))

    requests = [
        Request(q, QueryOptions(direction="reverse", tag="ads")),
        Request(m_query),                            # auto -> MQMB+TBS
    ]
    for response in client.stream(requests, max_workers=4):
        print(response.describe())

The legacy entry points (``ReachabilityEngine.s_query`` / ``m_query`` /
``r_query`` and ``QueryService.query`` wrappers) still work but are
deprecated shims over this API.
"""

from repro.api.client import BatchStream, ReachabilityClient, as_client
from repro.api.envelope import AUTO, QueryOptions, Request, Response
from repro.api.router import (
    ROUTING_TABLE,
    RouteDecision,
    Router,
    RouterConfig,
)

__all__ = [
    "AUTO",
    "BatchStream",
    "QueryOptions",
    "ROUTING_TABLE",
    "ReachabilityClient",
    "Request",
    "Response",
    "RouteDecision",
    "Router",
    "RouterConfig",
    "as_client",
]
