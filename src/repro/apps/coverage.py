"""Business coverage analysis (§1.1, application 3).

"A chained company, such as UPS and McDonald's, can find their overall
business spatial coverage of their branches."

:func:`analyze_coverage` runs one m-query over all branch locations and
reports: total covered road length, the coverage fraction of the city, and
each branch's *marginal contribution* (how much coverage would be lost if
that branch closed) — the figure a planner looks at before opening or
consolidating branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.client import ReachabilityClient, as_client
from repro.api.envelope import QueryOptions, Request
from repro.core.engine import ReachabilityEngine
from repro.core.query import MQuery
from repro.core.service import QueryService
from repro.spatial.geometry import Point


@dataclass
class BranchCoverage:
    """Per-branch coverage attribution.

    Attributes:
        location: branch location.
        own_segments: size of the branch's own Prob-reachable region.
        exclusive_segments: segments only this branch covers.
        marginal_road_km: road length lost if the branch closed.
    """

    location: Point
    own_segments: int = 0
    exclusive_segments: int = 0
    marginal_road_km: float = 0.0


@dataclass
class CoverageReport:
    """Combined chain coverage.

    Attributes:
        segments: the union Prob-reachable segment set.
        road_km: total covered road length.
        coverage_fraction: covered road length / total network road length.
        branches: per-branch attribution, in input order.
    """

    segments: set[int] = field(default_factory=set)
    road_km: float = 0.0
    coverage_fraction: float = 0.0
    branches: list[BranchCoverage] = field(default_factory=list)


def _road_km(network, segments: set[int]) -> float:
    seen: set[int] = set()
    total = 0.0
    for segment_id in segments:
        segment = network.segment(segment_id)
        canonical = segment.canonical_id()
        if canonical in seen:
            continue
        seen.add(canonical)
        total += segment.length
    return total / 1000.0


def analyze_coverage(
    engine: ReachabilityClient | ReachabilityEngine | QueryService,
    branches: list[Point],
    start_time_s: float,
    duration_s: float,
    prob: float = 0.2,
    delta_t_s: int = 300,
) -> CoverageReport:
    """Compute chain-wide coverage and per-branch marginal contributions.

    Runs the union m-query and the per-branch attribution s-queries as one
    auto-routed client batch: the s-queries share warm buffer pools and
    deduplicated bounding regions with each other, so the whole analysis
    costs little more than the m-query itself.

    Args:
        engine: a built reachability engine, service or client.
        branches: branch locations.
        start_time_s / duration_s / prob: query parameters (e.g. "reachable
            within 15 minutes on 20% of days at 10:00").
        delta_t_s: index granularity.
    """
    if not branches:
        raise ValueError("coverage analysis needs at least one branch")
    client = as_client(engine)
    network = client.network
    union_query = MQuery(
        locations=tuple(branches),
        start_time_s=start_time_s,
        duration_s=duration_s,
        prob=prob,
    )
    options = QueryOptions(delta_t_s=delta_t_s)
    batch = client.run_batch(
        [
            Request(union_query, options),
            *(Request(q, options) for q in union_query.as_s_queries()),
        ]
    )
    combined, per_branch = batch.results[0], batch.results[1:]
    report = CoverageReport(segments=set(combined.segments))
    report.road_km = _road_km(network, report.segments)
    total_km = network.total_length() / 1000.0
    report.coverage_fraction = report.road_km / total_km if total_km else 0.0
    for index, (location, result) in enumerate(zip(branches, per_branch)):
        others: set[int] = set()
        for other_index, other in enumerate(per_branch):
            if other_index != index:
                others |= other.segments
        exclusive = result.segments - others
        report.branches.append(
            BranchCoverage(
                location=location,
                own_segments=len(result.segments),
                exclusive_segments=len(exclusive),
                marginal_road_km=_road_km(network, exclusive),
            )
        )
    return report
