"""Historical arrival-time profiles between two locations.

The same time lists that answer reachability queries also contain *when*
reachability happened: for each day, the earliest Δt-window in which some
trajectory that left the origin during the first slot shows up at the
destination.  :func:`arrival_profile` extracts that per-day distribution
and summarises it into the numbers a dispatcher or navigation feature
wants: how many minutes until the destination is reachable on a typical /
bad day, and on what fraction of days it is reachable at all.

Granularity is the index's Δt (the time lists do not store per-visit
timestamps — Fig 3.2 keys them by slot), so estimates are upper bounds
rounded up to whole slots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.api.client import ReachabilityClient, as_client
from repro.core.engine import ReachabilityEngine
from repro.core.service import QueryService
from repro.spatial.geometry import Point


@dataclass
class ArrivalProfile:
    """Per-day earliest arrival estimates between two locations.

    Attributes:
        origin_segment / target_segment: resolved road segments.
        horizon_s: search horizon (arrival beyond it counts as a miss).
        per_day_s: day -> earliest arrival bound in seconds (slot-rounded);
            days with no connecting trajectory are absent.
        reachable_days / total_days: support counts.
    """

    origin_segment: int
    target_segment: int
    horizon_s: int
    per_day_s: dict[int, int] = field(default_factory=dict)
    reachable_days: int = 0
    total_days: int = 0

    @property
    def reachability(self) -> float:
        """Fraction of days with any connection within the horizon."""
        return self.reachable_days / self.total_days if self.total_days else 0.0

    def percentile_s(self, fraction: float) -> int | None:
        """Arrival-time bound at the given percentile over *reachable* days.

        Args:
            fraction: e.g. ``0.5`` for the median day, ``0.9`` for a bad day.

        Returns:
            Seconds, or None when no day connects.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        values = sorted(self.per_day_s.values())
        if not values:
            return None
        index = min(len(values) - 1, math.ceil(fraction * len(values)) - 1)
        return values[index]

    def to_rows(self) -> list[tuple[str, str]]:
        median = self.percentile_s(0.5)
        p90 = self.percentile_s(0.9)
        return [
            ("reachable days", f"{self.reachable_days}/{self.total_days} "
                               f"({self.reachability:.0%})"),
            ("median arrival", f"<= {median // 60} min" if median else "-"),
            ("90th-pct arrival", f"<= {p90 // 60} min" if p90 else "-"),
        ]


def arrival_profile(
    engine: ReachabilityClient | ReachabilityEngine | QueryService,
    origin: Point,
    target: Point,
    start_time_s: float,
    horizon_s: int = 3600,
    delta_t_s: int = 300,
) -> ArrivalProfile:
    """Per-day earliest-arrival distribution from ``origin`` to ``target``.

    For each day, finds the smallest ``k`` such that a trajectory that
    passed the origin road during ``[T, T+Δt]`` also passed the target road
    within ``[T, T+k·Δt]``; the bound reported is ``k·Δt``.

    Args:
        engine: a built reachability engine, service or client.
        origin / target: the two locations.
        start_time_s: departure time ``T``.
        horizon_s: give up after this long.
        delta_t_s: index granularity (also the estimate resolution).
    """
    engine = as_client(engine).engine
    st = engine.st_index(delta_t_s)
    network = engine.network
    origin_segment = st.find_start_segment(origin)
    target_segment = st.find_start_segment(target)

    def merged_window(segment_id: int, start_s: float, end_s: float):
        merged = st.trajectories_in_window(segment_id, start_s, end_s)
        twin = network.segment(segment_id).twin_id
        if twin is not None and network.has_segment(twin):
            for date, ids in st.trajectories_in_window(
                twin, start_s, end_s
            ).items():
                merged.setdefault(date, set()).update(ids)
        return merged

    start_sets = merged_window(
        origin_segment, start_time_s, start_time_s + delta_t_s
    )
    profile = ArrivalProfile(
        origin_segment=origin_segment,
        target_segment=target_segment,
        horizon_s=horizon_s,
        total_days=engine.database.num_days,
    )
    if not start_sets:
        return profile
    steps = -(-horizon_s // delta_t_s)
    pending = {date for date, ids in start_sets.items() if ids}
    cumulative: dict[int, set[int]] = {}
    for k in range(1, steps + 1):
        if not pending:
            break
        window_start = start_time_s + (k - 1) * delta_t_s
        window_end = min(start_time_s + k * delta_t_s, start_time_s + horizon_s)
        for date, ids in merged_window(
            target_segment, window_start, window_end
        ).items():
            cumulative.setdefault(date, set()).update(ids)
        arrived = set()
        for date in pending:
            seen = cumulative.get(date)
            if seen and not start_sets[date].isdisjoint(seen):
                profile.per_day_s[date] = k * delta_t_s
                arrived.add(date)
        pending -= arrived
    profile.reachable_days = len(profile.per_day_s)
    return profile
