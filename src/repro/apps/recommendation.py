"""Location-based recommendation (§1.1, application 1).

"When a user wants to find a nearby restaurant based on her current
location and time, the spatio-temporal reachable region provides a
candidate list for location recommendations."

:func:`recommend_pois` answers exactly that: given the user's location and
time, a deadline, and a set of POIs, it runs one s-query and returns the
POIs inside the Prob-reachable region, ranked by reachability probability
(descending) and then straight-line distance (ascending).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.client import ReachabilityClient, as_client
from repro.api.envelope import QueryOptions, Request
from repro.core.engine import ReachabilityEngine
from repro.core.service import QueryService
from repro.core.query import SQuery
from repro.spatial.geometry import Point


@dataclass(frozen=True)
class POI:
    """A point of interest: a name and a location."""

    name: str
    location: Point
    category: str = ""


@dataclass(frozen=True)
class RankedPOI:
    """A recommended POI with its reachability evidence.

    Attributes:
        poi: the point of interest.
        segment_id: the road segment the POI resolves to.
        probability: reachability probability of that segment, when the
            query verified it explicitly (segments deep inside the region
            are accepted without verification; they report ``None``).
        distance_m: straight-line distance from the user.
    """

    poi: POI
    segment_id: int
    probability: float | None
    distance_m: float


def recommend_pois(
    engine: ReachabilityClient | ReachabilityEngine | QueryService,
    user_location: Point,
    start_time_s: float,
    deadline_s: float,
    pois: list[POI],
    prob: float = 0.2,
    top_k: int | None = None,
    delta_t_s: int = 300,
) -> list[RankedPOI]:
    """Rank the POIs reachable from the user within the deadline.

    Args:
        engine: a built reachability engine, service or client.
        user_location: the user's current location.
        start_time_s: current time of day (seconds since midnight).
        deadline_s: travel budget ``L`` in seconds.
        pois: candidate POIs.
        prob: required reachability confidence.
        top_k: truncate the ranking (None = all reachable POIs).
        delta_t_s: index granularity.

    Returns:
        Reachable POIs, most-probable and nearest first.
    """
    if not pois:
        return []
    query = SQuery(
        location=user_location,
        start_time_s=start_time_s,
        duration_s=deadline_s,
        prob=prob,
    )
    client = as_client(engine)
    result = client.send(
        Request(query, QueryOptions(delta_t_s=delta_t_s))
    ).result
    st = client.engine.st_index(delta_t_s)
    network = client.network
    region_roads = {
        network.segment(s).canonical_id() for s in result.segments
    }
    ranked: list[RankedPOI] = []
    for poi in pois:
        segment_id = st.find_start_segment(poi.location)
        if network.segment(segment_id).canonical_id() not in region_roads:
            continue
        probability = result.probabilities.get(segment_id)
        if probability is None:
            twin = network.segment(segment_id).twin_id
            if twin is not None:
                probability = result.probabilities.get(twin)
        ranked.append(
            RankedPOI(
                poi=poi,
                segment_id=segment_id,
                probability=probability,
                distance_m=user_location.distance_to(poi.location),
            )
        )
    ranked.sort(
        key=lambda r: (
            -(r.probability if r.probability is not None else 1.0),
            r.distance_m,
        )
    )
    return ranked[:top_k] if top_k is not None else ranked
