"""Multi-duration reachability contours (isochrones).

The paper's map figures (4.2, 4.4, 4.6) each show one region at one
duration.  A map product wants the whole family — the 5/10/15/... minute
contours around a location — and computing them as independent s-queries
re-reads the same time lists once per duration.  :func:`isochrones`
computes the family in one pass: probabilities for the *longest* horizon
are evaluated per Δt-prefix window, so each time list is read once and
every shorter contour falls out of the same reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.client import ReachabilityClient, as_client
from repro.core.engine import ReachabilityEngine
from repro.core.query import SQuery
from repro.core.service import QueryService
from repro.core.sqmb import sqmb_bounding_region
from repro.spatial.geometry import Point


@dataclass
class IsochroneBand:
    """One contour: everything reachable within ``duration_s``.

    Attributes:
        duration_s: the travel budget of this band.
        segments: the Prob-reachable segments within the budget
            (cumulative: each band contains the previous ones).
        road_km: total road length of the band.
    """

    duration_s: int
    segments: set[int] = field(default_factory=set)
    road_km: float = 0.0


def isochrones(
    engine: ReachabilityClient | ReachabilityEngine | QueryService,
    location: Point,
    start_time_s: float,
    durations_s: list[int],
    prob: float = 0.2,
    delta_t_s: int = 300,
) -> list[IsochroneBand]:
    """Compute nested Prob-reachable contours for several durations.

    One maximum bounding region (for the longest duration) is traced; for
    every segment in it the *earliest* Δt-window in which it becomes
    Prob-reachable is found with shared time-list reads, and each requested
    duration keeps the segments whose earliest window fits.

    Args:
        engine: a built reachability engine, service or client.
        location: contour centre.
        start_time_s: ``T``.
        durations_s: sorted-ascending travel budgets (seconds).
        prob: confidence threshold.
        delta_t_s: index granularity.

    Returns:
        One band per requested duration, ascending, cumulative.
    """
    if not durations_s:
        return []
    ordered = sorted(durations_s)
    horizon = ordered[-1]
    engine = as_client(engine).engine
    st = engine.st_index(delta_t_s)
    con = engine.con_index(delta_t_s)
    network = engine.network
    num_days = engine.database.num_days
    start_segment = st.find_start_segment(location)

    # Start-slot trajectory sets, read once.
    def merged_window(segment_id: int, start_s: float, end_s: float):
        merged = st.trajectories_in_window(segment_id, start_s, end_s)
        twin = network.segment(segment_id).twin_id
        if twin is not None and network.has_segment(twin):
            for date, ids in st.trajectories_in_window(
                twin, start_s, end_s
            ).items():
                merged.setdefault(date, set()).update(ids)
        return merged

    start_sets = merged_window(
        start_segment, start_time_s, start_time_s + delta_t_s
    )
    if not any(start_sets.values()):
        return [IsochroneBand(duration_s=d) for d in ordered]

    max_region = sqmb_bounding_region(
        con, start_segment, start_time_s, horizon, "far"
    )

    def earliest_window(segment_id: int) -> int | None:
        """Smallest k (slots) such that the segment is Prob-reachable
        within k*Δt; None if never within the horizon."""
        per_day_hits: dict[int, bool] = {}
        good_days = 0
        steps = -(-horizon // delta_t_s)  # ceil
        cumulative: dict[int, set[int]] = {}
        for k in range(1, steps + 1):
            window_start = start_time_s + (k - 1) * delta_t_s
            window_end = min(start_time_s + k * delta_t_s, start_time_s + horizon)
            for date, ids in merged_window(
                segment_id, window_start, window_end
            ).items():
                cumulative.setdefault(date, set()).update(ids)
            good_days = 0
            for date, start_ids in start_sets.items():
                seen = cumulative.get(date)
                if seen and not start_ids.isdisjoint(seen):
                    good_days += 1
            if good_days / num_days >= prob:
                return k * delta_t_s
        return None

    reach_time: dict[int, int] = {}
    for segment_id in max_region.cover:
        canonical_twin = network.segment(segment_id).twin_id
        if canonical_twin is not None and canonical_twin in reach_time:
            reach_time[segment_id] = reach_time[canonical_twin]
            continue
        earliest = earliest_window(segment_id)
        if earliest is not None:
            reach_time[segment_id] = earliest

    bands: list[IsochroneBand] = []
    for duration in ordered:
        segments = {
            segment_id
            for segment_id, earliest in reach_time.items()
            if earliest <= duration
        }
        band = IsochroneBand(duration_s=duration, segments=segments)
        seen: set[int] = set()
        total = 0.0
        for segment_id in segments:
            segment = network.segment(segment_id)
            canonical = segment.canonical_id()
            if canonical not in seen:
                seen.add(canonical)
                total += segment.length
        band.road_km = total / 1000.0
        bands.append(band)
    return bands
