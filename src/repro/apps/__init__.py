"""Application layer: the paper's §1.1 use cases as first-class APIs.

* :mod:`~repro.apps.recommendation` — location-based recommendation: rank
  the POIs a user can actually reach in time (§1.1 application 1).
* :mod:`~repro.apps.coverage` — business coverage analysis for a chain of
  branches, with marginal-contribution attribution (§1.1 application 3).
* :mod:`~repro.apps.isochrone` — multi-duration reachability contours,
  computed in one shared pass (the map products of Figs 4.2/4.4/4.6).
* :mod:`~repro.apps.eta` — historical earliest-arrival profiles between
  two locations (dispatching / navigation analytics).
"""

from repro.apps.coverage import BranchCoverage, CoverageReport, analyze_coverage
from repro.apps.eta import ArrivalProfile, arrival_profile
from repro.apps.isochrone import IsochroneBand, isochrones
from repro.apps.recommendation import RankedPOI, recommend_pois

__all__ = [
    "recommend_pois",
    "RankedPOI",
    "analyze_coverage",
    "CoverageReport",
    "BranchCoverage",
    "isochrones",
    "IsochroneBand",
    "arrival_profile",
    "ArrivalProfile",
]
