"""Synthetic datasets standing in for the paper's Shenzhen taxi data."""

from repro.datasets.shenzhen_like import (
    ShenzhenLikeConfig,
    ShenzhenLikeDataset,
    build_shenzhen_like,
    default_dataset,
)

__all__ = [
    "ShenzhenLikeConfig",
    "ShenzhenLikeDataset",
    "build_shenzhen_like",
    "default_dataset",
]
