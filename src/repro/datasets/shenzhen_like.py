"""The ShenzhenLike synthetic dataset.

Substitutes for the paper's evaluation data (Table 4.1: Shenzhen, 400 sq
miles, 21,385 taxis, 30 days, 407M GPS records) with a laptop-scale city
that preserves every property the algorithms exercise:

* a road network with primary arterials and secondary local roads,
  re-segmented at a fixed spatial granularity (§3.1);
* a taxi fleet producing one trajectory per taxi-day, continuously driving
  speed-weighted random walks biased toward the city centre (real taxi
  demand concentrates downtown — and so do the paper's query locations);
* time-of-day speeds with rush-hour congestion at ~07:45 and ~18:00, so
  reachable regions shrink at rush hour (Figs 4.5/4.6);
* tight speed noise, so the Con-Index Near/Far bounds bracket the true
  Prob-reachable region closely — the geometry that gives SQMB+TBS its
  advantage over exhaustive search.

Everything is deterministic given the config's seed.  The module-level
:func:`default_dataset` caches built datasets per config so the benchmark
suite builds each one once per session.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.network.generator import grid_city, random_planar_city, ring_radial_city
from repro.network.model import RoadLevel, RoadNetwork
from repro.network.segmentation import ResegmentationResult, resegment
from repro.spatial.geometry import Point
from repro.trajectory.generator import FleetConfig, TaxiFleetGenerator
from repro.trajectory.speed_profile import SpeedProfile
from repro.trajectory.store import TrajectoryDatabase


@dataclass(frozen=True)
class ShenzhenLikeConfig:
    """Dataset knobs (defaults tuned for the benchmark suite).

    Attributes:
        topology: city shape — ``"grid"`` (default), ``"ring_radial"``
            (concentric ring roads + spokes, a common Chinese-metropolis
            layout) or ``"random_planar"`` (Delaunay street web).
        grid_rows / grid_cols: intersections per side of the grid city.
        spacing_m: distance between intersections.
        granularity_m: re-segmentation granularity (paper example: 500 m).
        primary_every: every k-th street is a primary arterial.
        num_taxis / num_days: fleet size and dataset span.
        seed: master seed.
        center_bias: walk bias toward downtown (see FleetConfig).
        uniform_mix: fraction of trip endpoints drawn uniformly over the
            city (longer cross-town trips widen historical reach).
        idle_mean_s: mean idle gap between trips.
        primary_mps / secondary_mps: free-flow speeds.  The defaults are
            deliberately low so the 35-minute maximum bounding region of the
            longest benchmark query still fits inside the synthetic city —
            the same *city is much larger than any query region* geometry
            the paper's Shenzhen evaluation has.
        noise_sigma: per-sample speed noise; small values keep Near/Far
            bounds tight.
        jitter_m: random offset on intersection positions.
    """

    topology: str = "grid"
    grid_rows: int = 11
    grid_cols: int = 11
    spacing_m: float = 2400.0
    granularity_m: float = 800.0
    primary_every: int = 5
    num_taxis: int = 400
    num_days: int = 30
    seed: int = 42
    center_bias: float = 2.5
    uniform_mix: float = 0.4
    idle_mean_s: float = 90.0
    primary_mps: float = 5.0
    secondary_mps: float = 2.5
    noise_sigma: float = 0.05
    jitter_m: float = 0.0

    def scaled(self, **overrides) -> "ShenzhenLikeConfig":
        """A copy with some fields overridden (for tests/ablations)."""
        return replace(self, **overrides)


#: A small configuration for unit/integration tests: a few minutes to
#: generate is unacceptable there, a few hundred milliseconds is fine.
TEST_CONFIG = ShenzhenLikeConfig(
    grid_rows=5,
    grid_cols=5,
    spacing_m=1000.0,
    granularity_m=500.0,
    num_taxis=25,
    num_days=10,
)


def demo_config(config: ShenzhenLikeConfig) -> ShenzhenLikeConfig:
    """The demo configuration, shrunk to :data:`TEST_CONFIG` under CI.

    The example scripts build a city that takes a few seconds; with the
    ``REPRO_TEST_CONFIG`` environment variable set (the CI examples
    gate) they run the same code paths on the sub-second test city.
    """
    import os

    if os.environ.get("REPRO_TEST_CONFIG"):
        return TEST_CONFIG
    return config


@dataclass
class ShenzhenLikeDataset:
    """A fully built dataset: network + trajectories + speed profile."""

    config: ShenzhenLikeConfig
    original_network: RoadNetwork
    resegmentation: ResegmentationResult
    network: RoadNetwork
    profile: SpeedProfile
    database: TrajectoryDatabase
    center: Point = field(default_factory=lambda: Point(0.0, 0.0))

    @property
    def num_segments(self) -> int:
        return self.network.num_segments

    def describe(self) -> list[tuple[str, str]]:
        """Dataset-description rows in the spirit of Table 4.1."""
        bounds = self.network.bounds()
        rows = [
            (
                "City size",
                f"{bounds.width / 1000.0:.1f} x {bounds.height / 1000.0:.1f} km",
            ),
            ("Road segments (re-segmented)", f"{self.network.num_segments:,}"),
            (
                "Total road length",
                f"{self.network.total_length() / 1000.0:.1f} km",
            ),
        ]
        rows.extend(self.database.stats().as_rows())
        return rows


def build_shenzhen_like(
    config: ShenzhenLikeConfig | None = None,
) -> ShenzhenLikeDataset:
    """Generate the dataset (network, re-segmentation, fleet, database)."""
    cfg = config if config is not None else ShenzhenLikeConfig()
    if cfg.topology == "grid":
        original = grid_city(
            rows=cfg.grid_rows,
            cols=cfg.grid_cols,
            spacing=cfg.spacing_m,
            primary_every=cfg.primary_every,
            seed=cfg.seed,
            jitter=cfg.jitter_m,
            center_origin=True,
        )
    elif cfg.topology == "ring_radial":
        original = ring_radial_city(
            rings=max(2, cfg.grid_rows // 2),
            spokes=max(6, cfg.grid_cols),
            ring_spacing=cfg.spacing_m / 2.0,
            seed=cfg.seed,
        )
    elif cfg.topology == "random_planar":
        original = random_planar_city(
            num_nodes=cfg.grid_rows * cfg.grid_cols,
            extent=cfg.spacing_m * (cfg.grid_rows - 1),
            seed=cfg.seed,
        )
    else:
        raise ValueError(f"unknown topology {cfg.topology!r}")
    reseg = resegment(original, granularity=cfg.granularity_m)
    profile = SpeedProfile(
        free_flow_mps={
            RoadLevel.PRIMARY: cfg.primary_mps,
            RoadLevel.SECONDARY: cfg.secondary_mps,
        },
        noise_sigma=cfg.noise_sigma,
    )
    fleet = FleetConfig(
        num_taxis=cfg.num_taxis,
        num_days=cfg.num_days,
        seed=cfg.seed,
        center_bias=cfg.center_bias,
        dest_uniform_mix=cfg.uniform_mix,
        idle_mean_s=cfg.idle_mean_s,
    )
    generator = TaxiFleetGenerator(reseg.network, profile=profile, config=fleet)
    database = TrajectoryDatabase(num_taxis=cfg.num_taxis, num_days=cfg.num_days)
    generator.generate_into(database)
    return ShenzhenLikeDataset(
        config=cfg,
        original_network=original,
        resegmentation=reseg,
        network=reseg.network,
        profile=profile,
        database=database,
    )


_CACHE: dict[ShenzhenLikeConfig, ShenzhenLikeDataset] = {}


def default_dataset(
    config: ShenzhenLikeConfig | None = None,
) -> ShenzhenLikeDataset:
    """Build-once-per-process dataset cache (used by the benchmark suite)."""
    cfg = config if config is not None else ShenzhenLikeConfig()
    dataset = _CACHE.get(cfg)
    if dataset is None:
        dataset = build_shenzhen_like(cfg)
        _CACHE[cfg] = dataset
    return dataset
