"""Dataset persistence: save/load road networks and trajectory databases.

Building the synthetic fleet takes tens of seconds; persisting the built
dataset to disk makes repeat benchmark sessions and the CLI practical.
Road networks serialize to JSON, trajectory databases to compressed
flat-array ``.npz`` files, and a full dataset to a directory of both plus
its config.
"""

from repro.io.persist import (
    load_database,
    load_dataset,
    load_network,
    save_database,
    save_dataset,
    save_network,
)

__all__ = [
    "save_network",
    "load_network",
    "save_database",
    "load_database",
    "save_dataset",
    "load_dataset",
]
