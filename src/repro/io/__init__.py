"""Dataset persistence: save/load road networks and trajectory databases.

Building the synthetic fleet takes tens of seconds; persisting the built
dataset to disk makes repeat benchmark sessions and the CLI practical.
Road networks serialize to JSON, trajectory databases to compressed
flat-array ``.npz`` files, a full dataset to a directory of both plus
its config, and a built ST-Index to one ``.npz`` of disk pages plus its
extent-pointer directory (so deployments reload indexes without
re-indexing).
"""

from repro.io.persist import (
    load_database,
    load_dataset,
    load_network,
    load_st_index,
    save_database,
    save_dataset,
    save_network,
    save_st_index,
)

__all__ = [
    "save_network",
    "load_network",
    "save_database",
    "load_database",
    "save_dataset",
    "load_dataset",
    "save_st_index",
    "load_st_index",
]
