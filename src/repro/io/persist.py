"""Serialization of networks, databases and whole datasets.

Formats:

* **network** — JSON: nodes (id, x, y) and segments (id, start, end,
  shape, level, twin);
* **database** — one compressed ``.npz`` of flat arrays: per-trajectory
  metadata (ids, taxis, dates, offsets) plus the concatenated segment /
  time / speed columns;
* **dataset** — a directory holding ``network.json``,
  ``original_network.json``, ``database.npz`` and ``config.json`` so a
  built :class:`~repro.datasets.shenzhen_like.ShenzhenLikeDataset` round
  trips exactly;
* **ST-Index** — one ``.npz`` of the simulated disk's page buffer plus
  the time-list directory in the extent pointer format
  ``(first_page, num_pages, offset, length)``, so a built index reloads
  without re-indexing and serves byte-identical records with identical
  I/O accounting.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.network.model import RoadLevel, RoadNetwork, RoadSegment
from repro.network.segmentation import ResegmentationResult
from repro.spatial.geometry import Point
from repro.trajectory.store import TrajectoryDatabase

FORMAT_VERSION = 1

#: Version of the ST-Index ``.npz`` layout — independent of the dataset
#: formats above, so evolving one cannot invalidate saves of the other.
ST_INDEX_FORMAT_VERSION = 1


# -- road networks ------------------------------------------------------------


def network_to_dict(network: RoadNetwork) -> dict:
    """JSON-ready representation of a road network."""
    return {
        "version": FORMAT_VERSION,
        "nodes": [
            {"id": node_id, "x": point.x, "y": point.y}
            for node_id, point in sorted(network.nodes())
        ],
        "segments": [
            {
                "id": seg.segment_id,
                "start": seg.start_node,
                "end": seg.end_node,
                "shape": [[p.x, p.y] for p in seg.shape],
                "level": int(seg.level),
                "twin": seg.twin_id,
            }
            for seg in sorted(network.segments(), key=lambda s: s.segment_id)
        ],
    }


def network_from_dict(payload: dict) -> RoadNetwork:
    """Inverse of :func:`network_to_dict`."""
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported network format {payload.get('version')}")
    network = RoadNetwork()
    for node in payload["nodes"]:
        network.add_node(node["id"], Point(node["x"], node["y"]))
    for seg in payload["segments"]:
        network.add_segment(
            RoadSegment(
                segment_id=seg["id"],
                start_node=seg["start"],
                end_node=seg["end"],
                shape=tuple(Point(x, y) for x, y in seg["shape"]),
                level=RoadLevel(seg["level"]),
                twin_id=seg["twin"],
            )
        )
    return network


def save_network(network: RoadNetwork, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(network_to_dict(network)))
    return path


def load_network(path: str | Path) -> RoadNetwork:
    network = network_from_dict(json.loads(Path(path).read_text()))
    network.check_invariants()
    return network


# -- trajectory databases --------------------------------------------------------


def save_database(database: TrajectoryDatabase, path: str | Path) -> Path:
    """Persist a trajectory database as flat arrays."""
    path = Path(path)
    trajectory_ids: list[int] = []
    taxi_ids: list[int] = []
    dates: list[int] = []
    lengths: list[int] = []
    seg_parts, time_parts, speed_parts = [], [], []
    for compact in database._trajectories.values():
        trajectory_ids.append(compact.trajectory_id)
        taxi_ids.append(compact.taxi_id)
        dates.append(compact.date)
        lengths.append(len(compact.segments))
        seg_parts.append(compact.segments)
        time_parts.append(compact.times)
        speed_parts.append(compact.speeds)
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        num_taxis=np.int64(database.num_taxis),
        num_days=np.int64(database.num_days),
        trajectory_ids=np.asarray(trajectory_ids, dtype=np.int64),
        taxi_ids=np.asarray(taxi_ids, dtype=np.int64),
        dates=np.asarray(dates, dtype=np.int64),
        lengths=np.asarray(lengths, dtype=np.int64),
        segments=(
            np.concatenate(seg_parts) if seg_parts else np.empty(0, np.int32)
        ),
        times=(
            np.concatenate(time_parts) if time_parts else np.empty(0, np.float64)
        ),
        speeds=(
            np.concatenate(speed_parts)
            if speed_parts
            else np.empty(0, np.float32)
        ),
    )
    # np.savez appends .npz when missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_database(path: str | Path) -> TrajectoryDatabase:
    """Inverse of :func:`save_database`."""
    with np.load(Path(path)) as data:
        if int(data["version"]) != FORMAT_VERSION:
            raise ValueError(f"unsupported database format {int(data['version'])}")
        database = TrajectoryDatabase(
            num_taxis=int(data["num_taxis"]), num_days=int(data["num_days"])
        )
        lengths = data["lengths"]
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        segments = data["segments"]
        times = data["times"]
        speeds = data["speeds"]
        for i, trajectory_id in enumerate(data["trajectory_ids"]):
            lo, hi = offsets[i], offsets[i + 1]
            database.add_arrays(
                trajectory_id=int(trajectory_id),
                taxi_id=int(data["taxi_ids"][i]),
                date=int(data["dates"][i]),
                segments=segments[lo:hi],
                times=times[lo:hi],
                speeds=speeds[lo:hi],
            )
    database.finalize()
    return database


# -- ST-Indexes ----------------------------------------------------------------


def save_st_index(index, path: str | Path) -> Path:
    """Persist a built ST-Index: disk pages + extent-pointer directory.

    The directory flattens to one row per chain record — segment, slot,
    position in the chain, and the record's ``(first_page, num_pages,
    offset, length)`` extent pointer — alongside the disk's contiguous
    page buffer and per-page payload lengths.
    """
    from repro.core.st_index import STIndex

    if not isinstance(index, STIndex):
        raise TypeError(f"expected an STIndex, got {type(index).__name__}")
    if not index._built:
        raise ValueError("build the ST-Index before saving it")
    path = Path(path)
    index._store.flush()  # group commit: make the tail page durable
    buffer, used = index.disk.export_state()
    segments, slots, positions = [], [], []
    first_pages, num_pages, offsets, lengths = [], [], [], []
    for (segment_id, slot), chain in sorted(index._directory.items()):
        for position, pointer in enumerate(chain):
            segments.append(segment_id)
            slots.append(slot)
            positions.append(position)
            first_pages.append(pointer.first_page)
            num_pages.append(pointer.num_pages)
            offsets.append(pointer.offset)
            lengths.append(pointer.length)
    np.savez_compressed(
        path,
        version=np.int64(ST_INDEX_FORMAT_VERSION),
        delta_t_s=np.int64(index.delta_t_s),
        page_size=np.int64(index.disk.page_size),
        read_latency_ms=np.float64(index.disk.read_latency_ms),
        write_latency_ms=np.float64(index.disk.write_latency_ms),
        buffer_pool_pages=np.int64(index.pool.capacity),
        record_cache_size=np.int64(index.record_cache_size),
        pages=np.frombuffer(buffer, dtype=np.uint8),
        page_used=np.asarray(used, dtype=np.int64),
        dir_segment=np.asarray(segments, dtype=np.int64),
        dir_slot=np.asarray(slots, dtype=np.int64),
        dir_position=np.asarray(positions, dtype=np.int64),
        dir_first_page=np.asarray(first_pages, dtype=np.int64),
        dir_num_pages=np.asarray(num_pages, dtype=np.int64),
        dir_offset=np.asarray(offsets, dtype=np.int64),
        dir_length=np.asarray(lengths, dtype=np.int64),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_st_index(path: str | Path, network: RoadNetwork):
    """Inverse of :func:`save_st_index` (needs the matching network)."""
    from repro.core.st_index import STIndex
    from repro.storage.disk import SimulatedDisk
    from repro.storage.pagestore import RecordPointer

    with np.load(Path(path)) as data:
        if int(data["version"]) != ST_INDEX_FORMAT_VERSION:
            raise ValueError(
                f"unsupported ST-Index format {int(data['version'])}"
            )
        disk = SimulatedDisk.from_state(
            data["pages"].tobytes(),
            data["page_used"].tolist(),
            page_size=int(data["page_size"]),
            read_latency_ms=float(data["read_latency_ms"]),
            write_latency_ms=float(data["write_latency_ms"]),
        )
        directory: dict[tuple[int, int], list[RecordPointer]] = {}
        rows = zip(
            data["dir_segment"].tolist(),
            data["dir_slot"].tolist(),
            data["dir_position"].tolist(),
            data["dir_first_page"].tolist(),
            data["dir_num_pages"].tolist(),
            data["dir_offset"].tolist(),
            data["dir_length"].tolist(),
        )
        page_size = int(data["page_size"])
        num_pages_total = int(data["page_used"].shape[0])
        for segment_id, slot, position, first_page, pages, offset, length in rows:
            chain = directory.setdefault((segment_id, slot), [])
            if position != len(chain):
                raise ValueError("ST-Index directory rows out of chain order")
            # Validate extent geometry up front: a corrupt pointer would
            # otherwise serve wrong bytes (or charge the wrong number of
            # page reads) deep inside a query instead of failing here.
            if (
                pages < 1
                or first_page < 0
                or first_page + pages > num_pages_total
                or offset < 0
                or length < 0
                or offset + length > pages * page_size
            ):
                raise ValueError(
                    f"ST-Index pointer ({first_page}, {pages}, {offset}, "
                    f"{length}) outside the persisted page range"
                )
            chain.append(RecordPointer(first_page, pages, offset, length))
        return STIndex.restore(
            network,
            int(data["delta_t_s"]),
            disk,
            directory,
            buffer_pool_pages=int(data["buffer_pool_pages"]),
            record_cache_size=int(data["record_cache_size"]),
        )


# -- whole datasets ---------------------------------------------------------------


def save_dataset(dataset, directory: str | Path) -> Path:
    """Persist a ShenzhenLikeDataset to a directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_network(dataset.network, directory / "network.json")
    save_network(dataset.original_network, directory / "original_network.json")
    save_database(dataset.database, directory / "database.npz")
    config = dataclasses.asdict(dataset.config)
    (directory / "config.json").write_text(json.dumps(config, indent=2))
    mapping = {
        "piece_map": {
            str(k): v for k, v in dataset.resegmentation.piece_map.items()
        },
        "origin_map": {
            str(k): v for k, v in dataset.resegmentation.origin_map.items()
        },
    }
    (directory / "resegmentation.json").write_text(json.dumps(mapping))
    return directory


def load_dataset(directory: str | Path):
    """Inverse of :func:`save_dataset`."""
    from repro.datasets.shenzhen_like import (
        ShenzhenLikeConfig,
        ShenzhenLikeDataset,
    )
    from repro.trajectory.speed_profile import SpeedProfile
    from repro.network.model import RoadLevel

    directory = Path(directory)
    config_raw = json.loads((directory / "config.json").read_text())
    config = ShenzhenLikeConfig(**config_raw)
    network = load_network(directory / "network.json")
    original = load_network(directory / "original_network.json")
    database = load_database(directory / "database.npz")
    mapping = json.loads((directory / "resegmentation.json").read_text())
    resegmentation = ResegmentationResult(
        network=network,
        piece_map={int(k): v for k, v in mapping["piece_map"].items()},
        origin_map={int(k): v for k, v in mapping["origin_map"].items()},
    )
    profile = SpeedProfile(
        free_flow_mps={
            RoadLevel.PRIMARY: config.primary_mps,
            RoadLevel.SECONDARY: config.secondary_mps,
        },
        noise_sigma=config.noise_sigma,
    )
    return ShenzhenLikeDataset(
        config=config,
        original_network=original,
        resegmentation=resegmentation,
        network=network,
        profile=profile,
        database=database,
    )
