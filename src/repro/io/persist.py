"""Serialization of networks, databases and whole datasets.

Formats:

* **network** — JSON: nodes (id, x, y) and segments (id, start, end,
  shape, level, twin);
* **database** — one compressed ``.npz`` of flat arrays: per-trajectory
  metadata (ids, taxis, dates, offsets) plus the concatenated segment /
  time / speed columns;
* **dataset** — a directory holding ``network.json``,
  ``original_network.json``, ``database.npz`` and ``config.json`` so a
  built :class:`~repro.datasets.shenzhen_like.ShenzhenLikeDataset` round
  trips exactly;
* **ST-Index** — one ``.npz`` of the simulated disk's page buffer plus
  the time-list directory in the extent pointer format
  ``(first_page, num_pages, offset, length)``, so a built index reloads
  without re-indexing and serves byte-identical records with identical
  I/O accounting.
"""

from __future__ import annotations

import dataclasses
import io
import json
from pathlib import Path

import numpy as np

from repro.network.model import RoadLevel, RoadNetwork, RoadSegment
from repro.network.segmentation import ResegmentationResult
from repro.spatial.geometry import Point
from repro.trajectory.store import TrajectoryDatabase

FORMAT_VERSION = 1

#: Version of the ST-Index ``.npz`` layout — independent of the dataset
#: formats above, so evolving one cannot invalidate saves of the other.
ST_INDEX_FORMAT_VERSION = 1

#: Version of the durable store-bundle directory layout (:func:`save_store`).
STORE_FORMAT_VERSION = 1


class PersistFormatError(ValueError):
    """A persisted artifact cannot be interpreted by this code.

    Raised for truncated or garbage files, wrong magic, unsupported
    format versions and shape/geometry violations found during loading —
    always with a message naming the file and the problem, never a raw
    ``numpy``/``zipfile``/``KeyError`` surfacing from the codec guts.
    Subclasses :class:`ValueError`, so callers that guarded against the
    old untyped raises keep working.
    """


def _open_npz(path: Path, what: str):
    """``np.load`` with failures mapped to :class:`PersistFormatError`."""
    try:
        return np.load(path)
    except FileNotFoundError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, OSError, ValueError, ...
        raise PersistFormatError(
            f"{what} file {path} is not a readable .npz archive: {exc}"
        ) from None


def _npz_fields(data, keys: tuple[str, ...], what: str, path: Path) -> None:
    missing = [key for key in keys if key not in data]
    if missing:
        raise PersistFormatError(
            f"{what} file {path} is missing required arrays: {', '.join(missing)}"
        )


# -- road networks ------------------------------------------------------------


def network_to_dict(network: RoadNetwork) -> dict:
    """JSON-ready representation of a road network."""
    return {
        "version": FORMAT_VERSION,
        "nodes": [
            {"id": node_id, "x": point.x, "y": point.y}
            for node_id, point in sorted(network.nodes())
        ],
        "segments": [
            {
                "id": seg.segment_id,
                "start": seg.start_node,
                "end": seg.end_node,
                "shape": [[p.x, p.y] for p in seg.shape],
                "level": int(seg.level),
                "twin": seg.twin_id,
            }
            for seg in sorted(network.segments(), key=lambda s: s.segment_id)
        ],
    }


def network_from_dict(payload: dict) -> RoadNetwork:
    """Inverse of :func:`network_to_dict`."""
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported network format {payload.get('version')}")
    network = RoadNetwork()
    for node in payload["nodes"]:
        network.add_node(node["id"], Point(node["x"], node["y"]))
    for seg in payload["segments"]:
        network.add_segment(
            RoadSegment(
                segment_id=seg["id"],
                start_node=seg["start"],
                end_node=seg["end"],
                shape=tuple(Point(x, y) for x, y in seg["shape"]),
                level=RoadLevel(seg["level"]),
                twin_id=seg["twin"],
            )
        )
    return network


def save_network(network: RoadNetwork, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(network_to_dict(network)))
    return path


def load_network(path: str | Path) -> RoadNetwork:
    network = network_from_dict(json.loads(Path(path).read_text()))
    network.check_invariants()
    return network


# -- trajectory databases --------------------------------------------------------


def save_database(database: TrajectoryDatabase, path: str | Path) -> Path:
    """Persist a trajectory database as flat arrays."""
    path = Path(path)
    trajectory_ids: list[int] = []
    taxi_ids: list[int] = []
    dates: list[int] = []
    lengths: list[int] = []
    seg_parts, time_parts, speed_parts = [], [], []
    for compact in database._trajectories.values():
        trajectory_ids.append(compact.trajectory_id)
        taxi_ids.append(compact.taxi_id)
        dates.append(compact.date)
        lengths.append(len(compact.segments))
        seg_parts.append(compact.segments)
        time_parts.append(compact.times)
        speed_parts.append(compact.speeds)
    np.savez_compressed(
        path,
        version=np.int64(FORMAT_VERSION),
        num_taxis=np.int64(database.num_taxis),
        num_days=np.int64(database.num_days),
        trajectory_ids=np.asarray(trajectory_ids, dtype=np.int64),
        taxi_ids=np.asarray(taxi_ids, dtype=np.int64),
        dates=np.asarray(dates, dtype=np.int64),
        lengths=np.asarray(lengths, dtype=np.int64),
        segments=(
            np.concatenate(seg_parts) if seg_parts else np.empty(0, np.int32)
        ),
        times=(
            np.concatenate(time_parts) if time_parts else np.empty(0, np.float64)
        ),
        speeds=(
            np.concatenate(speed_parts)
            if speed_parts
            else np.empty(0, np.float32)
        ),
    )
    # np.savez appends .npz when missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_database(path: str | Path) -> TrajectoryDatabase:
    """Inverse of :func:`save_database`."""
    path = Path(path)
    with _open_npz(path, "database") as data:
        _npz_fields(
            data,
            (
                "version",
                "num_taxis",
                "num_days",
                "trajectory_ids",
                "taxi_ids",
                "dates",
                "lengths",
                "segments",
                "times",
                "speeds",
            ),
            "database",
            path,
        )
        if int(data["version"]) != FORMAT_VERSION:
            raise PersistFormatError(
                f"unsupported database format {int(data['version'])} "
                f"(supported: {FORMAT_VERSION})"
            )
        database = TrajectoryDatabase(
            num_taxis=int(data["num_taxis"]), num_days=int(data["num_days"])
        )
        lengths = data["lengths"]
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        segments = data["segments"]
        times = data["times"]
        speeds = data["speeds"]
        for i, trajectory_id in enumerate(data["trajectory_ids"]):
            lo, hi = offsets[i], offsets[i + 1]
            database.add_arrays(
                trajectory_id=int(trajectory_id),
                taxi_id=int(data["taxi_ids"][i]),
                date=int(data["dates"][i]),
                segments=segments[lo:hi],
                times=times[lo:hi],
                speeds=speeds[lo:hi],
            )
    database.finalize()
    return database


# -- ST-Indexes ----------------------------------------------------------------


def save_st_index(index, path: str | Path) -> Path:
    """Persist a built ST-Index: disk pages + extent-pointer directory.

    The directory flattens to one row per chain record — segment, slot,
    position in the chain, and the record's ``(first_page, num_pages,
    offset, length)`` extent pointer — alongside the disk's contiguous
    page buffer and per-page payload lengths.
    """
    from repro.core.st_index import STIndex

    if not isinstance(index, STIndex):
        raise TypeError(f"expected an STIndex, got {type(index).__name__}")
    if not index._built:
        raise ValueError("build the ST-Index before saving it")
    path = Path(path)
    index._store.flush()  # group commit: make the tail page durable
    buffer, used = index.disk.export_state()
    segments, slots, positions = [], [], []
    first_pages, num_pages, offsets, lengths = [], [], [], []
    for (segment_id, slot), chain in sorted(index._directory.items()):
        for position, pointer in enumerate(chain):
            segments.append(segment_id)
            slots.append(slot)
            positions.append(position)
            first_pages.append(pointer.first_page)
            num_pages.append(pointer.num_pages)
            offsets.append(pointer.offset)
            lengths.append(pointer.length)
    np.savez_compressed(
        path,
        version=np.int64(ST_INDEX_FORMAT_VERSION),
        delta_t_s=np.int64(index.delta_t_s),
        page_size=np.int64(index.disk.page_size),
        read_latency_ms=np.float64(index.disk.read_latency_ms),
        write_latency_ms=np.float64(index.disk.write_latency_ms),
        buffer_pool_pages=np.int64(index.pool.capacity),
        record_cache_size=np.int64(index.record_cache_size),
        pages=np.frombuffer(buffer, dtype=np.uint8),
        page_used=np.asarray(used, dtype=np.int64),
        dir_segment=np.asarray(segments, dtype=np.int64),
        dir_slot=np.asarray(slots, dtype=np.int64),
        dir_position=np.asarray(positions, dtype=np.int64),
        dir_first_page=np.asarray(first_pages, dtype=np.int64),
        dir_num_pages=np.asarray(num_pages, dtype=np.int64),
        dir_offset=np.asarray(offsets, dtype=np.int64),
        dir_length=np.asarray(lengths, dtype=np.int64),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def _validated_pointer(
    first_page: int,
    pages: int,
    offset: int,
    length: int,
    num_pages_total: int,
    page_size: int,
    what: str,
):
    """Range-check one extent pointer; returns a ``RecordPointer``.

    A corrupt pointer would otherwise serve wrong bytes (or charge the
    wrong number of page reads) deep inside a query instead of failing
    at load time.
    """
    from repro.storage.pagestore import RecordPointer

    if (
        pages < 1
        or first_page < 0
        or first_page + pages > num_pages_total
        or offset < 0
        or length < 0
        or offset + length > pages * page_size
    ):
        raise PersistFormatError(
            f"{what} pointer ({first_page}, {pages}, {offset}, {length}) "
            "outside the persisted page range"
        )
    return RecordPointer(first_page, pages, offset, length)


def load_st_index(path: str | Path, network: RoadNetwork):
    """Inverse of :func:`save_st_index` (needs the matching network).

    Raises :class:`PersistFormatError` on a truncated or garbage file,
    a missing array, an unsupported format version, or page/pointer
    geometry that does not cohere — always before any data is served.
    """
    from repro.core.st_index import STIndex
    from repro.storage.disk import DiskError, SimulatedDisk
    from repro.storage.pagestore import RecordPointer

    path = Path(path)
    with _open_npz(path, "ST-Index") as data:
        _npz_fields(
            data,
            (
                "version",
                "delta_t_s",
                "page_size",
                "read_latency_ms",
                "write_latency_ms",
                "buffer_pool_pages",
                "record_cache_size",
                "pages",
                "page_used",
                "dir_segment",
                "dir_slot",
                "dir_position",
                "dir_first_page",
                "dir_num_pages",
                "dir_offset",
                "dir_length",
            ),
            "ST-Index",
            path,
        )
        if int(data["version"]) != ST_INDEX_FORMAT_VERSION:
            raise PersistFormatError(
                f"unsupported ST-Index format {int(data['version'])} "
                f"(supported: {ST_INDEX_FORMAT_VERSION})"
            )
        dir_arrays = [
            data["dir_segment"],
            data["dir_slot"],
            data["dir_position"],
            data["dir_first_page"],
            data["dir_num_pages"],
            data["dir_offset"],
            data["dir_length"],
        ]
        if len({arr.shape for arr in dir_arrays}) != 1 or dir_arrays[0].ndim != 1:
            raise PersistFormatError(
                f"ST-Index file {path} directory columns have mismatched shapes"
            )
        page_size = int(data["page_size"])
        num_pages_total = int(data["page_used"].shape[0])
        if data["pages"].size != num_pages_total * page_size:
            raise PersistFormatError(
                f"ST-Index file {path} page buffer holds {data['pages'].size} "
                f"bytes, expected {num_pages_total} pages of {page_size}"
            )
        try:
            disk = SimulatedDisk.from_state(
                data["pages"].tobytes(),
                data["page_used"].tolist(),
                page_size=page_size,
                read_latency_ms=float(data["read_latency_ms"]),
                write_latency_ms=float(data["write_latency_ms"]),
            )
        except DiskError as exc:
            raise PersistFormatError(
                f"ST-Index file {path} page geometry is invalid: {exc}"
            ) from None
        directory: dict[tuple[int, int], list[RecordPointer]] = {}
        rows = zip(*(arr.tolist() for arr in dir_arrays))
        for segment_id, slot, position, first_page, pages, offset, length in rows:
            chain = directory.setdefault((segment_id, slot), [])
            if position != len(chain):
                raise PersistFormatError(
                    "ST-Index directory rows out of chain order"
                )
            chain.append(
                _validated_pointer(
                    first_page,
                    pages,
                    offset,
                    length,
                    num_pages_total,
                    page_size,
                    "ST-Index",
                )
            )
        return STIndex.restore(
            network,
            int(data["delta_t_s"]),
            disk,
            directory,
            buffer_pool_pages=int(data["buffer_pool_pages"]),
            record_cache_size=int(data["record_cache_size"]),
        )


# -- durable engine stores -----------------------------------------------------


def _speed_model_to_json(model: dict) -> dict:
    """JSON-safe speed model (int stat keys become strings)."""
    out = dict(model)
    for field in ("stats_min", "stats_max", "stats_sum", "stats_count"):
        out[field] = {str(k): v for k, v in model[field].items()}
    return out


def _speed_model_from_json(payload: dict) -> dict:
    model = dict(payload)
    try:
        for field in ("stats_min", "stats_max", "stats_sum", "stats_count"):
            model[field] = {int(k): v for k, v in payload[field].items()}
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistFormatError(f"speed model is malformed: {exc}") from None
    return model


def _directory_npz_bytes(
    index, journal_generation: int, applied_commits: int
) -> bytes:
    """The store bundle's directory file, serialised for atomic publish.

    ``journal_generation``/``applied_commits`` record which prefix of the
    disk's journal this directory already reflects, so :func:`open_store`
    replays exactly the suffix of appends committed after the save.
    """
    segments, slots, positions = [], [], []
    first_pages, num_pages, offsets, lengths = [], [], [], []
    for (segment_id, slot), chain in sorted(index._directory.items()):
        for position, pointer in enumerate(chain):
            segments.append(segment_id)
            slots.append(slot)
            positions.append(position)
            first_pages.append(pointer.first_page)
            num_pages.append(pointer.num_pages)
            offsets.append(pointer.offset)
            lengths.append(pointer.length)
    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        version=np.int64(STORE_FORMAT_VERSION),
        journal_generation=np.int64(journal_generation),
        applied_commits=np.int64(applied_commits),
        dir_segment=np.asarray(segments, dtype=np.int64),
        dir_slot=np.asarray(slots, dtype=np.int64),
        dir_position=np.asarray(positions, dtype=np.int64),
        dir_first_page=np.asarray(first_pages, dtype=np.int64),
        dir_num_pages=np.asarray(num_pages, dtype=np.int64),
        dir_offset=np.asarray(offsets, dtype=np.int64),
        dir_length=np.asarray(lengths, dtype=np.int64),
    )
    return buf.getvalue()


def save_store(engine, directory: str | Path, delta_t_s: int) -> Path:
    """Persist an engine as a durable, crash-safe store-bundle directory.

    Layout: ``network.json``, ``speed_model.json``, ``store.json`` (the
    knobs), ``directory.npz`` (the ST-Index directory plus the journal
    position it reflects) and ``disk/`` (a :class:`FileBackedDisk`
    store).  Every file is published with an atomic replace.

    Two save paths:

    * engine already on a ``FileBackedDisk`` at ``<directory>/disk`` —
      the *in-place* save: write ``directory.npz`` first (it names the
      journal prefix it covers), then checkpoint the disk.  A crash at
      any point leaves a store that opens to exactly the pre- or
      post-save state.
    * any other disk — export the page buffer into a fresh
      ``FileBackedDisk``.  ``directory.npz`` is removed up front and
      rewritten last, so a crash mid-save leaves a store that
      :func:`open_store` rejects as incomplete rather than one that
      silently mixes old and new state.
    """
    from repro.storage.backends import FileBackedDisk, atomic_replace

    index = engine.st_index(delta_t_s)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    disk_dir = directory / "disk"
    index._store.flush()  # group commit: make the tail page durable
    atomic_replace(
        directory / "network.json",
        json.dumps(network_to_dict(engine.network)).encode(),
    )
    atomic_replace(
        directory / "speed_model.json",
        json.dumps(_speed_model_to_json(engine.database.export_speed_model())).encode(),
    )
    atomic_replace(
        directory / "store.json",
        json.dumps(
            {
                "version": STORE_FORMAT_VERSION,
                "delta_t_s": int(delta_t_s),
                "engine_pool_pages": int(engine.buffer_pool_pages),
                "st_pool_pages": int(index.pool.capacity),
                "record_cache_size": int(index.record_cache_size),
            },
            indent=2,
            sort_keys=True,
        ).encode(),
    )
    in_place = isinstance(engine.disk, FileBackedDisk) and (
        Path(engine.disk.path).resolve() == disk_dir.resolve()
    )
    if in_place:
        disk = engine.disk
        atomic_replace(
            directory / "directory.npz",
            _directory_npz_bytes(
                index,
                journal_generation=disk.generation,
                applied_commits=disk.journal_record_count,
            ),
        )
        disk.checkpoint()
    else:
        (directory / "directory.npz").unlink(missing_ok=True)
        buffer, used = engine.disk.export_state()
        disk = FileBackedDisk.create_from_state(
            disk_dir,
            buffer,
            used,
            page_size=engine.disk.page_size,
            read_latency_ms=engine.disk.read_latency_ms,
            write_latency_ms=engine.disk.write_latency_ms,
        )
        disk.close()
        atomic_replace(
            directory / "directory.npz",
            _directory_npz_bytes(
                index, journal_generation=disk.generation, applied_commits=0
            ),
        )
    return directory


def open_store(directory: str | Path, crash_plan=None, readonly: bool = False):
    """Open a :func:`save_store` bundle as a cold, durable engine.

    Loads the superblock, sidecar, journal and directory — but no data
    pages: the returned engine's :class:`FileBackedDisk` faults pages in
    (checksum-verified) on first access, so serving can begin before the
    trajectory data is read.  Journal records committed after the last
    save are replayed onto the directory, so appends survive without a
    snapshot rewrite; replay is idempotent across repeated opens.

    Raises :class:`PersistFormatError` for an incomplete or malformed
    bundle and the disk's typed
    :class:`~repro.storage.backends.CorruptSnapshotError` /
    :class:`~repro.storage.backends.TornWriteError` for verified damage.
    """
    from repro.core.engine import ReachabilityEngine
    from repro.core.st_index import STIndex
    from repro.storage.backends import FileBackedDisk
    from repro.storage.pagestore import RecordPointer
    from repro.storage.serialization import (
        SerializationError,
        decode_append_delta,
    )

    directory = Path(directory)
    for name in ("store.json", "network.json", "speed_model.json", "directory.npz"):
        if not (directory / name).exists():
            raise PersistFormatError(
                f"store at {directory} is incomplete: missing {name}"
            )
    try:
        config = json.loads((directory / "store.json").read_text())
    except ValueError as exc:
        raise PersistFormatError(f"store.json is not valid JSON: {exc}") from None
    if not isinstance(config, dict) or config.get("version") != STORE_FORMAT_VERSION:
        raise PersistFormatError(
            f"unsupported store format {config.get('version')!r} "
            f"(supported: {STORE_FORMAT_VERSION})"
            if isinstance(config, dict)
            else "store.json is not a JSON object"
        )
    delta_t_s = int(config["delta_t_s"])
    disk = FileBackedDisk.open(
        directory / "disk", crash_plan=crash_plan, readonly=readonly
    )
    network = load_network(directory / "network.json")
    database = TrajectoryDatabase.from_speed_model(
        _speed_model_from_json(json.loads((directory / "speed_model.json").read_text()))
    )
    page_size = disk.page_size
    num_pages_total = disk.num_pages
    dir_path = directory / "directory.npz"
    pointer_map: dict[tuple[int, int], list[RecordPointer]] = {}
    with _open_npz(dir_path, "store directory") as data:
        _npz_fields(
            data,
            (
                "version",
                "journal_generation",
                "applied_commits",
                "dir_segment",
                "dir_slot",
                "dir_position",
                "dir_first_page",
                "dir_num_pages",
                "dir_offset",
                "dir_length",
            ),
            "store directory",
            dir_path,
        )
        if int(data["version"]) != STORE_FORMAT_VERSION:
            raise PersistFormatError(
                f"unsupported store directory format {int(data['version'])} "
                f"(supported: {STORE_FORMAT_VERSION})"
            )
        journal_generation = int(data["journal_generation"])
        applied_commits = int(data["applied_commits"])
        rows = zip(
            data["dir_segment"].tolist(),
            data["dir_slot"].tolist(),
            data["dir_position"].tolist(),
            data["dir_first_page"].tolist(),
            data["dir_num_pages"].tolist(),
            data["dir_offset"].tolist(),
            data["dir_length"].tolist(),
        )
        for segment_id, slot, position, first_page, pages, offset, length in rows:
            chain = pointer_map.setdefault((segment_id, slot), [])
            if position != len(chain):
                raise PersistFormatError(
                    "store directory rows out of chain order"
                )
            chain.append(
                _validated_pointer(
                    first_page,
                    pages,
                    offset,
                    length,
                    num_pages_total,
                    page_size,
                    "store directory",
                )
            )
    # Replay the journal suffix the saved directory does not yet reflect.
    metas = disk.journal_metas
    if disk.generation == journal_generation:
        applied = min(applied_commits, len(metas))
    elif disk.generation > journal_generation:
        # A checkpoint ran after the directory was saved; the saved
        # directory already covers everything the old journal held, and
        # the current journal holds only post-save commits.
        applied = 0
    else:
        raise PersistFormatError(
            f"store directory reflects disk generation {journal_generation}, "
            f"newer than the disk's generation {disk.generation}"
        )
    for meta in metas[applied:]:
        if not meta:
            continue
        try:
            meta_delta_t, entries = decode_append_delta(meta)
        except SerializationError as exc:
            raise PersistFormatError(
                f"journal append delta is malformed: {exc}"
            ) from None
        if meta_delta_t != delta_t_s:
            raise PersistFormatError(
                f"journal append delta was written at Δt={meta_delta_t}s, "
                f"store is Δt={delta_t_s}s"
            )
        for segment_id, slot, first_page, pages, offset, length in entries:
            pointer_map.setdefault((segment_id, slot), []).append(
                _validated_pointer(
                    first_page,
                    pages,
                    offset,
                    length,
                    num_pages_total,
                    page_size,
                    "journal append delta",
                )
            )
    engine = ReachabilityEngine(
        network,
        database,
        disk=disk,
        buffer_pool_pages=int(config.get("engine_pool_pages", 1024)),
    )
    index = STIndex.restore(
        network,
        delta_t_s,
        disk,
        pointer_map,
        buffer_pool_pages=int(config.get("st_pool_pages", 512)),
        record_cache_size=int(config.get("record_cache_size", 4096)),
    )
    engine.install_st_index(delta_t_s, index)
    return engine


# -- whole datasets ---------------------------------------------------------------


def save_dataset(dataset, directory: str | Path) -> Path:
    """Persist a ShenzhenLikeDataset to a directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_network(dataset.network, directory / "network.json")
    save_network(dataset.original_network, directory / "original_network.json")
    save_database(dataset.database, directory / "database.npz")
    config = dataclasses.asdict(dataset.config)
    (directory / "config.json").write_text(json.dumps(config, indent=2))
    mapping = {
        "piece_map": {
            str(k): v for k, v in dataset.resegmentation.piece_map.items()
        },
        "origin_map": {
            str(k): v for k, v in dataset.resegmentation.origin_map.items()
        },
    }
    (directory / "resegmentation.json").write_text(json.dumps(mapping))
    return directory


def load_dataset(directory: str | Path):
    """Inverse of :func:`save_dataset`."""
    from repro.datasets.shenzhen_like import (
        ShenzhenLikeConfig,
        ShenzhenLikeDataset,
    )
    from repro.trajectory.speed_profile import SpeedProfile
    from repro.network.model import RoadLevel

    directory = Path(directory)
    config_raw = json.loads((directory / "config.json").read_text())
    config = ShenzhenLikeConfig(**config_raw)
    network = load_network(directory / "network.json")
    original = load_network(directory / "original_network.json")
    database = load_database(directory / "database.npz")
    mapping = json.loads((directory / "resegmentation.json").read_text())
    resegmentation = ResegmentationResult(
        network=network,
        piece_map={int(k): v for k, v in mapping["piece_map"].items()},
        origin_map={int(k): v for k, v in mapping["origin_map"].items()},
    )
    profile = SpeedProfile(
        free_flow_mps={
            RoadLevel.PRIMARY: config.primary_mps,
            RoadLevel.SECONDARY: config.secondary_mps,
        },
        noise_sigma=config.noise_sigma,
    )
    return ShenzhenLikeDataset(
        config=config,
        original_network=original,
        resegmentation=resegmentation,
        network=network,
        profile=profile,
        database=database,
    )
