"""Query planning: from a query to an inspectable :class:`QueryPlan`.

The planner is the routing layer of the query service.  Given a query, an
algorithm name and an index granularity it decides *how* the query will be
executed — which registered executor runs, which bounding-region strategy
feeds trace-back, how many Δt hops the bounding search will take — and
records those decisions in a plain data object.  Everything downstream
(:mod:`~repro.core.executors`, :class:`~repro.core.service.QueryService`,
``EXPLAIN`` rendering) consumes the plan instead of re-deriving the routing
from algorithm strings, so adding an algorithm means registering an
executor, not editing dispatch chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.executors import executor_names, has_executor
from repro.core.query import MQuery, SQuery
from repro.trajectory.model import SECONDS_PER_DAY

#: Query kinds the planner routes: single-location, multi-location and
#: reverse ("who can reach this location").
QUERY_KINDS = ("s", "m", "r")

#: Bounding-region strategies an executor may request (None = no bounds,
#: the exhaustive baselines).
BOUNDING_STRATEGIES = ("sqmb", "mqmb", "reverse", None)


@dataclass(frozen=True)
class QueryPlan:
    """One query's routing decisions, ready for execution or display.

    Attributes:
        kind: ``"s"``, ``"m"`` or ``"r"``.
        algorithm: the algorithm name the user asked for.
        executor: registry key of the executor that will run (usually the
            algorithm name itself).
        delta_t_s: index granularity Δt in seconds.
        bounding_strategy: ``"sqmb"``, ``"mqmb"``, ``"reverse"`` or None
            when the executor verifies without bounds (ES family).
        uses_con_index: whether execution will touch the Connection Index.
        steps: Δt hops the bounding-region search will take (0 for ES).
        start_slot: temporal slot of the query start time ``T``.
        num_locations: query locations (1 for s/r-queries).
        warm: keep buffer pools from previous queries instead of paying
            cold I/O.
    """

    kind: str
    algorithm: str
    executor: str
    delta_t_s: int
    bounding_strategy: str | None
    uses_con_index: bool
    steps: int
    start_slot: int
    num_locations: int
    warm: bool = False

    def describe(self) -> str:
        """One-line routing summary (rendered by ``EXPLAIN``)."""
        bounds = (
            f"bounds={self.bounding_strategy} ({self.steps} Δt hops)"
            if self.bounding_strategy
            else "bounds=none (exhaustive verification)"
        )
        return (
            f"{self.kind}-query -> executor {self.executor!r} | "
            f"Δt={self.delta_t_s}s slot={self.start_slot} | {bounds} | "
            f"{self.num_locations} location(s) | "
            f"{'warm' if self.warm else 'cold'} buffer pools"
        )


#: Routing table: executor name -> (bounding strategy, uses Con-Index).
#: Executors absent from this table verify exhaustively without bounds.
_STRATEGY_OF: dict[str, tuple[str | None, bool]] = {
    "sqmb_tbs": ("sqmb", True),
    "mqmb_tbs": ("mqmb", True),
    "sqmb_tbs_each": ("sqmb", True),
    "es": (None, False),
    "es_pruned": (None, False),
    "es_each": (None, False),
}

_KIND_LABEL = {"s": "s-query", "m": "m-query", "r": "r-query"}


def plan_query(
    kind: str,
    query: SQuery | MQuery,
    algorithm: str,
    delta_t_s: int = 300,
    warm: bool = False,
) -> QueryPlan:
    """Plan one query: validate the algorithm and fix the routing.

    Args:
        kind: ``"s"``, ``"m"`` or ``"r"``.
        query: the query to plan for.
        algorithm: registered executor name for the kind.
        delta_t_s: index granularity Δt in seconds.
        warm: keep buffer pools warm across queries.

    Returns:
        The frozen plan.

    Raises:
        ValueError: unknown kind, unregistered algorithm, or bad Δt.
    """
    if kind not in QUERY_KINDS:
        raise ValueError(f"unknown query kind {kind!r}, want one of {QUERY_KINDS}")
    if not has_executor(kind, algorithm):
        known = ", ".join(executor_names(kind))
        raise ValueError(
            f"unknown {_KIND_LABEL[kind]} algorithm {algorithm!r} "
            f"(registered: {known})"
        )
    if delta_t_s <= 0 or delta_t_s > SECONDS_PER_DAY:
        raise ValueError(f"bad index granularity {delta_t_s}")
    strategy, uses_con = _STRATEGY_OF.get(algorithm, (None, False))
    if kind == "r" and strategy is not None:
        strategy = "reverse"
    locations = (
        len(query.locations) if isinstance(query, MQuery) else 1
    )
    return QueryPlan(
        kind=kind,
        algorithm=algorithm,
        executor=algorithm,
        delta_t_s=delta_t_s,
        bounding_strategy=strategy,
        uses_con_index=uses_con,
        steps=(
            max(1, int(query.duration_s // delta_t_s)) if strategy else 0
        ),
        start_slot=int(
            min(max(0.0, query.start_time_s), SECONDS_PER_DAY - 1) // delta_t_s
        ),
        num_locations=locations,
        warm=warm,
    )


def plan_s_query(query: SQuery, algorithm: str = "sqmb_tbs", **kw: Any) -> QueryPlan:
    """Plan a single-location query (convenience wrapper)."""
    return plan_query("s", query, algorithm, **kw)


def plan_m_query(query: MQuery, algorithm: str = "mqmb_tbs", **kw: Any) -> QueryPlan:
    """Plan a multi-location query (convenience wrapper)."""
    return plan_query("m", query, algorithm, **kw)


def plan_r_query(query: SQuery, algorithm: str = "sqmb_tbs", **kw: Any) -> QueryPlan:
    """Plan a reverse query (convenience wrapper)."""
    return plan_query("r", query, algorithm, **kw)
