"""Baselines: exhaustive search (ES) and the naive m-query decomposition.

ES answers an s-query with no Con-Index at all: starting from the query
segment it expands the physical road network neighbour by neighbour and
verifies *every* visited segment's Eq. 3.1 probability against the
trajectory time lists on disk — "the searching process terminates until
Prob-reachable road segments at all possible branches on the road network"
(§4.1).  Without an index there is no way to know where the reachable
region ends, so the expansion runs to the end of every branch; its cost is
governed by the road network size, not the query, which is why the ES
curves of Figs 4.1(a)/4.3(a)/4.7 are nearly flat.  Every verified segment —
including the dense area right around the start location that SQMB+TBS
skips entirely — costs time-list reads, which is exactly the redundant disk
access the paper's design removes.

:func:`exhaustive_search_pruned` is a stronger variant (not in the paper)
that stops each branch as soon as historical support vanishes; it is kept
as an ablation comparator (``benchmarks/test_ablation_baselines.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.probability import ProbabilityEstimator
from repro.network.model import RoadNetwork


@dataclass
class ExhaustiveResult:
    """Outcome of one exhaustive search."""

    region: set[int] = field(default_factory=set)
    failed: set[int] = field(default_factory=set)
    probabilities: dict[int, float] = field(default_factory=dict)

    @property
    def examined(self) -> int:
        return len(self.region) + len(self.failed)


def exhaustive_search(
    network: RoadNetwork,
    estimator: ProbabilityEstimator,
    prob: float,
) -> ExhaustiveResult:
    """The paper's ES baseline: verify every road-connected segment.

    Expands the road network from the estimator's start segment to the end
    of all branches, verifying each segment against the trajectory data.
    """
    result = ExhaustiveResult()
    start = estimator.start_segment
    queue: deque[int] = deque([start])
    visited: set[int] = {start}
    while queue:
        segment_id = queue.popleft()
        probability = estimator.probability(segment_id)
        result.probabilities[segment_id] = probability
        if probability >= prob:
            result.region.add(segment_id)
        else:
            result.failed.add(segment_id)
        for neighbor in network.neighbors(segment_id):
            if neighbor not in visited:
                visited.add(neighbor)
                queue.append(neighbor)
    return result


def exhaustive_search_pruned(
    network: RoadNetwork,
    estimator: ProbabilityEstimator,
    prob: float,
) -> ExhaustiveResult:
    """Support-pruned exhaustive search (ablation baseline, not in paper).

    Expansion continues through every segment with *any* historical support
    (probability > 0) and stops a branch when support vanishes; the cost is
    governed by the support region instead of the whole network.
    """
    result = ExhaustiveResult()
    start = estimator.start_segment
    queue: deque[int] = deque([start])
    visited: set[int] = {start}
    while queue:
        segment_id = queue.popleft()
        probability = estimator.probability(segment_id)
        result.probabilities[segment_id] = probability
        if probability >= prob:
            result.region.add(segment_id)
        else:
            result.failed.add(segment_id)
        if probability <= 0.0:
            continue
        for neighbor in network.neighbors(segment_id):
            if neighbor not in visited:
                visited.add(neighbor)
                queue.append(neighbor)
    return result


def naive_m_query(
    network: RoadNetwork,
    estimators: dict[int, ProbabilityEstimator],
    prob: float,
) -> ExhaustiveResult:
    """The always-working m-query baseline: n independent searches, unioned.

    Each start location is answered as its own s-query with no communication
    between them, so segments in overlapping regions are verified once *per
    query location* — the inefficiency MQMB eliminates.
    """
    merged = ExhaustiveResult()
    for estimator in estimators.values():
        single = exhaustive_search(network, estimator, prob)
        merged.region |= single.region
        merged.failed |= single.failed
        merged.probabilities.update(single.probabilities)
    merged.failed -= merged.region
    return merged
