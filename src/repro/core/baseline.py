"""Baselines: exhaustive search (ES) and the naive m-query decomposition.

ES answers an s-query with no Con-Index at all: starting from the query
segment it expands the physical road network neighbour by neighbour and
verifies *every* visited segment's Eq. 3.1 probability against the
trajectory time lists on disk — "the searching process terminates until
Prob-reachable road segments at all possible branches on the road network"
(§4.1).  Without an index there is no way to know where the reachable
region ends, so the expansion runs to the end of every branch; its cost is
governed by the road network size, not the query, which is why the ES
curves of Figs 4.1(a)/4.3(a)/4.7 are nearly flat.  Every verified segment —
including the dense area right around the start location that SQMB+TBS
skips entirely — costs time-list reads, which is exactly the redundant disk
access the paper's design removes.

The expansion proceeds in BFS frontier *waves*: each level's segments are
verified in one batched call to the columnar probability kernel, which is
where ES spends essentially all of its time.  Wave processing preserves
the classic FIFO evaluation order exactly (a BFS queue drains level by
level in push order), so regions, probabilities and charged reads are
identical to the scalar loop preserved in
:mod:`repro.core.legacy_probability`.

:func:`exhaustive_search_pruned` is a stronger variant (not in the paper)
that stops each branch as soon as historical support vanishes; it is kept
as an ablation comparator (``benchmarks/test_ablation_baselines.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.probability import ProbabilityEstimator
from repro.network.model import RoadNetwork


@dataclass
class ExhaustiveResult:
    """Outcome of one exhaustive search.

    Attributes:
        region: segments meeting the probability threshold.
        failed: verified segments that fell short.
        probabilities: every probability computed.
        wave_sizes: members per BFS verification wave (the scalar
            reference records waves of one).
    """

    region: set[int] = field(default_factory=set)
    failed: set[int] = field(default_factory=set)
    probabilities: dict[int, float] = field(default_factory=dict)
    wave_sizes: list[int] = field(default_factory=list)

    @property
    def examined(self) -> int:
        return len(self.region) + len(self.failed)


def _exhaustive_waves(
    network: RoadNetwork,
    estimator: ProbabilityEstimator,
    prob: float,
    prune: bool,
) -> ExhaustiveResult:
    """BFS frontier waves, each verified in one batched kernel call."""
    result = ExhaustiveResult()
    start = estimator.start_segment
    frontier: list[int] = [start]
    visited: set[int] = {start}
    while frontier:
        result.wave_sizes.append(len(frontier))
        probabilities = estimator.probabilities(frontier)
        next_frontier: list[int] = []
        for segment_id, probability in zip(frontier, probabilities):
            result.probabilities[segment_id] = probability
            if probability >= prob:
                result.region.add(segment_id)
            else:
                result.failed.add(segment_id)
            if prune and probability <= 0.0:
                continue
            for neighbor in network.neighbors(segment_id):
                if neighbor not in visited:
                    visited.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return result


def exhaustive_search(
    network: RoadNetwork,
    estimator: ProbabilityEstimator,
    prob: float,
) -> ExhaustiveResult:
    """The paper's ES baseline: verify every road-connected segment.

    Expands the road network from the estimator's start segment to the end
    of all branches, verifying each segment against the trajectory data.
    """
    return _exhaustive_waves(network, estimator, prob, prune=False)


def exhaustive_search_pruned(
    network: RoadNetwork,
    estimator: ProbabilityEstimator,
    prob: float,
) -> ExhaustiveResult:
    """Support-pruned exhaustive search (ablation baseline, not in paper).

    Expansion continues through every segment with *any* historical support
    (probability > 0) and stops a branch when support vanishes; the cost is
    governed by the support region instead of the whole network.
    """
    return _exhaustive_waves(network, estimator, prob, prune=True)


def naive_m_query(
    network: RoadNetwork,
    estimators: dict[int, ProbabilityEstimator],
    prob: float,
) -> ExhaustiveResult:
    """The always-working m-query baseline: n independent searches, unioned.

    Each start location is answered as its own s-query with no communication
    between them, so segments in overlapping regions are verified once *per
    query location* — the inefficiency MQMB eliminates.
    """
    merged = ExhaustiveResult()
    for estimator in estimators.values():
        single = exhaustive_search(network, estimator, prob)
        merged.region |= single.region
        merged.failed |= single.failed
        merged.probabilities.update(single.probabilities)
        merged.wave_sizes.extend(single.wave_sizes)
    merged.failed -= merged.region
    return merged
