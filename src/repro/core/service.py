"""The batch-capable query service: plan, share, execute.

:class:`QueryService` is the front door for workloads.  A single query
behaves exactly like the classic engine facade (cold buffer pools, one
plan, one executor), but :meth:`QueryService.run_batch` exploits what a
multi-user workload shares:

* **bounding-region dedup** — queries whose seeds fall in the same
  segments and Δt slot share their SQMB/MQMB/reverse bounding regions
  through one *service-lifetime* LRU
  (:class:`~repro.core.region_cache.RegionCache`) instead of
  re-expanding the Con-Index — shared across batches, invalidated
  explicitly when trajectory data is appended or indexes rebuilt;
* **warm buffer pools** — the batch pays one cold start, then every
  later query reads time-list pages the earlier ones already pulled in;
* **plan reuse** — identically-shaped queries share one frozen
  :class:`~repro.core.planner.QueryPlan`;
* **worker pool** — independent queries can run on threads
  (``max_workers > 1``); per-query I/O is attributed through per-thread
  snapshot windows (:meth:`~repro.storage.disk.SimulatedDisk.local_snapshot`),
  so per-query costs are exact and deterministic under concurrency and
  the batch totals stay exact.

The returned :class:`BatchReport` carries per-query results plus
batch-level cost and cache-effectiveness metrics (buffer-pool hit/miss/
eviction counters from :class:`~repro.storage.disk.DiskStats`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.engine import ReachabilityEngine
from repro.core.executors import ExecutionContext, execute_plan
from repro.core.planner import QueryPlan, plan_query
from repro.core.query import MQuery, QueryResult, SQuery
from repro.core.region_cache import RegionCache
from repro.storage.disk import DiskStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.router import RouteDecision

#: Default algorithm per query kind (the paper's methods).
DEFAULT_ALGORITHMS = {"s": "sqmb_tbs", "m": "mqmb_tbs", "r": "sqmb_tbs"}


def kind_of(query: SQuery | MQuery) -> str:
    """The planner kind for a query object (reverse must be explicit)."""
    return "m" if isinstance(query, MQuery) else "s"


@dataclass
class ShardReport:
    """Per-shard accounting slice of a sharded batch (see
    :mod:`repro.serving`).

    Attributes:
        shard_id: the shard's index in the partition plan.
        queries: sub-requests this shard executed (decomposed cross-shard
            queries count once per involved shard).
        io: the shard worker's disk-stat difference for its sub-batch.
        simulated_io_ms: accounted cost of the shard's page reads.
        wall_time_s: wall time of the shard's sub-batch inside its worker.
        worker_wall_s: wall time of everything the worker did for this
            shard — service setup, the sub-batch, result packing.
        worker_restarts: times the supervisor respawned this shard's
            worker process during the batch.
        retries: scatter attempts this shard's worker needed beyond the
            first (deadline expiries, deaths, error replies).
        degraded_requests: sub-requests of this shard that exhausted
            their retries and re-executed on the dispatcher-local
            fallback service (the shard's ``io`` window then measures
            that local re-execution, so batch accounting stays exact).
    """

    shard_id: int
    queries: int = 0
    io: DiskStats = field(default_factory=DiskStats)
    simulated_io_ms: float = 0.0
    wall_time_s: float = 0.0
    worker_wall_s: float = 0.0
    worker_restarts: int = 0
    retries: int = 0
    degraded_requests: int = 0


@dataclass
class BatchReport:
    """Outcome of one :meth:`QueryService.run_batch` call.

    Attributes:
        results: per-query results, in submission order.
        plans: the (deduplicated, shared) plan of each query.
        wall_time_s: batch wall time.
        io: batch-level disk-stat difference, including buffer-pool
            hit/miss/eviction counters.
        simulated_io_ms: accounted I/O cost of the batch's page reads.
        regions_computed: bounding regions expanded from the Con-Index.
        regions_reused: bounding regions served from the batch cache.
        plans_reused: queries that shared an earlier query's plan.
        routes: the routing decision behind each plan, in submission
            order (``rule="forced"`` for explicitly-named algorithms).
        shard_reports: per-shard accounting when the batch ran on the
            sharded backend (empty for single-process batches); the
            shard ``io`` snapshots plus any dispatcher-local fallback
            I/O sum exactly to ``io``.
        worker_restarts: worker processes the sharded supervisor
            respawned while answering this batch (0 on a healthy run
            and always on the single-process backend).
        retries: scatter attempts beyond the first, batch-wide.
        degraded_requests: sub-requests answered by the dispatcher-local
            fallback after exhausting their retries; results are
            identical to a healthy run, only provenance differs.
        stale_frames: late worker replies discarded by request id after
            their attempt's deadline had already fired.
        deadline_ms: the per-scatter deadline the batch ran under
            (``None``: no deadline / single-process backend).
    """

    results: list[QueryResult] = field(default_factory=list)
    plans: list[QueryPlan] = field(default_factory=list)
    routes: list["RouteDecision"] = field(default_factory=list)
    wall_time_s: float = 0.0
    io: DiskStats = field(default_factory=DiskStats)
    simulated_io_ms: float = 0.0
    regions_computed: int = 0
    regions_reused: int = 0
    plans_reused: int = 0
    shard_reports: list[ShardReport] = field(default_factory=list)
    worker_restarts: int = 0
    retries: int = 0
    degraded_requests: int = 0
    stale_frames: int = 0
    deadline_ms: float | None = None

    @property
    def page_reads(self) -> int:
        return self.io.page_reads

    @property
    def total_cost_ms(self) -> float:
        """Wall time plus accounted I/O, the headline 'running time'."""
        return self.wall_time_s * 1e3 + self.simulated_io_ms

    @property
    def probability_checks(self) -> int:
        """Eq. 3.1 evaluations across the batch (cache hits excluded)."""
        return sum(r.cost.probability_checks for r in self.results)

    @property
    def kernel_probability_evals(self) -> int:
        """Evaluations served by the vectorized columnar kernel."""
        return sum(r.cost.kernel_probability_evals for r in self.results)

    @property
    def scalar_probability_evals(self) -> int:
        """Evaluations served by the tiny-input scalar fast path."""
        return sum(r.cost.scalar_probability_evals for r in self.results)

    @property
    def probability_waves(self) -> int:
        """Batched evaluation waves dequeued across the batch."""
        return sum(r.cost.probability_waves for r in self.results)

    @property
    def max_wave_size(self) -> int:
        """Largest single evaluation wave any query in the batch saw."""
        return max((r.cost.max_wave_size for r in self.results), default=0)

    @property
    def segments_expanded(self) -> int:
        """Segments the bounding-region expansions enqueued, batch-wide."""
        return sum(r.cost.segments_expanded for r in self.results)

    @property
    def batched_record_reads(self) -> int:
        """Records fetched through the wave-granular batch gather path."""
        return sum(r.cost.batched_record_reads for r in self.results)

    @property
    def prefetched_pages(self) -> int:
        """Page accesses charged by batched gathers before kernel runs."""
        return sum(r.cost.prefetched_pages for r in self.results)

    @property
    def pool_lock_shards(self) -> int:
        """Lock stripes of the buffer pool the batch read through."""
        return max((r.cost.pool_lock_shards for r in self.results), default=0)

    def as_rows(self) -> list[tuple[str, str]]:
        """Key/value rows for :func:`repro.eval.tables.format_table`."""
        return [
            ("Queries", f"{len(self.results)}"),
            ("Wall time", f"{self.wall_time_s * 1e3:.1f} ms"),
            ("Page reads", f"{self.io.page_reads:,}"),
            ("Simulated I/O", f"{self.simulated_io_ms:.0f} ms"),
            (
                "Buffer pool",
                f"{self.io.pool_hits:,} hits / {self.io.pool_misses:,} misses"
                f" / {self.io.pool_evictions:,} evictions"
                f" ({self.io.pool_hit_rate * 100:.0f}% hit rate)",
            ),
            (
                "Bounding regions",
                f"{self.regions_computed} computed, "
                f"{self.regions_reused} reused "
                f"({self.segments_expanded:,} segments expanded)",
            ),
            (
                "Probability checks",
                f"{self.probability_checks:,} "
                f"({self.kernel_probability_evals:,} kernel / "
                f"{self.scalar_probability_evals:,} scalar; "
                f"{self.probability_waves:,} waves, "
                f"max {self.max_wave_size})",
            ),
            (
                "Batched I/O",
                f"{self.batched_record_reads:,} record gathers / "
                f"{self.prefetched_pages:,} pages prefetched "
                f"({self.pool_lock_shards} pool lock shards)",
            ),
            ("Plans reused", f"{self.plans_reused}"),
        ] + (
            [
                (
                    "Fault tolerance",
                    f"{self.worker_restarts} worker restarts / "
                    f"{self.retries} retries / "
                    f"{self.degraded_requests} degraded / "
                    f"{self.stale_frames} stale frames discarded"
                    + (
                        f" (deadline {self.deadline_ms:.0f} ms)"
                        if self.deadline_ms is not None
                        else " (no deadline)"
                    ),
                )
            ]
            if self.shard_reports
            else []
        ) + [
            (
                f"Shard {shard.shard_id}",
                f"{shard.queries} queries / {shard.io.page_reads:,} page "
                f"reads / {shard.simulated_io_ms:.0f} ms simulated I/O "
                f"({shard.wall_time_s * 1e3:.1f} ms wall)"
                + (
                    f" [{shard.worker_restarts} restarts, "
                    f"{shard.retries} retries, "
                    f"{shard.degraded_requests} degraded]"
                    if shard.worker_restarts
                    or shard.retries
                    or shard.degraded_requests
                    else ""
                ),
            )
            for shard in self.shard_reports
        ]


class QueryService:
    """Planner/executor query service over a :class:`ReachabilityEngine`.

    Args:
        engine: the index-owning engine queries run against.
        delta_t_s: default index granularity Δt for queries that do not
            specify one.
        region_cache_capacity: LRU capacity of the service-lifetime
            bounding-region cache shared across batches.
    """

    def __init__(
        self,
        engine: ReachabilityEngine,
        delta_t_s: int = 300,
        region_cache_capacity: int = 1024,
    ) -> None:
        self.engine = engine
        self.delta_t_s = delta_t_s
        self.region_cache = RegionCache(region_cache_capacity)
        # Every service over this engine hears about data changes, so a
        # direct engine-level append_trajectories/drop_indexes invalidates
        # this cache too (weakly registered: the engine does not pin the
        # service alive).
        engine.register_data_change_hook(self.region_cache.invalidate)

    # -- data lifecycle ----------------------------------------------------

    def append_trajectories(self, trajectories, update_database: bool = True) -> int:
        """Ingest new matched trajectories and invalidate derived caches.

        Appends to every built ST-Index (and, by default, the trajectory
        database whose speed statistics feed the Con-Index), then drops
        the bounding-region caches of *every* service registered on the
        engine plus the Con-Index's memoized entries: regions computed
        from pre-append speed models must not be served for post-append
        queries.

        Returns the number of (segment, slot) entries touched across the
        built ST-Indexes.
        """
        return self.engine.append_trajectories(
            trajectories, update_database=update_database
        )

    def rebuild_indexes(self, delta_t_s: int | None = None) -> None:
        """Drop built indexes (they rebuild lazily) and cached regions."""
        self.engine.drop_indexes(delta_t_s)

    def invalidate_regions(self) -> None:
        """Explicitly drop every cached bounding region."""
        self.region_cache.invalidate()

    # -- planning ----------------------------------------------------------

    def plan(
        self,
        query: SQuery | MQuery,
        algorithm: str | None = None,
        delta_t_s: int | None = None,
        kind: str | None = None,
        warm: bool = False,
    ) -> QueryPlan:
        """Plan one query without executing it (``EXPLAIN``-style)."""
        resolved_kind = kind if kind is not None else kind_of(query)
        return plan_query(
            resolved_kind,
            query,
            algorithm if algorithm is not None else DEFAULT_ALGORITHMS[resolved_kind],
            delta_t_s if delta_t_s is not None else self.delta_t_s,
            warm=warm,
        )

    # -- single queries ------------------------------------------------------

    def run_plan(
        self,
        plan: QueryPlan,
        query: SQuery | MQuery,
        reuse_regions: bool = True,
    ) -> tuple[QueryResult, ExecutionContext]:
        """Run one planned query through the service-lifetime caches.

        The single execution path behind both the client API's ``send``
        and the deprecated per-kind wrappers: a fresh
        :class:`ExecutionContext` wired to the service's bounding-region
        cache (unless ``reuse_regions`` is off), so repeated
        identically-shaped queries do not re-expand their bounds.

        Returns the result plus the context, whose
        ``regions_computed``/``regions_reused`` counters are exact for
        this execution.
        """
        context = ExecutionContext(
            self.engine,
            plan.delta_t_s,
            region_cache=self.region_cache if reuse_regions else None,
        )
        return execute_plan(self.engine, plan, query, context=context), context

    def execute(
        self,
        query: SQuery | MQuery,
        algorithm: str | None = None,
        delta_t_s: int | None = None,
        kind: str | None = None,
        warm: bool = False,
    ) -> QueryResult:
        """Plan and run one query through the service-lifetime caches.

        Single queries run against cold buffer pools unless ``warm`` (the
        paper's per-query protocol), but share the bounding-region cache
        with every other query on this service.  This is the execution
        path behind the deprecated per-kind wrappers; new code should
        use :class:`repro.api.ReachabilityClient`.
        """
        plan = self.plan(query, algorithm, delta_t_s, kind, warm)
        result, _ = self.run_plan(plan, query)
        return result

    def _deprecated(self, name: str) -> None:
        warnings.warn(
            f"QueryService.{name} is deprecated; build a repro.api.Request "
            "and answer it with repro.api.ReachabilityClient.send",
            DeprecationWarning,
            stacklevel=3,
        )

    def query(
        self,
        query: SQuery | MQuery,
        algorithm: str | None = None,
        delta_t_s: int | None = None,
        kind: str | None = None,
        warm: bool = False,
    ) -> QueryResult:
        """Deprecated: answer one query (use the client API instead)."""
        self._deprecated("query")
        return self.execute(query, algorithm, delta_t_s, kind, warm)

    def s_query(self, query: SQuery, **kw) -> QueryResult:
        """Deprecated: use :meth:`repro.api.ReachabilityClient.send`."""
        self._deprecated("s_query")
        return self.execute(query, kind="s", **kw)

    def m_query(self, query: MQuery, **kw) -> QueryResult:
        """Deprecated: use :meth:`repro.api.ReachabilityClient.send`."""
        self._deprecated("m_query")
        return self.execute(query, kind="m", **kw)

    def r_query(self, query: SQuery, **kw) -> QueryResult:
        """Deprecated: use :meth:`repro.api.ReachabilityClient.send`."""
        self._deprecated("r_query")
        return self.execute(query, kind="r", **kw)

    # -- batches ----------------------------------------------------------------

    def run_batch(
        self,
        queries: Sequence[SQuery | MQuery] | Iterable[SQuery | MQuery],
        algorithm: str | None = None,
        delta_t_s: int | None = None,
        kind: str | None = None,
        warm: bool = False,
        max_workers: int = 1,
    ) -> BatchReport:
        """Run a batch of queries, sharing work between them.

        A thin aggregation over the client API's streaming pipeline
        (:meth:`repro.api.ReachabilityClient.run_batch`): each query is
        wrapped in a :class:`repro.api.Request` carrying the batch-global
        kwargs, streamed through the shared worker-pool pipeline, and
        the totals are collected into the classic :class:`BatchReport`.
        Per-request intent (mixed directions, per-query algorithms)
        needs the client API directly — this signature keeps ``kind``
        and ``algorithm`` batch-global for compatibility.

        The batch pays one cold start (unless ``warm``), after which all
        queries run against warm buffer pools and a shared bounding-region
        cache; identically-shaped queries also share one plan object.

        Args:
            queries: the queries, s- and m-queries freely mixed.
            algorithm: override the per-kind default algorithm.
            delta_t_s: index granularity for the whole batch.
            kind: force a planner kind (``"r"`` for reverse batches).
            warm: keep pre-batch buffer-pool contents too.
            max_workers: thread count for concurrent execution; per-query
                I/O attribution stays exact (each worker windows its own
                thread-local counters) and batch totals are exact.

        Returns:
            The :class:`BatchReport`.
        """
        from repro.api.client import ReachabilityClient
        from repro.api.envelope import QueryOptions, Request

        dt = delta_t_s if delta_t_s is not None else self.delta_t_s
        requests = []
        for query in queries:
            resolved_kind = kind if kind is not None else kind_of(query)
            algo = (
                algorithm
                if algorithm is not None
                else DEFAULT_ALGORITHMS[resolved_kind]
            )
            requests.append(
                Request(
                    query,
                    QueryOptions(
                        direction=(
                            "reverse" if resolved_kind == "r" else "forward"
                        ),
                        algorithm=algo,
                        delta_t_s=dt,
                    ),
                )
            )
        return ReachabilityClient(self).run_batch(
            requests, warm=warm, max_workers=max_workers
        )


def as_service(target: QueryService | ReachabilityEngine) -> QueryService:
    """Adapt an engine to a service (call sites accept either)."""
    if isinstance(target, QueryService):
        return target
    return QueryService(target)
