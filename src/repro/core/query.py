"""Query and result models (§2.2, Table 2.1).

An s-query is ``q = (S, T, L, Prob)`` with one location; an m-query carries
``S = {s1, ..., sn}``.  Results report the Prob-reachable segment set plus
the cost metrics the paper's evaluation uses: running time and (here,
additionally) simulated disk I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.spatial.geometry import Point
from repro.storage.disk import DiskStats
from repro.trajectory.model import SECONDS_PER_DAY

if TYPE_CHECKING:  # import cycle: network.model imports nothing from core
    from repro.network.model import RoadNetwork


@dataclass(frozen=True)
class SQuery:
    """Single-location spatio-temporal reachability query.

    Attributes:
        location: query location ``s`` in the local metric plane.
        start_time_s: ``T``, seconds since midnight.
        duration_s: ``L``, the prediction time length in seconds.
        prob: reachability probability threshold in (0, 1].
    """

    location: Point
    start_time_s: float
    duration_s: float
    prob: float

    def __post_init__(self) -> None:
        if not 0 <= self.start_time_s < SECONDS_PER_DAY:
            raise ValueError(f"start time {self.start_time_s} outside one day")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")
        if not 0 < self.prob <= 1:
            raise ValueError(f"prob must be in (0, 1], got {self.prob}")


@dataclass(frozen=True)
class MQuery:
    """Multi-location spatio-temporal reachability query (§3.3.2)."""

    locations: tuple[Point, ...]
    start_time_s: float
    duration_s: float
    prob: float

    def __post_init__(self) -> None:
        if not self.locations:
            raise ValueError("m-query needs at least one location")
        if not 0 <= self.start_time_s < SECONDS_PER_DAY:
            raise ValueError(f"start time {self.start_time_s} outside one day")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")
        if not 0 < self.prob <= 1:
            raise ValueError(f"prob must be in (0, 1], got {self.prob}")

    def as_s_queries(self) -> list[SQuery]:
        """The n independent s-queries of the naive decomposition."""
        return [
            SQuery(
                location=location,
                start_time_s=self.start_time_s,
                duration_s=self.duration_s,
                prob=self.prob,
            )
            for location in self.locations
        ]


@dataclass
class BoundingRegion:
    """Output of SQMB/MQMB: the cover and outer boundary of one bound.

    Attributes:
        cover: every segment reachable within the bound (``B`` accumulated
            over Algorithm 1's steps, as an area).
        boundary: the outer frontier — the solid circles of Fig. 3.4.
        seed_of: for m-queries, segment -> the seed segment whose expansion
            claimed it (after the §3.3.2 overlap elimination).
    """

    cover: set[int] = field(default_factory=set)
    boundary: set[int] = field(default_factory=set)
    seed_of: dict[int, int] = field(default_factory=dict)


@dataclass
class QueryCost:
    """Cost metrics for one query execution.

    Attributes:
        probability_checks: Eq. 3.1 evaluations requested across the
            query's estimators (cache and twin hits excluded).
        kernel_probability_evals / scalar_probability_evals: how many of
            those evaluations ran through the vectorized columnar kernel
            vs the tiny-input scalar fast path (their sum can fall short
            of ``probability_checks`` when an empty start set
            short-circuits candidates to probability 0 without reads).
        probability_waves: batched evaluation waves (TBS boundary waves,
            ES frontier levels) the search dequeued.
        max_wave_size: largest single wave, the batching depth the
            kernel actually exploited.
        batched_record_reads: time-list records fetched through the
            wave-granular batch gather path
            (``STIndex.gather_window_columns`` charging via
            ``BufferPool.get_pages``), read-for-read like the sequential
            scalar loop.
        prefetched_pages: pages those batched gathers charged before the
            membership kernel ran (pool hits included — the gather
            *accesses*, of which ``io.page_reads`` were actual misses).
        pool_lock_shards: lock stripes backing the ST-Index buffer pool
            the query read through.
    """

    wall_time_s: float = 0.0
    io: DiskStats = field(default_factory=DiskStats)
    simulated_io_ms: float = 0.0
    probability_checks: int = 0
    segments_expanded: int = 0
    kernel_probability_evals: int = 0
    scalar_probability_evals: int = 0
    probability_waves: int = 0
    max_wave_size: int = 0
    batched_record_reads: int = 0
    prefetched_pages: int = 0
    pool_lock_shards: int = 0

    @property
    def total_cost_ms(self) -> float:
        """Wall time plus accounted I/O, the headline 'running time'."""
        return self.wall_time_s * 1e3 + self.simulated_io_ms


@dataclass
class QueryResult:
    """A Prob-reachable region plus how much it cost to compute.

    Attributes:
        segments: the Prob-reachable road segments.
        probabilities: probabilities actually computed during the search
            (TBS only examines the shell, so this is a subset of segments).
        start_segments: the start segment(s) ``r0`` resolved from ``S``.
        max_region / min_region: the bounding regions, when the algorithm
            produced them (None for the ES baseline).
        cost: running-time/I/O metrics.
    """

    segments: set[int] = field(default_factory=set)
    probabilities: dict[int, float] = field(default_factory=dict)
    start_segments: tuple[int, ...] = ()
    max_region: BoundingRegion | None = None
    min_region: BoundingRegion | None = None
    cost: QueryCost = field(default_factory=QueryCost)

    def road_length_m(self, network: RoadNetwork) -> float:
        """Total length of the result segments, deduplicating two-way twins.

        This is the paper's effectiveness metric ("total length of covered
        road segments", §4.2).
        """
        seen: set[int] = set()
        total = 0.0
        for segment_id in self.segments:
            segment = network.segment(segment_id)
            canonical = segment.canonical_id()
            if canonical in seen:
                continue
            seen.add(canonical)
            total += segment.length
        return total
