"""Reference (pre-kernel) Eq. 3.1 probability implementations.

These are the scalar estimators and one-segment-at-a-time searches that
the columnar probability kernel (:mod:`repro.core.prob_kernel`) and the
wave-based TBS/ES replaced.  They are kept for the same two reasons as
:mod:`repro.core.legacy_expansion`:

* the kernel-equivalence tests (``tests/test_prob_kernel.py``) prove the
  columnar path produces *identical* probabilities, result regions,
  examined counts and page-read accounting on randomized datasets, and
  need a trustworthy baseline to diff against;
* ``benchmarks/bench_probability.py`` measures the kernel speedup against
  them, both per evaluation and end-to-end (by temporarily routing the
  executors through :func:`legacy_probability_path`).

They carry the PR 1-3 semantics exactly: per-day trajectory-id *sets*
built from :meth:`~repro.core.st_index.STIndex.trajectories_in_window`,
``set.isdisjoint`` day loops, a Δt-independent 5-minute departure window,
road-level twin merging, and FIFO single-segment TBS/ES loops.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager

from repro.core.baseline import ExhaustiveResult
from repro.core.probability import DEPARTURE_WINDOW_S
from repro.core.query import BoundingRegion
from repro.core.st_index import STIndex
from repro.core.tbs import TraceBackResult
from repro.network.model import RoadNetwork


class LegacyProbabilityEstimator:
    """The scalar Eq. 3.1 evaluator (pre-columnar-kernel live code).

    Same constructor signature, cache/twin semantics and ``checks``
    counter as the live :class:`~repro.core.probability.ProbabilityEstimator`;
    every evaluation runs the per-day set-intersection loop, so
    ``scalar_evals`` tracks ``checks`` and ``kernel_evals`` stays 0.
    """

    def __init__(
        self,
        index: STIndex,
        start_segment: int,
        start_time_s: float,
        duration_s: float,
        num_days: int,
    ) -> None:
        if num_days <= 0:
            raise ValueError(f"num_days must be positive, got {num_days}")
        self.index = index
        self.network = index.network
        self.start_segment = start_segment
        self.start_time_s = start_time_s
        self.duration_s = duration_s
        self.num_days = num_days
        self.checks = 0
        self.kernel_evals = 0
        self.scalar_evals = 0
        self._cache: dict[int, float] = {}
        self._start_sets = self._merged_window(
            start_segment,
            start_time_s,
            start_time_s + min(DEPARTURE_WINDOW_S, duration_s),
        )

    def _twin(self, segment_id: int) -> int | None:
        twin = self.network.segment(segment_id).twin_id
        if twin is not None and self.network.has_segment(twin):
            return twin
        return None

    def _merged_window(
        self, segment_id: int, start_s: float, end_s: float
    ) -> dict[int, set[int]]:
        """Per-day trajectory ids passing the *road* (either direction)."""
        merged = self.index.trajectories_in_window(segment_id, start_s, end_s)
        twin = self._twin(segment_id)
        if twin is not None:
            for date, ids in self.index.trajectories_in_window(
                twin, start_s, end_s
            ).items():
                bucket = merged.get(date)
                if bucket is None:
                    merged[date] = set(ids)
                else:
                    bucket |= ids
        return merged

    @property
    def start_days(self) -> int:
        """Days on which any trajectory left ``r0`` in the first slot."""
        return sum(1 for ids in self._start_sets.values() if ids)

    def probability(self, segment_id: int) -> float:
        """``probability(segment_id, r0)`` per Eq. 3.1 (cached, road-level)."""
        cached = self._cache.get(segment_id)
        if cached is not None:
            return cached
        self.checks += 1
        self.scalar_evals += 1
        if not self._start_sets:
            value = 0.0
        else:
            target_sets = self._merged_window(
                segment_id,
                self.start_time_s,
                self.start_time_s + self.duration_s,
            )
            good_days = 0
            for date, start_ids in self._start_sets.items():
                target_ids = target_sets.get(date)
                if target_ids and not start_ids.isdisjoint(target_ids):
                    good_days += 1
            value = good_days / self.num_days
        self._cache[segment_id] = value
        twin = self._twin(segment_id)
        if twin is not None:
            self._cache[twin] = value
        return value

    def probabilities(self, segment_ids) -> list[float]:
        """Scalar loop twin of the kernel's batch API (for wave callers)."""
        return [self.probability(segment_id) for segment_id in segment_ids]

    def is_reachable(self, segment_id: int, prob: float) -> bool:
        return self.probability(segment_id) >= prob


class LegacyReverseProbabilityEstimator(LegacyProbabilityEstimator):
    """The scalar reverse estimator: roles of start and target swapped.

    The fixed side is the *target's* full query window; each candidate
    pays its own departure-window read.
    """

    def __init__(
        self,
        index: STIndex,
        target_segment: int,
        start_time_s: float,
        duration_s: float,
        num_days: int,
    ) -> None:
        if num_days <= 0:
            raise ValueError(f"num_days must be positive, got {num_days}")
        self.index = index
        self.network = index.network
        self.start_segment = target_segment
        self.target_segment = target_segment
        self.start_time_s = start_time_s
        self.duration_s = duration_s
        self.num_days = num_days
        self.checks = 0
        self.kernel_evals = 0
        self.scalar_evals = 0
        self._cache: dict[int, float] = {}
        self._start_sets = self._merged_window(
            target_segment, start_time_s, start_time_s + duration_s
        )

    def probability(self, segment_id: int) -> float:
        """Reverse reachability probability of ``segment_id`` (cached)."""
        cached = self._cache.get(segment_id)
        if cached is not None:
            return cached
        self.checks += 1
        self.scalar_evals += 1
        if not self._start_sets:
            value = 0.0
        else:
            origin_sets = self._merged_window(
                segment_id,
                self.start_time_s,
                self.start_time_s
                + min(DEPARTURE_WINDOW_S, self.duration_s),
            )
            good_days = 0
            for date, target_ids in self._start_sets.items():
                origin_ids = origin_sets.get(date)
                if origin_ids and not target_ids.isdisjoint(origin_ids):
                    good_days += 1
            value = good_days / self.num_days
        self._cache[segment_id] = value
        twin = self._twin(segment_id)
        if twin is not None:
            self._cache[twin] = value
        return value


def trace_back_search_reference(
    network: RoadNetwork,
    estimators: dict,
    prob: float,
    max_region: BoundingRegion,
    min_region: BoundingRegion,
) -> TraceBackResult:
    """The pre-wave Algorithm 2: FIFO queue, one probability per dequeue."""
    result = TraceBackResult()
    if not estimators:
        return result
    max_cover = max_region.cover
    min_cover = min_region.cover
    default_seed = next(iter(estimators))

    def estimators_for(segment_id: int) -> list:
        seed = max_region.seed_of.get(segment_id, default_seed)
        first = estimators.get(seed, estimators[default_seed])
        ordered = [first]
        ordered.extend(e for s, e in estimators.items() if e is not first)
        return ordered

    queue: deque[int] = deque(sorted(max_region.boundary))
    visited: set[int] = set(max_region.boundary)
    while queue:
        segment_id = queue.popleft()
        result.wave_sizes.append(1)
        candidates = estimators_for(segment_id)
        probability = candidates[0].probability(segment_id)
        if probability < prob:
            for estimator in candidates[1:]:
                probability = max(
                    probability, estimator.probability(segment_id)
                )
                if probability >= prob:
                    break
        result.probabilities[segment_id] = probability
        if probability >= prob:
            result.passed.add(segment_id)
            continue
        result.failed.add(segment_id)
        for neighbor in network.neighbors(segment_id):
            if neighbor in visited:
                continue
            if neighbor not in max_cover:
                continue
            if neighbor in min_cover:
                continue
            visited.add(neighbor)
            queue.append(neighbor)

    result.region = set(min_cover) | result.passed
    seeds = [seed for seed in estimators if seed in max_cover]
    flood: deque[int] = deque(seeds)
    seen: set[int] = set(seeds)
    while flood:
        segment_id = flood.popleft()
        if segment_id in result.failed:
            continue
        result.region.add(segment_id)
        for neighbor in network.neighbors(segment_id):
            if neighbor in seen:
                continue
            if neighbor not in max_cover:
                continue
            if neighbor in result.failed:
                continue
            seen.add(neighbor)
            flood.append(neighbor)
    return result


def _exhaustive_reference(
    network: RoadNetwork, estimator, prob: float, prune: bool
) -> ExhaustiveResult:
    result = ExhaustiveResult()
    start = estimator.start_segment
    queue: deque[int] = deque([start])
    visited: set[int] = {start}
    while queue:
        segment_id = queue.popleft()
        result.wave_sizes.append(1)
        probability = estimator.probability(segment_id)
        result.probabilities[segment_id] = probability
        if probability >= prob:
            result.region.add(segment_id)
        else:
            result.failed.add(segment_id)
        if prune and probability <= 0.0:
            continue
        for neighbor in network.neighbors(segment_id):
            if neighbor not in visited:
                visited.add(neighbor)
                queue.append(neighbor)
    return result


def exhaustive_search_reference(
    network: RoadNetwork, estimator, prob: float
) -> ExhaustiveResult:
    """The pre-wave ES baseline: FIFO expansion, one check per dequeue."""
    return _exhaustive_reference(network, estimator, prob, prune=False)


def exhaustive_search_pruned_reference(
    network: RoadNetwork, estimator, prob: float
) -> ExhaustiveResult:
    """The pre-wave support-pruned ES (ablation baseline)."""
    return _exhaustive_reference(network, estimator, prob, prune=True)


@contextmanager
def legacy_probability_path():
    """Temporarily route the executors through the scalar probability path.

    Swaps the estimator classes and the search entry points captured in
    the executor modules (and the reverse/ES delegation globals) for the
    references above, restoring everything on exit.  The equivalence
    tests and ``benchmarks/bench_probability.py`` use this to run the
    exact same query twice — once columnar, once scalar — on one engine.
    """
    import repro.core.executors.es as es_mod
    import repro.core.executors.mqmb_tbs as mqmb_mod
    import repro.core.executors.reverse as rev_exec_mod
    import repro.core.executors.sqmb_tbs as sqmb_mod
    import repro.core.explain as explain_mod
    import repro.core.reverse as rev_mod

    saved = (
        es_mod.ProbabilityEstimator,
        es_mod.exhaustive_search,
        es_mod.exhaustive_search_pruned,
        sqmb_mod.ProbabilityEstimator,
        sqmb_mod.trace_back_search,
        mqmb_mod.ProbabilityEstimator,
        mqmb_mod.trace_back_search,
        rev_exec_mod.ReverseProbabilityEstimator,
        rev_exec_mod.trace_back_search,
        rev_mod.exhaustive_search,
        explain_mod.ProbabilityEstimator,
        explain_mod.trace_back_search,
    )
    es_mod.ProbabilityEstimator = LegacyProbabilityEstimator
    es_mod.exhaustive_search = exhaustive_search_reference
    es_mod.exhaustive_search_pruned = exhaustive_search_pruned_reference
    sqmb_mod.ProbabilityEstimator = LegacyProbabilityEstimator
    sqmb_mod.trace_back_search = trace_back_search_reference
    mqmb_mod.ProbabilityEstimator = LegacyProbabilityEstimator
    mqmb_mod.trace_back_search = trace_back_search_reference
    rev_exec_mod.ReverseProbabilityEstimator = LegacyReverseProbabilityEstimator
    rev_exec_mod.trace_back_search = trace_back_search_reference
    rev_mod.exhaustive_search = exhaustive_search_reference
    explain_mod.ProbabilityEstimator = LegacyProbabilityEstimator
    explain_mod.trace_back_search = trace_back_search_reference
    try:
        yield
    finally:
        (
            es_mod.ProbabilityEstimator,
            es_mod.exhaustive_search,
            es_mod.exhaustive_search_pruned,
            sqmb_mod.ProbabilityEstimator,
            sqmb_mod.trace_back_search,
            mqmb_mod.ProbabilityEstimator,
            mqmb_mod.trace_back_search,
            rev_exec_mod.ReverseProbabilityEstimator,
            rev_exec_mod.trace_back_search,
            rev_mod.exhaustive_search,
            explain_mod.ProbabilityEstimator,
            explain_mod.trace_back_search,
        ) = saved
