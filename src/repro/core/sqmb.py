"""Algorithm 1: s-query maximum/minimum bounding-region search (SQMB).

Starting from the query's road segment ``r0``, SQMB hops through the
Con-Index one Δt slot at a time.  Exactly as the thesis's Algorithm 1
(lines 5–9) prescribes, the *entire* accumulated bounding set is expanded
at every step (``B = B ∪ F(r, T+l)`` for all ``r in R``, then ``R = B``),
for ``k`` steps with ``k·Δt <= L < (k+1)·Δt``; each hop grants a fresh Δt
of travel at the slot's historical extreme speeds, so after ``k`` hops the
accumulated cover is every segment the Con-Index vouches reachable within
``L``.  The region's outer boundary — the solid circles of Fig. 3.4 — is
the set of cover segments with at least one successor outside the cover.

No trajectory time lists are touched here: the whole point is that the
bounding region comes straight out of the Con-Index, skipping the disk
reads an exhaustive expansion would pay near the start location.

Slot progression is *relative* and cyclic: hop ``k`` uses slot
``(slot_of(T) + k) mod num_slots``, the same wrap-around the residual
carry has always applied — time-of-day wraps at midnight rather than
clamping at the day's last slot, so a query near midnight sees one
consistent speed model.

The in-memory work runs on the CSR kernels of :mod:`repro.network.csr`:
covers are boolean row masks, per-step entry unions are fancy-index
stores, and the residual carry is the slot-phased vectorized expansion.
The classic set/heap implementations live on in
:mod:`repro.core.legacy_expansion` as the equivalence baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.con_index import ConnectionIndex, Kind
from repro.core.query import BoundingRegion
from repro.network.csr import (
    CSRGraph,
    close_twins_mask,
    cover_boundary_mask,
    expand_slotted,
)
from repro.network.model import RoadNetwork


def slot_aware_expansion(
    con_index: ConnectionIndex,
    seeds: list[int],
    start_time_s: float,
    budget_s: float,
    kind: Kind = "far",
) -> set[int]:
    """Continuous-time expansion under per-slot speed models.

    Algorithm 1's per-slot entry hops quantize travel to whole segments
    per slot: a segment whose traversal time exceeds Δt is never crossed,
    because each hop restarts from segment boundaries and intra-segment
    progress is lost.  On networks with long segments and a fine index
    (e.g. Δt = 1 min on 800 m segments) that silently clips the *maximum*
    bounding region — an upper bound that under-covers makes trace-back
    miss truly reachable segments.  This expansion carries residual
    progress across slot boundaries (the traversal cost of each segment is
    taken from the slot the traveller is in when entering it); its cover
    is unioned into the Far bound, so the bound never under-covers while
    the memoised Con-Index entries remain the fast path.

    Slot progression is *relative*: elapsed time ``t`` maps to slot
    ``(slot_of(T) + t // Δt) mod num_slots``, the same quantization as the
    entry hops.  The cover therefore depends only on the start slot (not
    the sub-slot start time), which is what makes bounding regions exactly
    shareable across queries in the same slot.
    """
    csr = con_index.network.csr()
    dist = _slot_expansion_dist(
        con_index, csr, csr.rows_of(list(seeds)), start_time_s, budget_s, kind
    )
    return csr.mask_to_id_set(np.isfinite(dist))


def _slot_expansion_dist(
    con_index: ConnectionIndex,
    csr: CSRGraph,
    seed_rows: np.ndarray,
    start_time_s: float,
    budget_s: float,
    kind: Kind,
) -> np.ndarray:
    """Residual-carry arrivals via the slot-phased CSR kernel."""
    start_slot = con_index.slot_of(start_time_s)
    num_slots = con_index.num_slots

    def cost_of_phase(phase: int) -> np.ndarray:
        return con_index.travel_time_vector(
            kind, (start_slot + phase) % num_slots
        )

    def cost_list_of_phase(phase: int) -> list[float]:
        return con_index.travel_time_list(
            kind, (start_slot + phase) % num_slots
        )

    return expand_slotted(
        csr,
        seed_rows,
        budget_s,
        float(con_index.delta_t_s),
        cost_of_phase,
        reverse=kind.endswith("_rev"),
        cost_list_of_phase=cost_list_of_phase,
    )


def close_under_twins(network: RoadNetwork, cover: set[int]) -> None:
    """Add the opposite carriageway of every covered two-way road.

    Reachability (Eq. 3.1) is road-level — the probability estimator merges
    a segment's time lists with its twin's — so bounding regions must be
    road-level too, or the trace-back would treat the far carriageway of a
    reachable road as out of bounds.
    """
    for segment_id in list(cover):
        twin = network.segment(segment_id).twin_id
        if twin is not None and network.has_segment(twin):
            cover.add(twin)


def region_boundary(
    network: RoadNetwork, cover: set[int], reverse: bool = False
) -> set[int]:
    """The outer shell of a cover: members with an escape successor.

    Args:
        network: road network.
        cover: segment set whose shell to compute.
        reverse: use predecessors as the escape relation (for the backward
            bounding regions of reverse reachability queries).
    """
    csr = network.csr()
    mask = np.zeros(csr.n, dtype=bool)
    if cover:
        mask[csr.rows_of(sorted(cover))] = True
    boundary = csr.mask_to_id_set(cover_boundary_mask(csr, mask, reverse))
    if not boundary and cover:
        # A saturated cover on a network with no dead ends (e.g. a ring
        # city) has no escape edges; the bound then prunes nothing, and the
        # trace-back must examine the whole cover.
        return set(cover)
    return boundary


def _boundary_id_set(
    csr: CSRGraph, cover: np.ndarray, cover_ids: set[int], reverse: bool = False
) -> set[int]:
    """Boundary of a cover mask as an id set, with the saturated-cover
    rule applied (no escape edges -> the whole cover is the boundary, see
    :func:`region_boundary`)."""
    boundary = csr.mask_to_id_set(cover_boundary_mask(csr, cover, reverse))
    if not boundary and cover_ids:
        return set(cover_ids)
    return boundary


def _entry_hops(
    con_index: ConnectionIndex,
    csr: CSRGraph,
    cover: np.ndarray,
    start_slot: int,
    steps: int,
    kind: Kind,
) -> None:
    """Algorithm 1's accumulate-and-rehop loop over a boolean row mask.

    Every covered segment's entry is unioned into the mask per step; the
    per-entry union is one fancy-index store of the entry's cached id
    array instead of a Python set union.

    Entries are fully determined by ``(segment, kind, hour)`` — speed
    bounds are hourly — so once a segment's entry has been unioned under
    a given hour, re-expanding it at a later same-hour step can add
    nothing (the cover only grows).  A per-row hour bitmask skips those
    no-op fetches, which turns the classic O(cover x steps) entry-fetch
    pattern into O(cover) per distinct hour the query spans.
    """
    num_slots = con_index.num_slots
    expanded_hours = np.zeros(csr.n, dtype=np.uint32)
    for step in range(steps):
        slot = (start_slot + step) % num_slots
        hour_bit = np.uint32(1 << con_index.slot_hour(slot))
        rows = np.flatnonzero(cover & ((expanded_hours & hour_bit) == 0))
        for segment_id in csr.ids_of(rows).tolist():
            entry = con_index.entry(segment_id, slot, kind)
            cover[csr.rows_of(entry.cover_ids())] = True
        expanded_hours[rows] |= hour_bit


def sqmb_bounding_region(
    con_index: ConnectionIndex,
    start_segment: int,
    start_time_s: float,
    duration_s: float,
    kind: Kind = "far",
) -> BoundingRegion:
    """Run Algorithm 1 from ``r0 = start_segment``.

    Args:
        con_index: the Connection Index.
        start_segment: ``r0``, resolved from the query location via ST-Index.
        start_time_s: ``T``.
        duration_s: ``L``; at least one Δt hop is always taken (a query
            shorter than the index granularity still needs a first-slot
            bound).
        kind: ``"far"`` for the maximum bounding region, ``"near"`` for the
            minimum one.

    Returns:
        The bounding region: accumulated cover plus its outer boundary.
    """
    csr = con_index.network.csr()
    delta_t = con_index.delta_t_s
    start_slot = con_index.slot_of(start_time_s)
    steps = max(1, int(duration_s // delta_t))
    cover = np.zeros(csr.n, dtype=bool)
    # A traveller standing on a two-way road may leave in either direction,
    # so both carriageways seed the expansion.
    seed_rows = [csr.row_of(start_segment)]
    twin_row = int(csr.twin_row[seed_rows[0]])
    if twin_row >= 0:
        seed_rows.append(twin_row)
    seed_rows = np.array(sorted(seed_rows), dtype=np.int64)
    cover[seed_rows] = True
    _entry_hops(con_index, csr, cover, start_slot, steps, kind)
    if kind == "far":
        # Top up with residual-carry expansion so the upper bound also
        # crosses segments whose traversal time exceeds one Δt slot.
        dist = _slot_expansion_dist(
            con_index, csr, seed_rows, start_time_s, steps * delta_t, kind
        )
        cover |= np.isfinite(dist)
    close_twins_mask(csr, cover)
    cover_ids = csr.mask_to_id_set(cover)
    return BoundingRegion(
        cover=cover_ids,
        boundary=_boundary_id_set(csr, cover, cover_ids),
        seed_of={segment_id: start_segment for segment_id in cover_ids},
    )
