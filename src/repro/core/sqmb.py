"""Algorithm 1: s-query maximum/minimum bounding-region search (SQMB).

Starting from the query's road segment ``r0``, SQMB hops through the
Con-Index one Δt slot at a time.  Exactly as the thesis's Algorithm 1
(lines 5–9) prescribes, the *entire* accumulated bounding set is expanded
at every step (``B = B ∪ F(r, T+l)`` for all ``r in R``, then ``R = B``),
for ``k`` steps with ``k·Δt <= L < (k+1)·Δt``; each hop grants a fresh Δt
of travel at the slot's historical extreme speeds, so after ``k`` hops the
accumulated cover is every segment the Con-Index vouches reachable within
``L``.  The region's outer boundary — the solid circles of Fig. 3.4 — is
the set of cover segments with at least one successor outside the cover.

No trajectory time lists are touched here: the whole point is that the
bounding region comes straight out of the Con-Index, skipping the disk
reads an exhaustive expansion would pay near the start location.
"""

from __future__ import annotations

import heapq

from repro.core.con_index import ConnectionIndex, Kind
from repro.core.query import BoundingRegion
from repro.network.model import RoadNetwork


def slot_aware_expansion(
    con_index: ConnectionIndex,
    seeds: list[int],
    start_time_s: float,
    budget_s: float,
    kind: Kind = "far",
) -> set[int]:
    """Continuous-time expansion under per-slot speed models.

    Algorithm 1's per-slot entry hops quantize travel to whole segments
    per slot: a segment whose traversal time exceeds Δt is never crossed,
    because each hop restarts from segment boundaries and intra-segment
    progress is lost.  On networks with long segments and a fine index
    (e.g. Δt = 1 min on 800 m segments) that silently clips the *maximum*
    bounding region — an upper bound that under-covers makes trace-back
    miss truly reachable segments.  This Dijkstra carries residual
    progress across slot boundaries (the traversal cost of each segment is
    taken from the slot the traveller is in when entering it); its cover
    is unioned into the Far bound, so the bound never under-covers while
    the memoised Con-Index entries remain the fast path.

    Slot progression is *relative*: elapsed time ``t`` maps to slot
    ``slot_of(T) + t // Δt``, the same quantization as the entry hops.
    The cover therefore depends only on the start slot (not the sub-slot
    start time), which is what makes bounding regions exactly shareable
    across queries in the same slot.
    """
    step_of = (
        con_index.network.predecessors
        if kind.endswith("_rev")
        else con_index.network.successors
    )
    start_slot = con_index.slot_of(start_time_s)
    delta_t = con_index.delta_t_s
    num_slots = con_index.num_slots
    travel_fns: dict[int, object] = {}

    def traversal(segment_id: int, time_s: float) -> float:
        slot = (start_slot + int(time_s // delta_t)) % num_slots
        fn = travel_fns.get(slot)
        if fn is None:
            fn = con_index.travel_time(kind, slot)
            travel_fns[slot] = fn
        return fn(segment_id)

    best: dict[int, float] = {seed: 0.0 for seed in seeds}
    heap: list[tuple[float, int]] = [(0.0, seed) for seed in seeds]
    heapq.heapify(heap)
    while heap:
        time_now, segment = heapq.heappop(heap)
        if time_now > best.get(segment, float("inf")):
            continue
        for neighbor in step_of(segment):
            cost = traversal(neighbor, time_now)
            if cost == float("inf"):
                continue
            reach = time_now + cost
            if reach > budget_s:
                continue
            if reach < best.get(neighbor, float("inf")):
                best[neighbor] = reach
                heapq.heappush(heap, (reach, neighbor))
    return set(best)


def close_under_twins(network: RoadNetwork, cover: set[int]) -> None:
    """Add the opposite carriageway of every covered two-way road.

    Reachability (Eq. 3.1) is road-level — the probability estimator merges
    a segment's time lists with its twin's — so bounding regions must be
    road-level too, or the trace-back would treat the far carriageway of a
    reachable road as out of bounds.
    """
    for segment_id in list(cover):
        twin = network.segment(segment_id).twin_id
        if twin is not None and network.has_segment(twin):
            cover.add(twin)


def region_boundary(
    network: RoadNetwork, cover: set[int], reverse: bool = False
) -> set[int]:
    """The outer shell of a cover: members with an escape successor.

    Args:
        network: road network.
        cover: segment set whose shell to compute.
        reverse: use predecessors as the escape relation (for the backward
            bounding regions of reverse reachability queries).
    """
    step_of = network.predecessors if reverse else network.successors
    boundary: set[int] = set()
    for segment_id in cover:
        neighbors = step_of(segment_id)
        if not neighbors or any(s not in cover for s in neighbors):
            boundary.add(segment_id)
    if not boundary and cover:
        # A saturated cover on a network with no dead ends (e.g. a ring
        # city) has no escape edges; the bound then prunes nothing, and the
        # trace-back must examine the whole cover.
        return set(cover)
    return boundary


def sqmb_bounding_region(
    con_index: ConnectionIndex,
    start_segment: int,
    start_time_s: float,
    duration_s: float,
    kind: Kind = "far",
) -> BoundingRegion:
    """Run Algorithm 1 from ``r0 = start_segment``.

    Args:
        con_index: the Connection Index.
        start_segment: ``r0``, resolved from the query location via ST-Index.
        start_time_s: ``T``.
        duration_s: ``L``; at least one Δt hop is always taken (a query
            shorter than the index granularity still needs a first-slot
            bound).
        kind: ``"far"`` for the maximum bounding region, ``"near"`` for the
            minimum one.

    Returns:
        The bounding region: accumulated cover plus its outer boundary.
    """
    delta_t = con_index.delta_t_s
    steps = max(1, int(duration_s // delta_t))
    # A traveller standing on a two-way road may leave in either direction,
    # so both carriageways seed the expansion.
    cover: set[int] = {start_segment}
    twin = con_index.network.segment(start_segment).twin_id
    if twin is not None and con_index.network.has_segment(twin):
        cover.add(twin)
    seeds = sorted(cover)
    for step in range(steps):
        slot = con_index.slot_of(start_time_s + step * delta_t)
        additions: set[int] = set()
        for segment_id in cover:
            entry = con_index.entry(segment_id, slot, kind)
            additions |= entry.cover
        cover |= additions
    if kind == "far":
        # Top up with residual-carry expansion so the upper bound also
        # crosses segments whose traversal time exceeds one Δt slot.
        cover |= slot_aware_expansion(
            con_index, seeds, start_time_s, steps * delta_t, kind
        )
    close_under_twins(con_index.network, cover)
    return BoundingRegion(
        cover=cover,
        boundary=region_boundary(con_index.network, cover),
        seed_of={segment_id: start_segment for segment_id in cover},
    )
