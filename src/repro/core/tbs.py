"""Algorithm 2: Trace Back Search (TBS).

TBS refines the maximum bounding region into the exact Prob-reachable
region.  It dequeues segments starting from the *outer* boundary of the
maximum bounding region; a segment whose Eq. 3.1 probability meets ``Prob``
is accepted (and, per the thesis's closer-is-more-reachable monotonicity
assumption, not expanded); a failing segment pushes its not-yet-visited
inward neighbours — minus the minimum bounding region — onto the queue.
Visited marking guarantees each segment is examined once (the ``r*``
example of Fig. 3.5).

The queue is drained in *waves*: each iteration snapshots the whole
pending frontier and evaluates every member's probability in one batch
call to the columnar kernel
(:meth:`~repro.core.probability.ProbabilityEstimator.probabilities`)
before any accept/fail processing.  Because a segment's probability is a
pure function of the trajectory data — independent of discovery order —
and the wave preserves the classic FIFO evaluation order, the examined
set, the per-segment probabilities and the charged time-list reads are
*identical* to the one-segment-at-a-time loop (preserved in
:mod:`repro.core.legacy_probability` as the equivalence baseline); only
the per-check Python overhead disappears.

The returned region is the minimum bounding cover (guaranteed reachable by
construction of the Near lists), plus every accepted segment, plus the
unexamined interior: segments of the maximum cover that a flood fill from
``r0`` can reach without crossing a segment that *failed* the probability
test.  That interior is exactly the part TBS never had to read trajectory
data for — the disk savings over exhaustive search.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.probability import ProbabilityEstimator
from repro.core.query import BoundingRegion
from repro.network.model import RoadNetwork


@dataclass
class TraceBackResult:
    """Outcome of one trace-back search.

    Attributes:
        region: the final Prob-reachable segment set.
        passed: segments that explicitly met the probability threshold.
        failed: segments that were examined and fell short.
        probabilities: every probability actually computed.
        wave_sizes: members per evaluation wave, in dequeue order (the
            scalar reference records waves of one).
    """

    region: set[int] = field(default_factory=set)
    passed: set[int] = field(default_factory=set)
    failed: set[int] = field(default_factory=set)
    probabilities: dict[int, float] = field(default_factory=dict)
    wave_sizes: list[int] = field(default_factory=list)

    @property
    def examined(self) -> int:
        return len(self.passed) + len(self.failed)


def trace_back_search(
    network: RoadNetwork,
    estimators: dict[int, ProbabilityEstimator],
    prob: float,
    max_region: BoundingRegion,
    min_region: BoundingRegion,
) -> TraceBackResult:
    """Run Algorithm 2 over (possibly multi-seed) bounding regions.

    Args:
        network: road network supplying ``neighbor(r)``.
        estimators: per-seed probability estimators; for an s-query this is
            ``{r0: estimator}``, for an m-query one per start segment (each
            examined segment is tested against the seed that claimed it in
            the bounding region's ``seed_of`` attribution).  An empty dict
            yields an empty result: with nothing to vouch for any segment,
            nothing is Prob-reachable.
        prob: the query's probability threshold.
        max_region: output of SQMB/MQMB with kind="far".
        min_region: output of SQMB/MQMB with kind="near".

    Returns:
        The Prob-reachable region and bookkeeping sets.
    """
    result = TraceBackResult()
    if not estimators:
        return result
    max_cover = max_region.cover
    min_cover = min_region.cover
    default_seed = next(iter(estimators))
    single = (
        next(iter(estimators.values())) if len(estimators) == 1 else None
    )

    def estimators_for(segment_id: int) -> list[ProbabilityEstimator]:
        """Candidate estimators: the claiming seed first, then the rest.

        An m-query segment sits in the *union* of per-seed regions, so if
        the nearest seed cannot vouch for it the other seeds are consulted
        before the segment is declared unreachable.
        """
        seed = max_region.seed_of.get(segment_id, default_seed)
        first = estimators.get(seed, estimators[default_seed])
        ordered = [first]
        ordered.extend(e for s, e in estimators.items() if e is not first)
        return ordered

    def wave_probabilities(wave: list[int]) -> list[float]:
        if single is not None:
            # One seed, no fallback ordering: the whole wave is one
            # batched kernel call.
            return single.probabilities(wave)
        # Multi-seed: evaluate per segment in wave order so the fallback
        # consultations interleave exactly as the scalar loop's reads do
        # (each per-segment call still runs through the columnar kernel).
        values: list[float] = []
        for segment_id in wave:
            candidates = estimators_for(segment_id)
            probability = candidates[0].probability(segment_id)
            if probability < prob:
                # The claiming seed cannot vouch for the segment, but the
                # m-query result is a *union* of per-seed regions, so
                # consult the remaining seeds.  Their time-list reads hit
                # pages the first estimator already pulled into the
                # buffer pool, so the extra verifications cost membership
                # probes, not disk I/O.
                for estimator in candidates[1:]:
                    probability = max(
                        probability, estimator.probability(segment_id)
                    )
                    if probability >= prob:
                        break
            values.append(probability)
        return values

    queue: deque[int] = deque(sorted(max_region.boundary))
    visited: set[int] = set(max_region.boundary)
    while queue:
        wave = list(queue)
        queue.clear()
        result.wave_sizes.append(len(wave))
        for segment_id, probability in zip(wave, wave_probabilities(wave)):
            result.probabilities[segment_id] = probability
            if probability >= prob:
                result.passed.add(segment_id)
                continue
            result.failed.add(segment_id)
            for neighbor in network.neighbors(segment_id):
                if neighbor in visited:
                    continue
                if neighbor not in max_cover:
                    continue  # never step outside the maximum bound
                if neighbor in min_cover:
                    continue  # Algorithm 2 line 9: neighbor(r) - Bmin
                visited.add(neighbor)
                queue.append(neighbor)

    # Assemble the final region: minimum cover + accepted segments + the
    # unexamined interior reachable from the seeds without crossing a
    # failed segment.
    result.region = set(min_cover) | result.passed
    seeds = [seed for seed in estimators if seed in max_cover]
    flood: deque[int] = deque(seeds)
    seen: set[int] = set(seeds)
    while flood:
        segment_id = flood.popleft()
        if segment_id in result.failed:
            continue
        result.region.add(segment_id)
        for neighbor in network.neighbors(segment_id):
            if neighbor in seen:
                continue
            if neighbor not in max_cover:
                continue
            if neighbor in result.failed:
                continue
            seen.add(neighbor)
            flood.append(neighbor)
    return result
