"""Reference (pre-kernel) expansion implementations.

These are the classic Python set/``heapq`` implementations that the CSR
kernels in :mod:`repro.network.csr` replaced.  They are kept for two
reasons:

* the kernel-equivalence tests prove the vectorized expansion layer
  produces *identical* covers, boundaries and seed assignments on
  randomized networks, and need a trustworthy baseline to diff against;
* ``benchmarks/bench_expansion.py`` measures the kernel speedup against
  them, both at the microbenchmark level and end-to-end (by temporarily
  routing the executors through these functions).

They carry the same midnight semantics as the live code: slot progression
is *relative* (``(start_slot + step) % num_slots``), time-of-day being
cyclic — the pre-fix entry hops clamped at the last slot of the day
instead, which mixed two speed models for queries near midnight.
"""

from __future__ import annotations

import heapq

from repro.core.query import BoundingRegion
from repro.network.expansion import ExpansionResult
from repro.network.model import RoadNetwork


def decode_time_list_reference(payload: bytes) -> dict[int, list[tuple[int, int]]]:
    """The pre-vectorization time-list decoder (per-element tuple builds).

    Decoding happens on every charged time-list read in the TBS/ES hot
    path, so this is part of the honest pre-PR end-to-end baseline.
    """
    import struct

    from repro.storage.serialization import SerializationError

    if len(payload) % 4 != 0:
        raise SerializationError("time list payload not uint32-aligned")
    values = struct.unpack(f"<{len(payload) // 4}I", payload)
    num_dates = values[0]
    per_date: dict[int, list[tuple[int, int]]] = {}
    offset = 1
    for _ in range(num_dates):
        if offset + 2 > len(values):
            raise SerializationError("truncated time list header")
        date, count = values[offset], values[offset + 1]
        offset += 2
        if offset + 2 * count > len(values):
            raise SerializationError("truncated time list ids")
        per_date[date] = [
            (values[offset + 2 * i], values[offset + 2 * i + 1])
            for i in range(count)
        ]
        offset += 2 * count
    if offset != len(values):
        raise SerializationError("trailing values in time list payload")
    return per_date


def travel_time_reference(con_index, kind: str, slot: int):
    """The pre-kernel per-slot speed closure (per-call bounds probing).

    This is what Con-Index construction and the residual carry expanded
    with before the cached ``travel_time_vector`` arrays existed: every
    traversal-cost evaluation probes the database's hourly speed-bound
    dictionaries.  Kept as the honest baseline for the construction-side
    benchmark rows.
    """
    mid_time = con_index._slot_mid_time(slot)
    bounds_of = con_index.database.observed_speed_bounds
    lengths = con_index._segment_length
    pick_max = kind.startswith("far")

    def travel_time(segment_id: int) -> float:
        bounds = bounds_of(segment_id, mid_time)
        if bounds is None:
            return float("inf")
        speed = bounds[1] if pick_max else bounds[0]
        if speed <= 0:
            return float("inf")
        return lengths[segment_id] / speed

    return travel_time


def time_bounded_expansion_reference(
    network: RoadNetwork,
    start_segment: int,
    budget_s: float,
    travel_time,
    reverse: bool = False,
) -> ExpansionResult:
    """Budgeted Dijkstra over the segment graph (classic implementation)."""
    if budget_s < 0:
        raise ValueError(f"budget must be >= 0, got {budget_s}")
    step_of = network.predecessors if reverse else network.successors
    result = ExpansionResult()
    arrival = result.arrival
    heap: list[tuple[float, int]] = [(0.0, start_segment)]
    best: dict[int, float] = {start_segment: 0.0}
    while heap:
        time_now, segment = heapq.heappop(heap)
        if time_now > best.get(segment, float("inf")):
            continue
        arrival[segment] = time_now
        for neighbor in step_of(segment):
            cost = travel_time(neighbor)
            if cost is None or cost == float("inf"):
                continue
            reach = time_now + cost
            if reach > budget_s:
                continue
            if reach < best.get(neighbor, float("inf")):
                best[neighbor] = reach
                heapq.heappush(heap, (reach, neighbor))
    cover = set(arrival)
    for segment in cover:
        neighbors = step_of(segment)
        if not neighbors or any(s not in cover for s in neighbors):
            result.frontier.add(segment)
    return result


def slot_aware_expansion_reference(
    con_index,
    seeds: list[int],
    start_time_s: float,
    budget_s: float,
    kind: str = "far",
) -> set[int]:
    """Residual-carry Dijkstra under per-slot speeds (classic heap loop)."""
    step_of = (
        con_index.network.predecessors
        if kind.endswith("_rev")
        else con_index.network.successors
    )
    start_slot = con_index.slot_of(start_time_s)
    delta_t = con_index.delta_t_s
    num_slots = con_index.num_slots
    travel_fns: dict[int, object] = {}

    def traversal(segment_id: int, time_s: float) -> float:
        slot = (start_slot + int(time_s // delta_t)) % num_slots
        fn = travel_fns.get(slot)
        if fn is None:
            fn = travel_time_reference(con_index, kind, slot)
            travel_fns[slot] = fn
        return fn(segment_id)

    best: dict[int, float] = {seed: 0.0 for seed in seeds}
    heap: list[tuple[float, int]] = [(0.0, seed) for seed in seeds]
    heapq.heapify(heap)
    while heap:
        time_now, segment = heapq.heappop(heap)
        if time_now > best.get(segment, float("inf")):
            continue
        for neighbor in step_of(segment):
            cost = traversal(neighbor, time_now)
            if cost == float("inf"):
                continue
            reach = time_now + cost
            if reach > budget_s:
                continue
            if reach < best.get(neighbor, float("inf")):
                best[neighbor] = reach
                heapq.heappush(heap, (reach, neighbor))
    return set(best)


def close_under_twins_reference(network: RoadNetwork, cover: set[int]) -> None:
    for segment_id in list(cover):
        twin = network.segment(segment_id).twin_id
        if twin is not None and network.has_segment(twin):
            cover.add(twin)


def region_boundary_reference(
    network: RoadNetwork, cover: set[int], reverse: bool = False
) -> set[int]:
    step_of = network.predecessors if reverse else network.successors
    boundary: set[int] = set()
    for segment_id in cover:
        neighbors = step_of(segment_id)
        if not neighbors or any(s not in cover for s in neighbors):
            boundary.add(segment_id)
    if not boundary and cover:
        return set(cover)
    return boundary


def sqmb_bounding_region_reference(
    con_index,
    start_segment: int,
    start_time_s: float,
    duration_s: float,
    kind: str = "far",
) -> BoundingRegion:
    """Algorithm 1 with per-step Python set unions (classic implementation)."""
    delta_t = con_index.delta_t_s
    num_slots = con_index.num_slots
    start_slot = con_index.slot_of(start_time_s)
    steps = max(1, int(duration_s // delta_t))
    cover: set[int] = {start_segment}
    twin = con_index.network.segment(start_segment).twin_id
    if twin is not None and con_index.network.has_segment(twin):
        cover.add(twin)
    seeds = sorted(cover)
    for step in range(steps):
        slot = (start_slot + step) % num_slots
        additions: set[int] = set()
        for segment_id in cover:
            entry = con_index.entry(segment_id, slot, kind)
            additions |= entry.cover
        cover |= additions
    if kind == "far":
        cover |= slot_aware_expansion_reference(
            con_index, seeds, start_time_s, steps * delta_t, kind
        )
    close_under_twins_reference(con_index.network, cover)
    return BoundingRegion(
        cover=cover,
        boundary=region_boundary_reference(con_index.network, cover),
        seed_of={segment_id: start_segment for segment_id in cover},
    )


def mqmb_bounding_region_reference(
    con_index,
    start_segments: list[int],
    start_time_s: float,
    duration_s: float,
    kind: str = "far",
) -> BoundingRegion:
    """Algorithm 3 with Python-set unions and per-element nearest-seed."""
    if not start_segments:
        raise ValueError("m-query needs at least one start segment")
    network = con_index.network
    seeds = list(dict.fromkeys(start_segments))
    delta_t = con_index.delta_t_s
    num_slots = con_index.num_slots
    start_slot = con_index.slot_of(start_time_s)
    steps = max(1, int(duration_s // delta_t))
    midpoints = {seed: network.segment(seed).midpoint for seed in seeds}

    def nearest_seed(segment_id: int) -> int:
        mid = network.segment(segment_id).midpoint
        return min(seeds, key=lambda seed: midpoints[seed].distance_to(mid))

    seed_of: dict[int, int] = {seed: seed for seed in seeds}
    if len(seeds) > 1:
        for seed in seeds:
            seed_of[seed] = nearest_seed(seed)
    cover: set[int] = set(seeds)
    for seed in seeds:
        twin = network.segment(seed).twin_id
        if twin is not None and network.has_segment(twin):
            cover.add(twin)
            seed_of.setdefault(twin, seed_of[seed])
    expansion_seeds = sorted(cover)
    for step in range(steps):
        slot = (start_slot + step) % num_slots
        additions: set[int] = set()
        for segment_id in cover:
            entry = con_index.entry(segment_id, slot, kind)
            additions |= entry.cover
        additions -= cover
        for segment_id in additions:
            seed_of[segment_id] = (
                nearest_seed(segment_id) if len(seeds) > 1 else seeds[0]
            )
        cover |= additions
    if kind == "far":
        carried = (
            slot_aware_expansion_reference(
                con_index, expansion_seeds, start_time_s, steps * delta_t, kind
            )
            - cover
        )
        for segment_id in carried:
            seed_of[segment_id] = (
                nearest_seed(segment_id) if len(seeds) > 1 else seeds[0]
            )
        cover |= carried
    close_under_twins_reference(network, cover)
    for segment_id in list(cover):
        if segment_id not in seed_of:
            twin = network.segment(segment_id).twin_id
            seed_of[segment_id] = seed_of.get(twin, seeds[0])
    return BoundingRegion(
        cover=cover,
        boundary=region_boundary_reference(network, cover),
        seed_of=seed_of,
    )


def reverse_bounding_region_reference(
    con_index,
    target_segment: int,
    start_time_s: float,
    duration_s: float,
    kind: str = "far",
) -> BoundingRegion:
    """Algorithm 1 run backwards (classic implementation)."""
    if kind not in ("far", "near"):
        raise ValueError(f"kind must be 'far' or 'near', got {kind!r}")
    reverse_kind = f"{kind}_rev"
    network = con_index.network
    delta_t = con_index.delta_t_s
    num_slots = con_index.num_slots
    start_slot = con_index.slot_of(start_time_s)
    steps = max(1, int(duration_s // delta_t))
    cover: set[int] = {target_segment}
    twin = network.segment(target_segment).twin_id
    if twin is not None and network.has_segment(twin):
        cover.add(twin)
    seeds = sorted(cover)
    for step in range(steps):
        slot = (start_slot + step) % num_slots
        additions: set[int] = set()
        for segment_id in cover:
            entry = con_index.entry(segment_id, slot, reverse_kind)
            additions |= entry.cover
        cover |= additions
    if kind == "far":
        cover |= slot_aware_expansion_reference(
            con_index, seeds, start_time_s, steps * delta_t, reverse_kind
        )
    close_under_twins_reference(network, cover)
    return BoundingRegion(
        cover=cover,
        boundary=region_boundary_reference(network, cover, reverse=True),
        seed_of={segment_id: target_segment for segment_id in cover},
    )
