"""Algorithm 3: m-query maximum/minimum bounding-region search (MQMB).

The naive way to answer an m-query is to run SQMB+TBS once per location and
union the results — paying for the overlapping interiors repeatedly.  MQMB
instead grows all seeds *together* over the shared accumulated bounding set
``B``: each newly covered segment is claimed by exactly one seed — the
nearest one, per the §3.3.2 elimination rule (``rs = argmin dis(r', b)``)
— and is expanded exactly once per step regardless of how many per-seed
regions overlap it.  The result is the outer-most boundary of the merged
bounding regions (Fig. 3.6b), at roughly the cost of the largest single
bounding region instead of the sum of all of them.
"""

from __future__ import annotations

from repro.core.con_index import ConnectionIndex, Kind
from repro.core.query import BoundingRegion
from repro.core.sqmb import (
    close_under_twins,
    region_boundary,
    slot_aware_expansion,
)


def mqmb_bounding_region(
    con_index: ConnectionIndex,
    start_segments: list[int],
    start_time_s: float,
    duration_s: float,
    kind: Kind = "far",
) -> BoundingRegion:
    """Run Algorithm 3 from the start segment set ``R0``.

    Args:
        con_index: the Connection Index.
        start_segments: ``R0 = {r0,1, ..., r0,n}`` resolved via ST-Index.
        start_time_s: ``T``.
        duration_s: ``L``.
        kind: ``"far"`` (maximum) or ``"near"`` (minimum) bounding region.

    Returns:
        The unified bounding region; ``seed_of`` maps every cover segment to
        the seed that claimed it (used by trace-back to pick the right
        probability estimator).
    """
    if not start_segments:
        raise ValueError("m-query needs at least one start segment")
    network = con_index.network
    seeds = list(dict.fromkeys(start_segments))  # preserve order, dedupe
    delta_t = con_index.delta_t_s
    steps = max(1, int(duration_s // delta_t))
    midpoints = {
        seed: network.segment(seed).midpoint for seed in seeds
    }

    def nearest_seed(segment_id: int) -> int:
        mid = network.segment(segment_id).midpoint
        return min(seeds, key=lambda seed: midpoints[seed].distance_to(mid))

    # seed_of implements the overlap elimination: each covered segment is
    # claimed once, by its nearest seed, and expanded once per step on that
    # seed's behalf — never once per overlapping region.
    seed_of: dict[int, int] = {seed: seed for seed in seeds}
    if len(seeds) > 1:
        for seed in seeds:
            seed_of[seed] = nearest_seed(seed)
    cover: set[int] = set(seeds)
    # Both carriageways of each seed road start the expansion.
    for seed in seeds:
        twin = network.segment(seed).twin_id
        if twin is not None and network.has_segment(twin):
            cover.add(twin)
            seed_of.setdefault(twin, seed_of[seed])
    expansion_seeds = sorted(cover)
    for step in range(steps):
        slot = con_index.slot_of(start_time_s + step * delta_t)
        additions: set[int] = set()
        for segment_id in cover:
            entry = con_index.entry(segment_id, slot, kind)
            additions |= entry.cover
        additions -= cover
        for segment_id in additions:
            seed_of[segment_id] = (
                nearest_seed(segment_id) if len(seeds) > 1 else seeds[0]
            )
        cover |= additions
    if kind == "far":
        # Residual-carry top-up (see sqmb.slot_aware_expansion): the upper
        # bound must also cross segments slower than one Δt slot.
        carried = (
            slot_aware_expansion(
                con_index, expansion_seeds, start_time_s,
                steps * delta_t, kind,
            )
            - cover
        )
        for segment_id in carried:
            seed_of[segment_id] = (
                nearest_seed(segment_id) if len(seeds) > 1 else seeds[0]
            )
        cover |= carried
    close_under_twins(network, cover)
    for segment_id in list(cover):
        if segment_id not in seed_of:
            twin = network.segment(segment_id).twin_id
            seed_of[segment_id] = seed_of.get(twin, seeds[0])
    return BoundingRegion(
        cover=cover,
        boundary=region_boundary(network, cover),
        seed_of=seed_of,
    )
