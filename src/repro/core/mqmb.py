"""Algorithm 3: m-query maximum/minimum bounding-region search (MQMB).

The naive way to answer an m-query is to run SQMB+TBS once per location and
union the results — paying for the overlapping interiors repeatedly.  MQMB
instead grows all seeds *together* over the shared accumulated bounding set
``B``: each newly covered segment is claimed by exactly one seed — the
nearest one, per the §3.3.2 elimination rule (``rs = argmin dis(r', b)``)
— and is expanded exactly once per step regardless of how many per-seed
regions overlap it.  The result is the outer-most boundary of the merged
bounding regions (Fig. 3.6b), at roughly the cost of the largest single
bounding region instead of the sum of all of them.

Like SQMB, the cover lives in a boolean CSR row mask and the per-step
entry unions are fancy-index stores; the nearest-seed claiming runs as one
``argmin`` over a (new segments × seeds) midpoint-distance matrix per step
instead of a Python ``min`` per segment.
"""

from __future__ import annotations

import numpy as np

from repro.core.con_index import ConnectionIndex, Kind
from repro.core.query import BoundingRegion
from repro.core.sqmb import (
    _boundary_id_set,
    _entry_hops,
    _slot_expansion_dist,
    close_under_twins,
    region_boundary,
    slot_aware_expansion,
)
from repro.network.csr import close_twins_mask

__all__ = [
    "mqmb_bounding_region",
    "close_under_twins",
    "region_boundary",
    "slot_aware_expansion",
]


def mqmb_bounding_region(
    con_index: ConnectionIndex,
    start_segments: list[int],
    start_time_s: float,
    duration_s: float,
    kind: Kind = "far",
) -> BoundingRegion:
    """Run Algorithm 3 from the start segment set ``R0``.

    Args:
        con_index: the Connection Index.
        start_segments: ``R0 = {r0,1, ..., r0,n}`` resolved via ST-Index.
        start_time_s: ``T``.
        duration_s: ``L``.
        kind: ``"far"`` (maximum) or ``"near"`` (minimum) bounding region.

    Returns:
        The unified bounding region; ``seed_of`` maps every cover segment to
        the seed that claimed it (used by trace-back to pick the right
        probability estimator).
    """
    if not start_segments:
        raise ValueError("m-query needs at least one start segment")
    csr = con_index.network.csr()
    seeds = list(dict.fromkeys(start_segments))  # preserve order, dedupe
    delta_t = con_index.delta_t_s
    start_slot = con_index.slot_of(start_time_s)
    steps = max(1, int(duration_s // delta_t))
    seed_rows = csr.rows_of(seeds)
    seed_x = csr.mid_x[seed_rows]
    seed_y = csr.mid_y[seed_rows]

    def claim(rows: np.ndarray) -> np.ndarray:
        """Nearest-seed index per row (ties to the earliest seed, like the
        classic per-segment ``min`` over the seed list)."""
        if len(seeds) == 1 or rows.size == 0:
            return np.zeros(rows.size, dtype=np.int64)
        distance = np.hypot(
            csr.mid_x[rows, None] - seed_x[None, :],
            csr.mid_y[rows, None] - seed_y[None, :],
        )
        return np.argmin(distance, axis=1)

    # claimed_by implements the overlap elimination: each covered segment is
    # claimed once, by its nearest seed, and expanded once per step on that
    # seed's behalf — never once per overlapping region.
    claimed_by = np.full(csr.n, -1, dtype=np.int64)
    claimed_by[seed_rows] = claim(seed_rows)
    cover = np.zeros(csr.n, dtype=bool)
    cover[seed_rows] = True
    # Both carriageways of each seed road start the expansion.
    for row in seed_rows.tolist():
        twin_row = int(csr.twin_row[row])
        if twin_row >= 0:
            cover[twin_row] = True
            if claimed_by[twin_row] < 0:
                claimed_by[twin_row] = claimed_by[row]
    expansion_seed_rows = np.flatnonzero(cover)
    _entry_hops(con_index, csr, cover, start_slot, steps, kind)
    if kind == "far":
        # Residual-carry top-up (see sqmb.slot_aware_expansion): the upper
        # bound must also cross segments slower than one Δt slot.
        dist = _slot_expansion_dist(
            con_index, csr, expansion_seed_rows, start_time_s,
            steps * delta_t, kind,
        )
        cover |= np.isfinite(dist)
    # claim() depends only on the row (nearest seed by midpoint), not on
    # which step covered it, so every newly covered segment is claimed in
    # one batch — before the road-level closure, whose twins inherit.
    new_rows = np.flatnonzero(cover & (claimed_by < 0))
    claimed_by[new_rows] = claim(new_rows)
    close_twins_mask(csr, cover)
    # Twins added by the road-level closure inherit their carriageway's
    # seed (falling back to the first seed, as the classic code did).
    unclaimed = np.flatnonzero(cover & (claimed_by < 0))
    for row in unclaimed.tolist():
        twin_row = int(csr.twin_row[row])
        if twin_row >= 0 and claimed_by[twin_row] >= 0:
            claimed_by[row] = claimed_by[twin_row]
        else:
            claimed_by[row] = 0
    cover_rows = np.flatnonzero(cover)
    cover_id_list = csr.ids_of(cover_rows).tolist()
    cover_ids = set(cover_id_list)
    boundary = _boundary_id_set(csr, cover, cover_ids)
    seed_of = {
        segment_id: seeds[seed_index]
        for segment_id, seed_index in zip(
            cover_id_list, claimed_by[cover_rows].tolist()
        )
    }
    return BoundingRegion(
        cover=cover_ids,
        boundary=boundary,
        seed_of=seed_of,
    )
