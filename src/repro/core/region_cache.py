"""A thread-safe, service-lifetime LRU cache for bounding regions.

The per-batch dict that :class:`~repro.core.service.QueryService` used to
hand each :class:`~repro.core.executors.ExecutionContext` had two
problems: it was thrown away between batches (nearby workloads re-expand
the same regions every batch), and it was mutated from worker threads
without synchronization (two threads could compute the same region twice
and the dedup counters could undercount).

:class:`RegionCache` fixes both.  It is owned by the service, so regions
are shared *across* batches; all state is guarded by one lock; and an
*in-flight* table deduplicates concurrent computations of the same key —
the second thread waits for the first instead of re-expanding, which is
what makes the ``BatchReport`` counters exact under ``max_workers > 1``.

The cache key is exactly the region identity: ``(strategy, seeds, start
slot, Δt hops, near/far kind, Δt)`` — sub-slot start time and probability
threshold cannot change a bounding region, and Δt participates because
the same slot number means different wall-clock slots at different
granularities.  Invalidation is explicit: the service clears the cache
when trajectory data is appended or indexes are rebuilt.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable


class RegionCache:
    """LRU ``key -> BoundingRegion`` map with in-flight deduplication.

    Args:
        capacity: maximum number of cached regions; least recently used
            entries are evicted beyond it.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()  # guarded_by: _lock
        self._inflight: dict[Hashable, threading.Event] = {}  # guarded_by: _lock
        self._generation = 0  # guarded_by: _lock
        self.hits = 0  # guarded_by: _lock
        self.misses = 0  # guarded_by: _lock
        self.invalidations = 0  # guarded_by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Return ``(value, reused)``; computes at most once per key.

        A thread that finds the key neither cached nor in flight computes
        the value itself (outside the lock) and publishes it; concurrent
        requesters for the same key block on the computing thread's event
        and count as reuses.  If the computation raises, waiters retry so
        one failure does not poison the key.
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return self._entries[key], True
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    generation = self._generation
                    self.misses += 1
                    break
            event.wait()
            # Loop: the value is normally cached now; if the computing
            # thread failed (or the entry was already evicted), recompute.
        try:
            value = compute()
        except BaseException:
            with self._lock:
                self._inflight.pop(key, None)
            event.set()
            raise
        with self._lock:
            if self._generation == generation:
                # An invalidation during the computation means the value
                # may derive from pre-invalidation data: return it to the
                # requester (its own query began before the change) but
                # never publish it for later queries.
                self._entries[key] = value
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
            self._inflight.pop(key, None)
        event.set()
        return value, False

    def invalidate(self) -> None:
        """Drop every cached region (data or index change).

        Also fences in-flight computations: a region still being computed
        from pre-invalidation data will not be published into the cache
        when it finishes.
        """
        with self._lock:
            self._entries.clear()
            self._generation += 1
            self.invalidations += 1

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            }
