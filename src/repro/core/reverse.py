"""Reverse spatio-temporal reachability queries.

The paper's location-based-advertising application (§1.1, Fig 1.2) really
asks the *dual* of the s-query: from which road segments can customers
reach the mall within ``L`` minutes — i.e. find every segment ``r`` such
that on at least a ``Prob`` fraction of days some trajectory passed ``r``
during the first slot ``[T, T+Δt]`` and then reached the target ``S``
within ``[T, T+L]``.

The machinery mirrors the forward query with the direction flipped:

* the *reverse* probability fixes the target's window ``[T, T+L]`` once and
  intersects each candidate's *first-slot* window against it (cheaper per
  check than the forward estimator, which reads the whole window per
  candidate);
* the bounding regions come from Con-Index entries computed by *backward*
  network expansion over predecessors (``kind="far_rev"/"near_rev"``);
* trace-back search and the exhaustive baseline are reused unchanged —
  they only consume ``probability(segment)`` and undirected adjacency.
"""

from __future__ import annotations

import numpy as np

from repro.core.baseline import ExhaustiveResult, exhaustive_search
from repro.core.con_index import ConnectionIndex
from repro.core.probability import DEPARTURE_WINDOW_S
from repro.core.query import BoundingRegion
from repro.core.sqmb import _boundary_id_set, _entry_hops, _slot_expansion_dist
from repro.core.st_index import STIndex
from repro.network.csr import close_twins_mask
from repro.network.model import RoadNetwork


class ReverseProbabilityEstimator:
    """Eq. 3.1 with the roles of start and target segments swapped.

    ``probability(r)`` is the fraction of days on which a single trajectory
    passed ``r`` in ``[T, T+Δt]`` and the fixed target segment within
    ``[T, T+L]``.

    Args:
        index: the ST-Index to read time lists from.
        target_segment: the destination ``S`` resolved to a road segment.
        start_time_s: ``T``.
        duration_s: ``L``.
        num_days: ``m``.
    """

    def __init__(
        self,
        index: STIndex,
        target_segment: int,
        start_time_s: float,
        duration_s: float,
        num_days: int,
    ) -> None:
        if num_days <= 0:
            raise ValueError(f"num_days must be positive, got {num_days}")
        self.index = index
        self.network = index.network
        # `start_segment` naming keeps the TBS/ES interfaces uniform.
        self.start_segment = target_segment
        self.target_segment = target_segment
        self.start_time_s = start_time_s
        self.duration_s = duration_s
        self.num_days = num_days
        self.checks = 0
        self._cache: dict[int, float] = {}
        self._target_sets = self._merged_window(
            target_segment, start_time_s, start_time_s + duration_s
        )

    def _twin(self, segment_id: int) -> int | None:
        twin = self.network.segment(segment_id).twin_id
        if twin is not None and self.network.has_segment(twin):
            return twin
        return None

    def _merged_window(
        self, segment_id: int, start_s: float, end_s: float
    ) -> dict[int, set[int]]:
        merged = self.index.trajectories_in_window(segment_id, start_s, end_s)
        twin = self._twin(segment_id)
        if twin is not None:
            for date, ids in self.index.trajectories_in_window(
                twin, start_s, end_s
            ).items():
                bucket = merged.get(date)
                if bucket is None:
                    merged[date] = set(ids)
                else:
                    bucket |= ids
        return merged

    @property
    def start_days(self) -> int:
        """Days on which any trajectory visited the target within the window."""
        return sum(1 for ids in self._target_sets.values() if ids)

    def probability(self, segment_id: int) -> float:
        """Reverse reachability probability of ``segment_id`` (cached)."""
        cached = self._cache.get(segment_id)
        if cached is not None:
            return cached
        self.checks += 1
        if not self._target_sets:
            value = 0.0
        else:
            origin_sets = self._merged_window(
                segment_id,
                self.start_time_s,
                self.start_time_s
                + min(DEPARTURE_WINDOW_S, self.duration_s),
            )
            good_days = 0
            for date, target_ids in self._target_sets.items():
                origin_ids = origin_sets.get(date)
                if origin_ids and not target_ids.isdisjoint(origin_ids):
                    good_days += 1
            value = good_days / self.num_days
        self._cache[segment_id] = value
        twin = self._twin(segment_id)
        if twin is not None:
            self._cache[twin] = value
        return value

    def is_reachable(self, segment_id: int, prob: float) -> bool:
        return self.probability(segment_id) >= prob


def reverse_bounding_region(
    con_index: ConnectionIndex,
    target_segment: int,
    start_time_s: float,
    duration_s: float,
    kind: str = "far",
) -> BoundingRegion:
    """Algorithm 1 run backwards: who can reach the target within ``L``.

    Uses the Con-Index's reverse entries (backward expansion over
    predecessors) and the same accumulate-and-rehop structure as SQMB.

    Args:
        con_index: the Connection Index.
        target_segment: the destination segment.
        start_time_s: ``T``.
        duration_s: ``L``.
        kind: ``"far"`` (maximum region) or ``"near"`` (minimum region);
            translated internally to the reverse entry kinds.
    """
    if kind not in ("far", "near"):
        raise ValueError(f"kind must be 'far' or 'near', got {kind!r}")
    reverse_kind = f"{kind}_rev"
    csr = con_index.network.csr()
    delta_t = con_index.delta_t_s
    start_slot = con_index.slot_of(start_time_s)
    steps = max(1, int(duration_s // delta_t))
    cover = np.zeros(csr.n, dtype=bool)
    seed_rows = [csr.row_of(target_segment)]
    twin_row = int(csr.twin_row[seed_rows[0]])
    if twin_row >= 0:
        seed_rows.append(twin_row)
    seed_rows = np.array(sorted(seed_rows), dtype=np.int64)
    cover[seed_rows] = True
    _entry_hops(con_index, csr, cover, start_slot, steps, reverse_kind)
    if kind == "far":
        # Residual-carry top-up (see sqmb.slot_aware_expansion): the upper
        # bound must also cross segments slower than one Δt slot.
        dist = _slot_expansion_dist(
            con_index, csr, seed_rows, start_time_s, steps * delta_t,
            reverse_kind,
        )
        cover |= np.isfinite(dist)
    close_twins_mask(csr, cover)
    cover_ids = csr.mask_to_id_set(cover)
    boundary = _boundary_id_set(csr, cover, cover_ids, reverse=True)
    return BoundingRegion(
        cover=cover_ids,
        boundary=boundary,
        seed_of={segment_id: target_segment for segment_id in cover_ids},
    )


def reverse_exhaustive_search(
    network: RoadNetwork,
    estimator: ReverseProbabilityEstimator,
    prob: float,
) -> ExhaustiveResult:
    """Reverse ES baseline: verify every road-connected segment."""
    return exhaustive_search(network, estimator, prob)
