"""Reverse spatio-temporal reachability queries.

The paper's location-based-advertising application (§1.1, Fig 1.2) really
asks the *dual* of the s-query: from which road segments can customers
reach the mall within ``L`` minutes — i.e. find every segment ``r`` such
that on at least a ``Prob`` fraction of days some trajectory passed ``r``
during the first slot ``[T, T+Δt]`` and then reached the target ``S``
within ``[T, T+L]``.

The machinery mirrors the forward query with the direction flipped:

* the *reverse* probability fixes the target's window ``[T, T+L]`` once and
  intersects each candidate's *first-slot* window against it (cheaper per
  check than the forward estimator, which reads the whole window per
  candidate);
* the bounding regions come from Con-Index entries computed by *backward*
  network expansion over predecessors (``kind="far_rev"/"near_rev"``);
* trace-back search and the exhaustive baseline are reused unchanged —
  they only consume ``probability(segment)`` and undirected adjacency.
"""

from __future__ import annotations

import numpy as np

from repro.core.baseline import ExhaustiveResult, exhaustive_search
from repro.core.con_index import ConnectionIndex
from repro.core.prob_kernel import ColumnarEq31Estimator
from repro.core.probability import DEPARTURE_WINDOW_S
from repro.core.query import BoundingRegion
from repro.core.sqmb import _boundary_id_set, _entry_hops, _slot_expansion_dist
from repro.core.st_index import STIndex
from repro.network.csr import close_twins_mask
from repro.network.model import RoadNetwork


class ReverseProbabilityEstimator(ColumnarEq31Estimator):
    """Eq. 3.1 with the roles of start and target segments swapped.

    ``probability(r)`` is the fraction of days on which a single trajectory
    passed ``r`` in ``[T, T+Δt]`` and the fixed target segment within
    ``[T, T+L]``.  The fixed side of the columnar kernel is the *target's*
    full query window (gathered once); each candidate pays only its own
    departure-window read plus the membership probe — cheaper per check
    than the forward estimator, which reads the whole window per
    candidate.

    Args:
        index: the ST-Index to read time lists from.
        target_segment: the destination ``S`` resolved to a road segment.
        start_time_s: ``T``.
        duration_s: ``L``.
        num_days: ``m``.
    """

    def __init__(
        self,
        index: STIndex,
        target_segment: int,
        start_time_s: float,
        duration_s: float,
        num_days: int,
    ) -> None:
        # `start_segment` naming (in the base) keeps the TBS/ES
        # interfaces uniform; expose the reverse-specific alias too.
        super().__init__(
            index, target_segment, start_time_s, duration_s, num_days
        )
        self.target_segment = target_segment

    def _fixed_window(self) -> tuple[float, float]:
        return (self.start_time_s, self.start_time_s + self.duration_s)

    def _candidate_window(self) -> tuple[float, float]:
        return (
            self.start_time_s,
            self.start_time_s + min(DEPARTURE_WINDOW_S, self.duration_s),
        )


def reverse_bounding_region(
    con_index: ConnectionIndex,
    target_segment: int,
    start_time_s: float,
    duration_s: float,
    kind: str = "far",
) -> BoundingRegion:
    """Algorithm 1 run backwards: who can reach the target within ``L``.

    Uses the Con-Index's reverse entries (backward expansion over
    predecessors) and the same accumulate-and-rehop structure as SQMB.

    Args:
        con_index: the Connection Index.
        target_segment: the destination segment.
        start_time_s: ``T``.
        duration_s: ``L``.
        kind: ``"far"`` (maximum region) or ``"near"`` (minimum region);
            translated internally to the reverse entry kinds.
    """
    if kind not in ("far", "near"):
        raise ValueError(f"kind must be 'far' or 'near', got {kind!r}")
    reverse_kind = f"{kind}_rev"
    csr = con_index.network.csr()
    delta_t = con_index.delta_t_s
    start_slot = con_index.slot_of(start_time_s)
    steps = max(1, int(duration_s // delta_t))
    cover = np.zeros(csr.n, dtype=bool)
    seed_rows = [csr.row_of(target_segment)]
    twin_row = int(csr.twin_row[seed_rows[0]])
    if twin_row >= 0:
        seed_rows.append(twin_row)
    seed_rows = np.array(sorted(seed_rows), dtype=np.int64)
    cover[seed_rows] = True
    _entry_hops(con_index, csr, cover, start_slot, steps, reverse_kind)
    if kind == "far":
        # Residual-carry top-up (see sqmb.slot_aware_expansion): the upper
        # bound must also cross segments slower than one Δt slot.
        dist = _slot_expansion_dist(
            con_index, csr, seed_rows, start_time_s, steps * delta_t,
            reverse_kind,
        )
        cover |= np.isfinite(dist)
    close_twins_mask(csr, cover)
    cover_ids = csr.mask_to_id_set(cover)
    boundary = _boundary_id_set(csr, cover, cover_ids, reverse=True)
    return BoundingRegion(
        cover=cover_ids,
        boundary=boundary,
        seed_of={segment_id: target_segment for segment_id in cover_ids},
    )


def reverse_exhaustive_search(
    network: RoadNetwork,
    estimator: ReverseProbabilityEstimator,
    prob: float,
) -> ExhaustiveResult:
    """Reverse ES baseline: verify every road-connected segment."""
    return exhaustive_search(network, estimator, prob)
