"""Query plan explanation: where did a query's cost go?

``EXPLAIN`` for reachability queries: plans the query through
:mod:`~repro.core.planner` — the same routing the executors follow, so the
explanation renders the actual :class:`~repro.core.planner.QueryPlan`
instead of re-deriving the logic — then runs it stage by stage while
decomposing the cost into the paper's pipeline: start-segment lookup,
bounding-region search (Con-Index), trace-back verification (ST-Index
time-list reads).  The benchmark figures show *that* SQMB+TBS wins; the
explanation shows *why* (the shell it verifies is a small fraction of what
ES verifies).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.engine import ReachabilityEngine
from repro.core.executors import ExecutionContext
from repro.core.planner import QueryPlan, plan_query
from repro.core.probability import ProbabilityEstimator
from repro.core.query import MQuery, SQuery
from repro.core.tbs import trace_back_search

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.router import RouteDecision


@dataclass
class StageCost:
    """One pipeline stage's contribution."""

    name: str
    wall_ms: float = 0.0
    page_reads: int = 0
    detail: str = ""


@dataclass
class QueryExplanation:
    """A decomposed query execution.

    Attributes:
        plan: the routing decisions the planner made for the query.
        route: the adaptive-routing decision that chose the plan, when
            the explanation came through the client API (``"auto"``
            classification rule, reason and shape features).
        stages: per-stage costs, in execution order.
        region_segments: result size.
        max_cover / min_cover: bounding-region sizes.
        examined: segments whose probability was actually verified.
        skipped_interior: segments accepted without any trajectory read —
            the paper's headline saving.
        prob_waves: members per batched probability wave the trace-back
            dequeued.
        kernel_evals / scalar_evals: Eq. 3.1 evaluations served by the
            columnar kernel vs the tiny-input scalar fast path.
        batched_record_reads / prefetched_pages: records and page
            accesses charged through the wave-granular batch gather path
            (:meth:`~repro.core.st_index.STIndex.gather_window_columns`
            charging via
            :meth:`~repro.storage.pagestore.BufferPool.get_pages`).
        pool_lock_shards: lock stripes backing the ST-Index buffer pool.
    """

    plan: QueryPlan | None = None
    route: "RouteDecision | None" = None
    stages: list[StageCost] = field(default_factory=list)
    region_segments: int = 0
    max_cover: int = 0
    min_cover: int = 0
    examined: int = 0
    skipped_interior: int = 0
    prob_waves: list[int] = field(default_factory=list)
    kernel_evals: int = 0
    scalar_evals: int = 0
    batched_record_reads: int = 0
    prefetched_pages: int = 0
    pool_lock_shards: int = 0

    def to_text(self) -> str:
        lines = ["QUERY PLAN (SQMB + TBS)"]
        if self.route is not None:
            lines.append(f"  {self.route.describe()}")
        if self.plan is not None:
            lines.append(f"  {self.plan.describe()}")
        for stage in self.stages:
            lines.append(
                f"  {stage.name:<24} {stage.wall_ms:8.2f} ms "
                f"{stage.page_reads:6d} reads  {stage.detail}"
            )
        lines.append(
            f"  region={self.region_segments} segments | "
            f"bounds: max={self.max_cover}, min={self.min_cover} | "
            f"verified={self.examined}, accepted unverified="
            f"{self.skipped_interior}"
        )
        if self.prob_waves:
            lines.append(
                f"  probability path: {self.kernel_evals} kernel / "
                f"{self.scalar_evals} scalar evals over "
                f"{len(self.prob_waves)} waves "
                f"(max {max(self.prob_waves)})"
            )
        if self.batched_record_reads:
            lines.append(
                f"  batched I/O: {self.batched_record_reads} record "
                f"gathers / {self.prefetched_pages} pages prefetched "
                f"({self.pool_lock_shards} pool lock shards)"
            )
        return "\n".join(lines)


class _StageRecorder:
    """Runs stage thunks while charging their wall time and page reads."""

    def __init__(self, engine: ReachabilityEngine, explanation: QueryExplanation):
        self._engine = engine
        self._explanation = explanation

    def __call__(self, name: str, detail_fn, fn):
        before = self._engine.disk.snapshot()
        started = time.perf_counter()
        value = fn()
        wall = (time.perf_counter() - started) * 1e3
        diff = self._engine.disk.snapshot() - before
        self._explanation.stages.append(
            StageCost(
                name=name,
                wall_ms=wall,
                page_reads=diff.page_reads,
                detail=detail_fn(value),
            )
        )
        return value


def _finish_from_tbs(
    explanation, tbs, max_region, min_region, estimators
) -> None:
    explanation.region_segments = len(tbs.region)
    explanation.max_cover = len(max_region.cover)
    explanation.min_cover = len(min_region.cover)
    explanation.examined = tbs.examined
    explanation.skipped_interior = max(0, len(tbs.region) - len(tbs.passed))
    explanation.prob_waves = list(tbs.wave_sizes)
    explanation.kernel_evals = sum(
        getattr(e, "kernel_evals", 0) for e in estimators
    )
    explanation.scalar_evals = sum(
        getattr(e, "scalar_evals", 0) for e in estimators
    )
    explanation.batched_record_reads = sum(
        getattr(e, "batched_record_reads", 0) for e in estimators
    )
    explanation.prefetched_pages = sum(
        getattr(e, "prefetched_pages", 0) for e in estimators
    )
    indexes = {getattr(e, "index", None) for e in estimators}
    explanation.pool_lock_shards = max(
        (index.pool.num_shards for index in indexes if index is not None),
        default=0,
    )


def explain_s_query(
    engine: ReachabilityEngine,
    query: SQuery,
    delta_t_s: int = 300,
) -> QueryExplanation:
    """Execute an s-query with per-stage instrumentation.

    Args:
        engine: a built reachability engine.
        query: the s-query to explain.
        delta_t_s: index granularity.

    Returns:
        The decomposed execution, carrying the plan it followed.
    """
    plan = plan_query("s", query, "sqmb_tbs", delta_t_s)
    st = engine.st_index(delta_t_s)
    engine.con_index(delta_t_s)
    engine.invalidate_caches()
    explanation = QueryExplanation(plan=plan)
    stage = _StageRecorder(engine, explanation)
    context = ExecutionContext(engine, delta_t_s)

    start_segment = stage(
        "start-segment lookup",
        lambda v: f"r0={v}",
        lambda: st.find_start_segment(query.location),
    )
    estimator = stage(
        "start time-list read",
        lambda v: f"start_days={v.start_days}/{engine.database.num_days}",
        lambda: ProbabilityEstimator(
            st, start_segment, query.start_time_s, query.duration_s,
            engine.database.num_days,
        ),
    )
    if estimator.start_days == 0:
        return explanation
    max_region = stage(
        "max bounding region",
        lambda v: f"cover={len(v.cover)}, boundary={len(v.boundary)}",
        lambda: context.bounding_region(
            plan.bounding_strategy, (start_segment,), query.start_time_s,
            query.duration_s, "far",
        ),
    )
    min_region = stage(
        "min bounding region",
        lambda v: f"cover={len(v.cover)}",
        lambda: context.bounding_region(
            plan.bounding_strategy, (start_segment,), query.start_time_s,
            query.duration_s, "near",
        ),
    )
    tbs = stage(
        "trace-back search",
        lambda v: f"passed={len(v.passed)}, failed={len(v.failed)}",
        lambda: trace_back_search(
            engine.network, {start_segment: estimator}, query.prob,
            max_region, min_region,
        ),
    )
    _finish_from_tbs(explanation, tbs, max_region, min_region, [estimator])
    return explanation


def explain_m_query(
    engine: ReachabilityEngine,
    query: MQuery,
    delta_t_s: int = 300,
) -> QueryExplanation:
    """Execute an m-query with per-stage instrumentation."""
    plan = plan_query("m", query, "mqmb_tbs", delta_t_s)
    st = engine.st_index(delta_t_s)
    engine.con_index(delta_t_s)
    engine.invalidate_caches()
    explanation = QueryExplanation(plan=plan)
    stage = _StageRecorder(engine, explanation)
    context = ExecutionContext(engine, delta_t_s)

    seeds = stage(
        "start-segment lookup",
        lambda v: f"{len(v)} seeds",
        lambda: list(
            dict.fromkeys(
                st.find_start_segment(loc) for loc in query.locations
            )
        ),
    )
    estimators = stage(
        "start time-list reads",
        lambda v: f"{sum(1 for e in v.values() if e.start_days)} live seeds",
        lambda: {
            seed: ProbabilityEstimator(
                st, seed, query.start_time_s, query.duration_s,
                engine.database.num_days,
            )
            for seed in seeds
        },
    )
    live = {s: e for s, e in estimators.items() if e.start_days > 0}
    if not live:
        return explanation
    max_region = stage(
        "unified max region",
        lambda v: f"cover={len(v.cover)}, boundary={len(v.boundary)}",
        lambda: context.bounding_region(
            plan.bounding_strategy, tuple(live), query.start_time_s,
            query.duration_s, "far",
        ),
    )
    min_region = stage(
        "unified min region",
        lambda v: f"cover={len(v.cover)}",
        lambda: context.bounding_region(
            plan.bounding_strategy, tuple(live), query.start_time_s,
            query.duration_s, "near",
        ),
    )
    tbs = stage(
        "trace-back search",
        lambda v: f"passed={len(v.passed)}, failed={len(v.failed)}",
        lambda: trace_back_search(
            engine.network, live, query.prob, max_region, min_region
        ),
    )
    _finish_from_tbs(
        explanation, tbs, max_region, min_region, list(live.values())
    )
    return explanation
