"""The columnar Eq. 3.1 probability kernel.

PR 2 vectorized the *network* side of every query (the CSR bounding-region
kernels); this module vectorizes the *trajectory* side — the probability
checks TBS and ES pay per candidate segment, which dominate end-to-end
query time once region expansion is fast.

The scalar path (preserved in :mod:`repro.core.legacy_probability`)
evaluates Eq. 3.1 one segment at a time: decode time lists into
``date -> [(id, second)]`` dicts, rebuild per-day id *sets* for the
window, then run a per-day ``set.isdisjoint`` loop.  The columnar kernel
replaces all of that with flat int64 arrays:

* every time-list record decodes (once, LRU-cached by record pointer)
  into packed ``(date << 32) | trajectory_id`` visit keys plus aligned
  visit seconds (:class:`~repro.core.st_index.ColumnarTimeList`);
* a query window gather is a boolean second-mask over those columns
  (:meth:`~repro.core.st_index.STIndex.window_keys`), no tuples, no sets;
* the fixed side of Eq. 3.1 (the start segment's departure-window visits
  for forward queries, the target's query-window visits for reverse)
  becomes one sorted unique key array — per-day trajectory sets for *all*
  days in a single vector;
* "some single trajectory appears in both windows on day d" is then one
  ``searchsorted`` membership probe: a candidate visit key hits iff the
  same (day, trajectory) pair exists on the fixed side, and the number of
  distinct days among the hits is exactly ``m*``.

Because day and trajectory id are packed into one key, the per-day
intersections of the paper's Eq. 3.1 collapse into a single sorted-array
membership test across all days at once — and a whole *wave* of candidate
segments (TBS boundary waves, ES frontier levels) batches into one probe
over the concatenated candidate columns.

Accounting guarantee: the kernel's charged reads are *identical* to the
scalar path's — same records, through the same buffer pool, in the same
order (candidate order, segment before twin, window parts in order, slots
in order, chain order).  The kernel changes how decoded bytes are
*represented*, never what is read, so result sets, ``examined`` counts
and buffer-pool/page counters match the legacy path exactly.

An adaptive scalar fast path keeps tiny evaluations (a few visits
against a small fixed side) in plain Python, where numpy dispatch
overhead would dominate; both paths produce bit-identical probabilities
and the per-path counters (``kernel_evals`` / ``scalar_evals``) are
surfaced through :class:`~repro.core.query.QueryCost`.
"""

from __future__ import annotations

import numpy as np

from repro.core.st_index import KEY_DATE_SHIFT, KEY_ID_MASK, STIndex

#: Below this many gathered candidate visits, a plain Python membership
#: loop beats numpy dispatch overhead; evaluations this small take the
#: scalar fast path.  Both paths are exact, so this is purely a latency
#: tuning knob (mirrors ``ESCALATE_COVER`` on the expansion side).
SCALAR_EVAL_MAX_VISITS = 24


def _unique_days(keys: np.ndarray) -> int:
    """Number of distinct dates among packed visit keys."""
    if keys.size == 0:
        return 0
    return int(np.unique(keys >> KEY_DATE_SHIFT).size)


class ColumnarEq31Estimator:
    """Shared core of the forward and reverse Eq. 3.1 estimators.

    One instance is bound to one query's fixed segment and windows.  The
    *fixed* side (``r0`` over the departure window for forward queries,
    the target over the full query window for reverse) is gathered once
    at construction; each candidate segment then costs its own window
    gather plus one membership probe.

    Subclasses define the window split by overriding
    :meth:`_fixed_window` and :meth:`_candidate_window`.

    Attributes:
        checks: probability computations requested (cache hits excluded),
            matching the scalar estimator's counter exactly.
        kernel_evals / scalar_evals: evaluations served by the vectorized
            kernel vs the tiny-input Python fast path.
    """

    def __init__(
        self,
        index: STIndex,
        fixed_segment: int,
        start_time_s: float,
        duration_s: float,
        num_days: int,
    ) -> None:
        if num_days <= 0:
            raise ValueError(f"num_days must be positive, got {num_days}")
        self.index = index
        self.network = index.network
        self.start_segment = fixed_segment
        self.start_time_s = start_time_s
        self.duration_s = duration_s
        self.num_days = num_days
        self.checks = 0
        self.kernel_evals = 0
        self.scalar_evals = 0
        # Batched-I/O counters: records and pages fetched through the
        # wave-granular gather path (every charged read this estimator
        # performs goes through it, fixed side included).
        self.batched_record_reads = 0
        self.prefetched_pages = 0
        self._cache: dict[int, float] = {}
        # Twin lookups repeat for every wave membership check; the
        # network is static for the estimator's lifetime, so memoize.
        self._twins: dict[int, int | None] = {}
        # Window -> slot plans resolve once per estimator; every gather
        # replays them without touching the temporal B+-tree again.
        self._candidate_plan = index.window_plan(*self._candidate_window())
        # The fixed side, read once and reused for every candidate: one
        # sorted unique key array is the per-day trajectory sets of all
        # days at once.
        self._fixed_keys = np.unique(
            self._gather(fixed_segment, index.window_plan(*self._fixed_window()))
        )
        self._fixed_days = _unique_days(self._fixed_keys)
        self._fixed_sets: dict[int, set[int]] | None = None

    # -- window split (subclass responsibility) ----------------------------

    def _fixed_window(self) -> tuple[float, float]:
        raise NotImplementedError

    def _candidate_window(self) -> tuple[float, float]:
        raise NotImplementedError

    # -- shared machinery --------------------------------------------------

    def _twin(self, segment_id: int) -> int | None:
        try:
            return self._twins[segment_id]
        except KeyError:
            twin = self.network.segment(segment_id).twin_id
            if twin is None or not self.network.has_segment(twin):
                twin = None
            self._twins[segment_id] = twin
            return twin

    def _gather(self, segment_id: int, plan) -> np.ndarray:
        """Packed visit keys of the *road* (segment + twin) for a plan.

        Read order matches the scalar ``_merged_window`` exactly: the
        segment's window first, then the twin's.
        """
        return self._gather_many([segment_id], plan)[0]

    def _gather_many(self, segment_ids, plan) -> list[np.ndarray]:
        """Road-level window gathers for a whole wave, in one batch.

        Every candidate's segment (and its twin, right after it — the
        scalar ``_merged_window`` order) goes into a single
        :meth:`~repro.core.st_index.STIndex.gather_window_columns` call,
        so the wave's record pages are charged in one buffer-pool pass
        before the membership kernel runs — the wave-granular prefetch.
        Accounting is identical to per-candidate scalar reads; only the
        lock traffic and decode work shrink.
        """
        roads: list[tuple[int, int | None]] = []
        flat: list[int] = []
        for segment_id in segment_ids:
            twin = self._twin(segment_id)
            roads.append((segment_id, twin))
            flat.append(segment_id)
            if twin is not None:
                flat.append(twin)
        keys_list, records, pages = self.index.gather_window_columns(
            flat, plan
        )
        self.batched_record_reads += records
        self.prefetched_pages += pages
        out: list[np.ndarray] = []
        position = 0
        for _, twin in roads:
            keys = keys_list[position]
            position += 1
            if twin is not None:
                twin_keys = keys_list[position]
                position += 1
                if keys.size == 0:
                    keys = twin_keys
                elif twin_keys.size:
                    keys = np.concatenate((keys, twin_keys))
            out.append(keys)
        return out

    @property
    def start_days(self) -> int:
        """Days with at least one fixed-side visit (``m*``'s upper bound)."""
        return self._fixed_days

    def _fixed_day_sets(self) -> dict[int, set[int]]:
        """The fixed side as ``day -> {trajectory ids}`` (scalar path, lazy)."""
        if self._fixed_sets is None:
            sets: dict[int, set[int]] = {}
            for key in self._fixed_keys.tolist():
                sets.setdefault(key >> KEY_DATE_SHIFT, set()).add(
                    key & KEY_ID_MASK
                )
            self._fixed_sets = sets
        return self._fixed_sets

    def _good_days_scalar(self, keys: np.ndarray) -> int:
        """Tiny-input fast path: Python membership over the day sets."""
        fixed = self._fixed_day_sets()
        good: set[int] = set()
        for key in keys.tolist():
            day = key >> KEY_DATE_SHIFT
            if day in good:
                continue
            ids = fixed.get(day)
            if ids is not None and (key & KEY_ID_MASK) in ids:
                good.add(day)
        return len(good)

    def _membership(self, keys: np.ndarray) -> np.ndarray:
        """Boolean mask: which candidate visit keys exist on the fixed side.

        ``searchsorted`` + clipped ``take``: a key beyond the last fixed
        element clips onto the last element, which then compares unequal
        (if it were equal the insertion point would have been inside), so
        no separate bounds mask is needed — three vector ops total.
        """
        fixed = self._fixed_keys
        positions = fixed.searchsorted(keys)
        return np.take(fixed, positions, mode="clip") == keys

    # -- evaluation --------------------------------------------------------

    def probabilities(self, segment_ids) -> list[float]:
        """Eq. 3.1 probabilities for many candidates in one kernel call.

        Semantically identical to calling the scalar ``probability`` per
        id in order — including the cache, the twin-segment value sharing
        and the ``checks`` counter — but the uncached representatives'
        membership probes run as one concatenated vector operation.
        Gathers (the only charged work) happen per representative in
        input order, so disk and pool accounting match the scalar path
        read for read.
        """
        pending: list[int] = []
        claimed: set[int] = set()
        for segment_id in segment_ids:
            if segment_id in self._cache or segment_id in claimed:
                continue
            self.checks += 1
            pending.append(segment_id)
            claimed.add(segment_id)
            twin = self._twin(segment_id)
            if twin is not None:
                claimed.add(twin)
        if pending:
            if self._fixed_keys.size == 0:
                # No trajectory ever hit the fixed side in its window:
                # nothing is reachable and no candidate read is needed
                # (the scalar path short-circuits identically).
                for segment_id in pending:
                    self._store(segment_id, 0.0)
            else:
                self._evaluate(pending)
        return [self._cache[segment_id] for segment_id in segment_ids]

    def probability(self, segment_id: int) -> float:
        """Eq. 3.1 for one candidate (cached, road-level)."""
        cached = self._cache.get(segment_id)
        if cached is not None:
            return cached
        return self.probabilities((segment_id,))[0]

    def is_reachable(self, segment_id: int, prob: float) -> bool:
        """Whether ``segment_id`` meets the query's probability threshold."""
        return self.probability(segment_id) >= prob

    def _store(self, segment_id: int, value: float) -> None:
        self._cache[segment_id] = value
        twin = self._twin(segment_id)
        if twin is not None:
            self._cache[twin] = value

    def _evaluate(self, pending: list[int]) -> None:
        plan = self._candidate_plan
        gathered = self._gather_many(pending, plan)
        counts = [keys.size for keys in gathered]
        total = sum(counts)
        if total <= SCALAR_EVAL_MAX_VISITS:
            self.scalar_evals += len(pending)
            for segment_id, keys in zip(pending, gathered):
                self._store(
                    segment_id, self._good_days_scalar(keys) / self.num_days
                )
            return
        self.kernel_evals += len(pending)
        if len(pending) == 1:
            # Single candidate (multi-seed fallback consultations, lone
            # boundary segments): skip the owner bookkeeping — one
            # membership probe, one day count.
            keys = gathered[0]
            hit = self._membership(keys)
            self._store(pending[0], _unique_days(keys[hit]) / self.num_days)
            return
        flat = np.concatenate([keys for keys in gathered if keys.size])
        owner = np.repeat(
            np.arange(len(pending), dtype=np.int64),
            np.asarray(counts, dtype=np.int64),
        )
        hit = self._membership(flat)
        good = np.zeros(len(pending), dtype=np.int64)
        if hit.any():
            # Dedup (candidate, day) hit pairs, then count days per
            # candidate: the per-day sorted intersections of Eq. 3.1 for
            # the whole wave, in two vector ops.
            combo = (owner[hit] << KEY_DATE_SHIFT) | (
                flat[hit] >> KEY_DATE_SHIFT
            )
            unique_owner = np.unique(combo) >> KEY_DATE_SHIFT
            good = np.bincount(unique_owner, minlength=len(pending))
        for position, segment_id in enumerate(pending):
            self._store(segment_id, int(good[position]) / self.num_days)
