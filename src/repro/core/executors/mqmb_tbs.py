"""The paper's m-query method: MQMB unified bounds + trace-back search."""

from __future__ import annotations

from repro.core.executors import (
    ExecutionContext,
    ExecutionOutcome,
    register_executor,
)
from repro.core.probability import ProbabilityEstimator
from repro.core.query import MQuery, QueryResult
from repro.core.tbs import trace_back_search


@register_executor("m", "mqmb_tbs")
def execute_mqmb_tbs(
    ctx: ExecutionContext, plan, query: MQuery
) -> ExecutionOutcome:
    """Algorithm 3 + trace-back over the unified bounding regions."""
    st = ctx.st_index()
    start_segments = list(
        dict.fromkeys(
            st.find_start_segment(location) for location in query.locations
        )
    )
    estimators = {
        seed: ProbabilityEstimator(
            st, seed, query.start_time_s, query.duration_s,
            ctx.database.num_days,
        )
        for seed in start_segments
    }
    outcome = ExecutionOutcome(
        result=QueryResult(start_segments=tuple(start_segments)),
        estimators=list(estimators.values()),
    )
    live = {
        seed: est for seed, est in estimators.items() if est.start_days > 0
    }
    if not live:
        return outcome
    seeds = tuple(live)
    max_region = ctx.bounding_region(
        plan.bounding_strategy, seeds, query.start_time_s, query.duration_s,
        "far",
    )
    min_region = ctx.bounding_region(
        plan.bounding_strategy, seeds, query.start_time_s, query.duration_s,
        "near",
    )
    tbs = trace_back_search(
        ctx.network, live, query.prob, max_region, min_region
    )
    result = outcome.result
    result.segments = tbs.region
    result.probabilities = tbs.probabilities
    result.max_region = max_region
    result.min_region = min_region
    outcome.examined = tbs.examined
    outcome.wave_sizes = tbs.wave_sizes
    return outcome
