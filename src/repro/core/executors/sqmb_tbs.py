"""The paper's s-query method: SQMB bounds + trace-back search.

Also hosts ``sqmb_tbs_each``, the paper's m-query baseline (one SQMB+TBS
run per location, unioned) — same family, same machinery, different entry
point.
"""

from __future__ import annotations

from repro.core.executors import (
    ExecutionContext,
    ExecutionOutcome,
    register_executor,
)
from repro.core.probability import ProbabilityEstimator
from repro.core.query import MQuery, QueryResult, SQuery
from repro.core.tbs import trace_back_search


@register_executor("s", "sqmb_tbs")
def execute_sqmb_tbs(
    ctx: ExecutionContext, plan, query: SQuery
) -> ExecutionOutcome:
    """Algorithms 1+2: bounding regions from the Con-Index, then TBS."""
    st = ctx.st_index()
    start_segment = st.find_start_segment(query.location)
    estimator = ProbabilityEstimator(
        st, start_segment, query.start_time_s, query.duration_s,
        ctx.database.num_days,
    )
    outcome = ExecutionOutcome(
        result=QueryResult(start_segments=(start_segment,)),
        estimators=[estimator],
    )
    if estimator.start_days == 0:
        # No trajectory ever left r0 in the first slot: nothing is
        # Prob-reachable for any Prob > 0.
        return outcome
    seeds = (start_segment,)
    max_region = ctx.bounding_region(
        plan.bounding_strategy, seeds, query.start_time_s, query.duration_s,
        "far",
    )
    min_region = ctx.bounding_region(
        plan.bounding_strategy, seeds, query.start_time_s, query.duration_s,
        "near",
    )
    tbs = trace_back_search(
        ctx.network, {start_segment: estimator}, query.prob,
        max_region, min_region,
    )
    result = outcome.result
    result.segments = tbs.region
    result.probabilities = tbs.probabilities
    result.max_region = max_region
    result.min_region = min_region
    outcome.examined = tbs.examined
    outcome.wave_sizes = tbs.wave_sizes
    return outcome


def execute_each(
    ctx: ExecutionContext, plan, query: MQuery, sub_algorithm: str
) -> ExecutionOutcome:
    """n independent s-queries, unioned (the paper's m-query baselines).

    Each sub-query is an independent s-query (the whole point of the
    baseline): it pays its own cold I/O, including re-reading whatever
    overlaps earlier sub-queries already fetched.
    """
    merged = ExecutionOutcome()
    starts: list[int] = []
    for sub_query in query.as_s_queries():
        sub = ctx.run_subquery("s", sub_query, sub_algorithm, plan.warm)
        merged.result.segments |= sub.result.segments
        merged.result.probabilities.update(sub.result.probabilities)
        starts.extend(sub.result.start_segments)
        merged.estimators.extend(sub.estimators)
        merged.examined += sub.examined
        merged.wave_sizes.extend(sub.wave_sizes)
    merged.result.start_segments = tuple(dict.fromkeys(starts))
    return merged


@register_executor("m", "sqmb_tbs_each")
def execute_sqmb_tbs_each(
    ctx: ExecutionContext, plan, query: MQuery
) -> ExecutionOutcome:
    return execute_each(ctx, plan, query, "sqmb_tbs")
