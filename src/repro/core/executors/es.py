"""The exhaustive-search baseline family.

``es`` is the paper's baseline (§4.1): expand the physical road network to
the end of every branch and verify each visited segment's Eq. 3.1
probability against the trajectory time lists.  ``es_pruned`` stops each
branch once historical support vanishes (ablation comparator, not in the
paper).  ``es_each`` answers an m-query as n independent ``es`` runs.
"""

from __future__ import annotations

from repro.core.baseline import exhaustive_search, exhaustive_search_pruned
from repro.core.executors import (
    ExecutionContext,
    ExecutionOutcome,
    register_executor,
)
from repro.core.probability import ProbabilityEstimator
from repro.core.query import MQuery, QueryResult, SQuery


def _execute_exhaustive(
    ctx: ExecutionContext, query: SQuery, search
) -> ExecutionOutcome:
    st = ctx.st_index()
    start_segment = st.find_start_segment(query.location)
    estimator = ProbabilityEstimator(
        st, start_segment, query.start_time_s, query.duration_s,
        ctx.database.num_days,
    )
    outcome = ExecutionOutcome(
        result=QueryResult(start_segments=(start_segment,)),
        estimators=[estimator],
    )
    if estimator.start_days == 0:
        return outcome
    es = search(ctx.network, estimator, query.prob)
    outcome.result.segments = es.region
    outcome.result.probabilities = es.probabilities
    outcome.examined = es.examined
    outcome.wave_sizes = es.wave_sizes
    return outcome


@register_executor("s", "es")
def execute_es(ctx: ExecutionContext, plan, query: SQuery) -> ExecutionOutcome:
    """The paper's ES baseline: verify every road-connected segment."""
    return _execute_exhaustive(ctx, query, exhaustive_search)


@register_executor("s", "es_pruned")
def execute_es_pruned(
    ctx: ExecutionContext, plan, query: SQuery
) -> ExecutionOutcome:
    """Support-pruned exhaustive search (ablation baseline)."""
    return _execute_exhaustive(ctx, query, exhaustive_search_pruned)


@register_executor("m", "es_each")
def execute_es_each(
    ctx: ExecutionContext, plan, query: MQuery
) -> ExecutionOutcome:
    """n independent exhaustive searches, unioned."""
    from repro.core.executors.sqmb_tbs import execute_each

    return execute_each(ctx, plan, query, "es")
