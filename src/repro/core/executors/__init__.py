"""Pluggable query executors behind a registry.

Each algorithm family lives in its own module and registers callables with
:func:`register_executor`; the engine and the query service dispatch by
``(kind, name)`` registry lookup instead of hardcoded ``if/elif`` chains,
so third parties can add algorithms without touching either.

An executor is a callable ``(context, plan, query) -> ExecutionOutcome``:
it receives an :class:`ExecutionContext` (index accessors, bounding-region
dedup cache) and a frozen :class:`~repro.core.planner.QueryPlan`, and
returns the result plus the probability estimators it used.  Cost
accounting (wall time, disk-stat differencing) happens once in
:func:`execute_plan`, never inside executors.

Built-in families:

* :mod:`~repro.core.executors.sqmb_tbs` — the paper's s-query method
  (Algorithms 1+2) and its per-location m-query baseline;
* :mod:`~repro.core.executors.es` — the exhaustive-search baselines;
* :mod:`~repro.core.executors.mqmb_tbs` — Algorithm 3 + trace-back;
* :mod:`~repro.core.executors.reverse` — reverse-reachability executors.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.mqmb import mqmb_bounding_region
from repro.core.query import BoundingRegion, MQuery, QueryCost, QueryResult, SQuery
from repro.core.region_cache import RegionCache
from repro.core.sqmb import sqmb_bounding_region

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import ReachabilityEngine
    from repro.core.planner import QueryPlan


@dataclass
class ExecutionOutcome:
    """What an executor hands back for cost accounting.

    Attributes:
        result: the query result (cost filled in by :func:`execute_plan`).
        estimators: probability estimators consulted (their ``checks`` /
            ``kernel_evals`` / ``scalar_evals`` counters feed the cost
            metrics).
        examined: segments whose probability was actually verified.
        wave_sizes: members per batched probability-evaluation wave, in
            search order (TBS boundary waves, ES frontier levels).
    """

    result: QueryResult = field(default_factory=QueryResult)
    estimators: list = field(default_factory=list)
    examined: int = 0
    wave_sizes: list[int] = field(default_factory=list)


Executor = Callable[["ExecutionContext", "QueryPlan", SQuery | MQuery], ExecutionOutcome]

_REGISTRY: dict[tuple[str, str], Executor] = {}


def register_executor(kind: str, name: str) -> Callable[[Executor], Executor]:
    """Class/function decorator registering an executor for a query kind.

    Args:
        kind: ``"s"``, ``"m"`` or ``"r"``.
        name: algorithm name used in plans and user-facing APIs.

    Raises:
        ValueError: duplicate registration.
    """
    if kind not in ("s", "m", "r"):
        raise ValueError(f"unknown query kind {kind!r}")

    def decorate(executor: Executor) -> Executor:
        key = (kind, name)
        if key in _REGISTRY:
            raise ValueError(f"executor {name!r} already registered for kind {kind!r}")
        _REGISTRY[key] = executor
        return executor

    return decorate


def get_executor(kind: str, name: str) -> Executor:
    """Look an executor up; raises ``KeyError`` when unregistered."""
    try:
        return _REGISTRY[(kind, name)]
    except KeyError:
        raise KeyError(f"no executor {name!r} registered for kind {kind!r}") from None


def has_executor(kind: str, name: str) -> bool:
    return (kind, name) in _REGISTRY


def executor_names(kind: str) -> tuple[str, ...]:
    """Registered algorithm names for a query kind, in registration order."""
    return tuple(n for (k, n) in _REGISTRY if k == kind)


class ExecutionContext:
    """Shared resources for one execution (or one batch of executions).

    Owns no indexes — it resolves them through the engine — but carries the
    state the :class:`~repro.core.service.QueryService` shares across
    queries: the bounding-region dedup cache (a service-lifetime
    :class:`~repro.core.region_cache.RegionCache`, so regions are shared
    across batches, not just within one) and this execution's hit
    counters.

    The counters are guarded by a lock and the cache deduplicates
    concurrent computations, so under ``max_workers > 1`` every
    ``bounding_region`` call is counted exactly once and no region is
    expanded twice.

    Args:
        engine: the index-owning engine.
        delta_t_s: index granularity for this execution.
        region_cache: optional shared :class:`RegionCache`; when given,
            identical bounding-region computations across queries (and
            batches) are performed once (the batch dedup of §3.3's
            motivation: nearby queries share most of their bounds).
    """

    def __init__(
        self,
        engine: "ReachabilityEngine",
        delta_t_s: int,
        region_cache: RegionCache | None = None,
    ) -> None:
        self.engine = engine
        self.delta_t_s = delta_t_s
        self.region_cache = region_cache
        self.regions_computed = 0  # guarded_by: _stats_lock
        self.regions_reused = 0  # guarded_by: _stats_lock
        self._stats_lock = threading.Lock()

    # -- resource access -----------------------------------------------------

    @property
    def network(self):
        return self.engine.network

    @property
    def database(self):
        return self.engine.database

    @property
    def disk(self):
        return self.engine.disk

    def st_index(self):
        return self.engine.st_index(self.delta_t_s)

    def con_index(self):
        return self.engine.con_index(self.delta_t_s)

    def invalidate_caches(self) -> None:
        self.engine.invalidate_caches()

    # -- bounding-region dedup -----------------------------------------------

    def bounding_region(
        self,
        strategy: str,
        seeds: tuple[int, ...],
        start_time_s: float,
        duration_s: float,
        kind: str,
    ) -> BoundingRegion:
        """Compute (or reuse) a bounding region.

        The cache key is exact: a region depends only on the strategy, the
        seed segments, the slot sequence (start slot + hop count), the
        Near/Far kind and the index granularity — so two queries in the
        same Δt slot with the same seeds share their bounds regardless of
        sub-slot start time or probability threshold, across batches.
        """
        con = self.con_index()
        steps = max(1, int(duration_s // self.delta_t_s))

        def compute() -> BoundingRegion:
            if strategy == "sqmb":
                return sqmb_bounding_region(
                    con, seeds[0], start_time_s, duration_s, kind
                )
            if strategy == "mqmb":
                return mqmb_bounding_region(
                    con, list(seeds), start_time_s, duration_s, kind
                )
            if strategy == "reverse":
                from repro.core.reverse import reverse_bounding_region

                return reverse_bounding_region(
                    con, seeds[0], start_time_s, duration_s, kind
                )
            raise ValueError(f"unknown bounding strategy {strategy!r}")

        if self.region_cache is None:
            region = compute()
            with self._stats_lock:
                self.regions_computed += 1
            return region
        key = (
            strategy, seeds, con.slot_of(start_time_s), steps, kind,
            self.delta_t_s,
        )
        region, reused = self.region_cache.get_or_compute(key, compute)
        with self._stats_lock:
            if reused:
                self.regions_reused += 1
            else:
                self.regions_computed += 1
        return region

    # -- nested execution ------------------------------------------------------

    def run_subquery(
        self, kind: str, query: SQuery | MQuery, algorithm: str, warm: bool
    ) -> ExecutionOutcome:
        """Plan and run a nested query inside the current accounting window.

        Used by the naive m-query baselines, whose point is to run ``n``
        independent s-queries; each sub-query pays its own cold I/O unless
        the enclosing plan is warm.
        """
        from repro.core.planner import plan_query

        plan = plan_query(kind, query, algorithm, self.delta_t_s, warm=warm)
        if not plan.warm:
            self.invalidate_caches()
        executor = get_executor(plan.kind, plan.executor)
        return executor(self, plan, query)


def execute_plan(
    engine: "ReachabilityEngine",
    plan: "QueryPlan",
    query: SQuery | MQuery,
    context: ExecutionContext | None = None,
) -> QueryResult:
    """Run a plan through its registered executor, with cost accounting.

    Args:
        engine: the index-owning engine.
        plan: a plan from :mod:`~repro.core.planner`.
        query: the query the plan was made for.
        context: optional shared context (the service passes a per-batch
            one); a private context is created when omitted.

    Returns:
        The result with cost metrics (wall time, simulated disk I/O,
        probability checks) filled in.
    """
    ctx = (
        context
        if context is not None
        else ExecutionContext(engine, plan.delta_t_s)
    )
    executor = get_executor(plan.kind, plan.executor)
    # Resolve indexes before the accounting window opens: index
    # construction is offline work in the paper's model and must not be
    # charged to the first query at a new Δt.
    st_index = engine.st_index(plan.delta_t_s)
    if plan.uses_con_index:
        engine.con_index(plan.delta_t_s)
    if not plan.warm:
        engine.invalidate_caches()
    # Per-thread snapshot window: under a threaded batch each worker sees
    # only its own I/O, so per-query attribution is exact (and identical
    # to the global window when execution is single-threaded).
    before = engine.disk.local_snapshot()
    started = time.perf_counter()
    outcome = executor(ctx, plan, query)
    diff = engine.disk.local_snapshot() - before
    result = outcome.result
    result.cost = QueryCost(
        wall_time_s=time.perf_counter() - started,
        io=diff,
        # Reads only: page writes can only stem from lazy index
        # construction, which is offline work in the paper's model.
        simulated_io_ms=diff.page_reads * engine.disk.read_latency_ms,
        probability_checks=sum(e.checks for e in outcome.estimators),
        segments_expanded=outcome.examined,
        kernel_probability_evals=sum(
            getattr(e, "kernel_evals", 0) for e in outcome.estimators
        ),
        scalar_probability_evals=sum(
            getattr(e, "scalar_evals", 0) for e in outcome.estimators
        ),
        probability_waves=len(outcome.wave_sizes),
        max_wave_size=max(outcome.wave_sizes, default=0),
        batched_record_reads=sum(
            getattr(e, "batched_record_reads", 0) for e in outcome.estimators
        ),
        prefetched_pages=sum(
            getattr(e, "prefetched_pages", 0) for e in outcome.estimators
        ),
        pool_lock_shards=st_index.pool.num_shards,
    )
    return result


# Importing the built-in families registers them; keep these imports at the
# bottom so the registry exists when the modules run their decorators.
from repro.core.executors import es as _es  # noqa: E402,F401
from repro.core.executors import mqmb_tbs as _mqmb_tbs  # noqa: E402,F401
from repro.core.executors import reverse as _reverse  # noqa: E402,F401
from repro.core.executors import sqmb_tbs as _sqmb_tbs  # noqa: E402,F401

__all__ = [
    "ExecutionContext",
    "ExecutionOutcome",
    "execute_plan",
    "executor_names",
    "get_executor",
    "has_executor",
    "register_executor",
]
