"""Reverse-reachability executors: who can reach the query location?

The dual the paper's location-based-advertising application needs
(Fig 1.2): backward bounding regions over predecessor expansion, or the
reverse exhaustive baseline.
"""

from __future__ import annotations

from repro.core.executors import (
    ExecutionContext,
    ExecutionOutcome,
    register_executor,
)
from repro.core.query import QueryResult, SQuery
from repro.core.reverse import (
    ReverseProbabilityEstimator,
    reverse_exhaustive_search,
)
from repro.core.tbs import trace_back_search


def _target_estimator(ctx: ExecutionContext, query: SQuery):
    st = ctx.st_index()
    target = st.find_start_segment(query.location)
    estimator = ReverseProbabilityEstimator(
        st, target, query.start_time_s, query.duration_s,
        ctx.database.num_days,
    )
    return target, estimator


@register_executor("r", "sqmb_tbs")
def execute_reverse_sqmb_tbs(
    ctx: ExecutionContext, plan, query: SQuery
) -> ExecutionOutcome:
    """Reverse bounds (backward Con-Index expansion) + trace-back."""
    target, estimator = _target_estimator(ctx, query)
    outcome = ExecutionOutcome(
        result=QueryResult(start_segments=(target,)),
        estimators=[estimator],
    )
    if estimator.start_days == 0:
        return outcome
    seeds = (target,)
    max_region = ctx.bounding_region(
        plan.bounding_strategy, seeds, query.start_time_s, query.duration_s,
        "far",
    )
    min_region = ctx.bounding_region(
        plan.bounding_strategy, seeds, query.start_time_s, query.duration_s,
        "near",
    )
    tbs = trace_back_search(
        ctx.network, {target: estimator}, query.prob, max_region, min_region
    )
    result = outcome.result
    result.segments = tbs.region
    result.probabilities = tbs.probabilities
    result.max_region = max_region
    result.min_region = min_region
    outcome.examined = tbs.examined
    outcome.wave_sizes = tbs.wave_sizes
    return outcome


@register_executor("r", "es")
def execute_reverse_es(
    ctx: ExecutionContext, plan, query: SQuery
) -> ExecutionOutcome:
    """Reverse ES baseline: verify the whole road network."""
    target, estimator = _target_estimator(ctx, query)
    outcome = ExecutionOutcome(
        result=QueryResult(start_segments=(target,)),
        estimators=[estimator],
    )
    if estimator.start_days == 0:
        return outcome
    es = reverse_exhaustive_search(ctx.network, estimator, query.prob)
    outcome.result.segments = es.region
    outcome.result.probabilities = es.probabilities
    outcome.examined = es.examined
    outcome.wave_sizes = es.wave_sizes
    return outcome
