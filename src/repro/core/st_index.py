"""The Spatio-Temporal Index (§3.2.1).

Three components, exactly as Fig. 3.2 draws them:

* **Temporal index** — a B+-tree over Δt-granular time slots of the day;
* **Spatial index** — one R-tree over the (static) re-segmented road
  network, shared by every temporal leaf;
* **Time lists** — for each (road segment, time slot), a disk-resident list
  of per-date ``(trajectory ID, visit second)`` pairs for the trajectories
  that traversed the segment in that slot.  The two levels of temporal
  information (time-of-day slot and *date*) are what make Prob-reachable
  computation cheap: one record read yields every day's trajectory IDs for
  a segment-slot, and Eq. 3.1 only needs set intersections from there.
  The per-visit seconds additionally give windows sub-slot precision, so a
  query window that starts or ends mid-slot filters the boundary slots
  exactly instead of rounding out to whole slots.

Time-list payloads live on the :class:`~repro.storage.disk.SimulatedDisk`;
every access is charged through a buffer pool, which is the cost the query
algorithms compete on.
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.network.model import RoadNetwork
from repro.spatial.btree import BPlusTree
from repro.spatial.geometry import Point
from repro.spatial.rtree import RTree
from repro.storage.disk import SimulatedDisk
from repro.storage.pagestore import BufferPool, PageStore, RecordPointer
from repro.storage.serialization import SerializationError, encode_append_delta
from repro.trajectory.model import SECONDS_PER_DAY
from repro.trajectory.store import TrajectoryDatabase


def encode_time_list(per_date: dict[int, list[tuple[int, int]]]) -> bytes:
    """Serialize ``date -> [(trajectory id, visit second)]`` for one entry.

    Flat uint32 layout: ``[num_dates, (date, count, (id, second)*count)*]``.
    Visit seconds (whole seconds since midnight) give the time lists
    sub-slot precision, so query windows that start or end mid-slot can be
    filtered exactly instead of rounding out to whole slots.
    """
    values: list[int] = [len(per_date)]
    for date in sorted(per_date):
        visits = sorted(per_date[date])
        values.append(date)
        values.append(len(visits))
        for trajectory_id, second in visits:
            values.append(trajectory_id)
            values.append(second)
    return struct.pack(f"<{len(values)}I", *values)


def decode_time_list(payload: bytes) -> dict[int, list[tuple[int, int]]]:
    """Inverse of :func:`encode_time_list`.

    Decoded on every (charged) time-list read in the TBS/ES hot path, so
    the payload is converted in one C pass (``frombuffer`` + ``tolist``)
    and each date's visit pairs are built by zipping list slices instead
    of indexing element-by-element.
    """
    if len(payload) % 4 != 0:
        raise SerializationError("time list payload not uint32-aligned")
    values = np.frombuffer(payload, dtype="<u4").tolist()
    total = len(values)
    if total == 0:
        raise SerializationError("truncated time list header")
    num_dates = values[0]
    per_date: dict[int, list[tuple[int, int]]] = {}
    offset = 1
    for _ in range(num_dates):
        if offset + 2 > total:
            raise SerializationError("truncated time list header")
        date, count = values[offset], values[offset + 1]
        offset += 2
        end = offset + 2 * count
        if end > total:
            raise SerializationError("truncated time list ids")
        per_date[date] = list(
            zip(values[offset:end:2], values[offset + 1:end:2])
        )
        offset = end
    if offset != total:
        raise SerializationError("trailing values in time list payload")
    return per_date


#: Bit position of the date in a packed visit key: ``(date << 32) | id``.
#: Trajectory ids are stored as uint32 so they fit the low half exactly;
#: dates are day indices (a dataset spans tens to hundreds of days), far
#: below the 2**31 bound that keeps packed keys inside int64.
KEY_DATE_SHIFT = 32
KEY_ID_MASK = (1 << KEY_DATE_SHIFT) - 1

_EMPTY_KEYS = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class ColumnarTimeList:
    """One decoded time-list record as flat visit columns.

    The columnar twin of :func:`decode_time_list`: instead of a
    ``date -> [(id, second)]`` dict of tuple lists, the record's visits
    become two slice-aligned arrays — the layout the Eq. 3.1 probability
    kernel consumes without any per-tuple Python work.

    Attributes:
        keys: ``int64`` packed ``(date << 32) | trajectory_id`` per visit,
            in stored (date-major, then id/second) order.
        seconds: ``int32`` visit seconds, aligned with ``keys``.

    Both arrays are read-only cached views shared between queries — never
    mutate them.
    """

    keys: np.ndarray = field(default_factory=lambda: _EMPTY_KEYS)
    seconds: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32)
    )

    @property
    def num_visits(self) -> int:
        return int(self.keys.size)


def decode_time_list_columns(payload: bytes) -> ColumnarTimeList:
    """Decode a time-list payload straight into visit columns.

    Shares the wire format (and the error conditions) of
    :func:`decode_time_list` but never materializes per-date tuple lists:
    each date's ``(id, second)`` block is strided out of one
    ``frombuffer`` view and packed into int64 keys in a handful of numpy
    ops, independent of the visit count.
    """
    if len(payload) % 4 != 0:
        raise SerializationError("time list payload not uint32-aligned")
    values = np.frombuffer(payload, dtype="<u4")
    total = int(values.size)
    if total == 0:
        raise SerializationError("truncated time list header")
    num_dates = int(values[0])
    key_parts: list[np.ndarray] = []
    second_parts: list[np.ndarray] = []
    offset = 1
    for _ in range(num_dates):
        if offset + 2 > total:
            raise SerializationError("truncated time list header")
        date, count = int(values[offset]), int(values[offset + 1])
        offset += 2
        end = offset + 2 * count
        if end > total:
            raise SerializationError("truncated time list ids")
        ids = values[offset:end:2].astype(np.int64)
        key_parts.append(ids + (date << KEY_DATE_SHIFT))
        second_parts.append(values[offset + 1:end:2].astype(np.int32))
        offset = end
    if offset != total:
        raise SerializationError("trailing values in time list payload")
    if not key_parts:
        return ColumnarTimeList()
    return ColumnarTimeList(
        keys=np.concatenate(key_parts),
        seconds=np.concatenate(second_parts),
    )


@dataclass
class STIndexStats:
    """Construction statistics, for documentation and sanity tests."""

    num_slots: int = 0
    num_entries: int = 0
    disk_pages: int = 0


class STIndex:
    """The ST-Index over a road network and a matched-trajectory database.

    Args:
        network: re-segmented road network.
        delta_t_s: slot width Δt in seconds (the index granularity of
            Table 4.2, there 1/5/10/20 minutes).
        disk: simulated disk to hold time-list payloads (a fresh private
            disk is created when omitted).
        buffer_pool_pages: LRU page cache capacity for reads.
        record_cache_size: decoded-record LRU capacity (0 disables).  The
            page store is append-only, so a decoded record can never go
            stale; the cache skips only the *decode* work — every access
            is still charged through the buffer pool, keeping the I/O
            accounting identical.
    """

    def __init__(
        self,
        network: RoadNetwork,
        delta_t_s: int,
        disk: SimulatedDisk | None = None,
        buffer_pool_pages: int = 512,
        record_cache_size: int = 4096,
    ) -> None:
        if delta_t_s <= 0 or delta_t_s > SECONDS_PER_DAY:
            raise ValueError(f"bad slot width {delta_t_s}")
        self.network = network
        self.delta_t_s = delta_t_s
        self.num_slots = -(-SECONDS_PER_DAY // delta_t_s)  # ceil division
        self.disk = disk if disk is not None else SimulatedDisk()
        self._store = PageStore(self.disk)
        self.pool = BufferPool(self.disk, capacity=buffer_pool_pages)
        # Temporal index: slot start seconds -> slot id, as a B+-tree.
        self._temporal = BPlusTree(order=64)
        for slot in range(self.num_slots):
            self._temporal.insert(slot * delta_t_s, slot)
        # Spatial index: one shared R-tree over segment MBRs.
        self._rtree = RTree.bulk_load(
            [(seg.bbox, seg.segment_id) for seg in network.segments()]
        )
        # Time-list directory: (segment, slot) -> chain of record
        # pointers.  The bulk build writes one record per entry; appending
        # later days adds records to the chain (merged at read time), so
        # new data never forces an index rebuild.
        self._directory: dict[tuple[int, int], list[RecordPointer]] = {}
        self._built = False
        self.record_cache_size = record_cache_size
        self._decoded_records: OrderedDict[  # guarded_by: _record_lock
            RecordPointer, dict[int, list[tuple[int, int]]]
        ] = OrderedDict()
        self._columnar_records: OrderedDict[  # guarded_by: _record_lock
            RecordPointer, ColumnarTimeList
        ] = OrderedDict()
        # Window-gather memo: (segment, plan) -> the filtered key array
        # plus the record pointers whose pages the gather touched.  A hit
        # *replays the charges* (every page access goes back through the
        # buffer pool) and only skips the decode/filter/concat work, so
        # the I/O accounting is identical to recomputing — the same
        # contract as the decoded-record LRUs.  Cleared when appends
        # extend a directory chain.
        self._window_gathers: OrderedDict[  # guarded_by: _record_lock
            tuple[int, tuple],
            tuple[np.ndarray, tuple[RecordPointer, ...], tuple[int, ...]],
        ] = OrderedDict()
        # Bumped (under _record_lock) whenever appends grow a directory
        # chain; a gather that started before the bump must not insert
        # its pre-append entry into the memo after the clear.
        self._data_epoch = 0  # guarded_by: _record_lock
        self._window_plans: OrderedDict[  # guarded_by: _record_lock
            tuple[float, float], tuple[tuple[int, bool, float, float], ...]
        ] = OrderedDict()
        self._record_lock = threading.Lock()
        self.stats = STIndexStats(num_slots=self.num_slots)

    # -- construction ----------------------------------------------------------

    @classmethod
    def restore(
        cls,
        network: RoadNetwork,
        delta_t_s: int,
        disk: SimulatedDisk,
        directory: dict[tuple[int, int], list[RecordPointer]],
        buffer_pool_pages: int = 512,
        record_cache_size: int = 4096,
    ) -> "STIndex":
        """Rebuild a built index from persisted state (no re-indexing).

        ``disk`` carries the time-list pages (e.g. from
        :meth:`~repro.storage.disk.SimulatedDisk.from_state`) and
        ``directory`` the extent pointers into them — the layout
        :func:`repro.io.persist.save_st_index` round-trips.  Appends keep
        working: the restored store opens a fresh tail page after the
        persisted extents.
        """
        index = cls(
            network,
            delta_t_s,
            disk=disk,
            buffer_pool_pages=buffer_pool_pages,
            record_cache_size=record_cache_size,
        )
        index._directory = {
            key: list(chain) for key, chain in directory.items()
        }
        index._built = True
        index.stats.num_entries = len(index._directory)
        index.stats.disk_pages = disk.num_pages
        return index

    def export_directory(
        self, segment_ids: "set[int] | None" = None
    ) -> dict[tuple[int, int], list[RecordPointer]]:
        """Copy the time-list directory, optionally restricted to segments.

        Flushes the store's tail first, so every returned pointer refers
        to committed pages; the copy is :meth:`restore`-compatible.  This
        is the shard-slice export (:mod:`repro.serving`): a shard keeps
        the chains of its owned + halo segments, with the original extent
        pointers intact.
        """
        self._store.flush()
        if segment_ids is None:
            return {key: list(chain) for key, chain in self._directory.items()}
        keep = set(segment_ids)
        return {
            key: list(chain)
            for key, chain in self._directory.items()
            if key[0] in keep
        }

    def build(self, database: TrajectoryDatabase) -> None:
        """Bulk-build the time lists from a matched-trajectory database.

        One vectorised pass: every (segment, slot, date, trajectory) visit
        tuple is concatenated, lexicographically sorted, grouped by
        (segment, slot), and each group is serialized as one disk record.
        """
        if self._built:
            raise RuntimeError("ST-Index already built")
        seg_parts, slot_parts, date_parts = [], [], []
        tid_parts, time_parts = [], []
        for trajectory_id, date, segments, times in database.iter_compact():
            n = len(segments)
            if n == 0:
                continue
            seconds = np.minimum(times, SECONDS_PER_DAY - 1).astype(np.int64)
            seg_parts.append(segments.astype(np.int64))
            slot_parts.append(seconds // self.delta_t_s)
            date_parts.append(np.full(n, date, dtype=np.int64))
            tid_parts.append(np.full(n, trajectory_id, dtype=np.int64))
            time_parts.append(seconds)
        if seg_parts:
            segments = np.concatenate(seg_parts)
            slots = np.concatenate(slot_parts)
            dates = np.concatenate(date_parts)
            tids = np.concatenate(tid_parts)
            seconds = np.concatenate(time_parts)
            order = np.lexsort((seconds, tids, dates, slots, segments))
            segments, slots = segments[order], slots[order]
            dates, tids = dates[order], tids[order]
            seconds = seconds[order]
            group_keys = segments * self.num_slots + slots
            _, starts = np.unique(group_keys, return_index=True)
            boundaries = np.append(starts, len(group_keys))
            for i in range(len(starts)):
                lo, hi = boundaries[i], boundaries[i + 1]
                segment_id = int(segments[lo])
                slot = int(slots[lo])
                per_date: dict[int, list[tuple[int, int]]] = {}
                group_dates = dates[lo:hi]
                group_tids = tids[lo:hi]
                group_seconds = seconds[lo:hi]
                date_starts = np.unique(group_dates, return_index=True)[1]
                date_bounds = np.append(date_starts, hi - lo)
                for j in range(len(date_starts)):
                    a, b = date_bounds[j], date_bounds[j + 1]
                    visits = sorted(
                        set(
                            zip(
                                group_tids[a:b].tolist(),
                                group_seconds[a:b].tolist(),
                            )
                        )
                    )
                    per_date[int(group_dates[a])] = visits
                payload = encode_time_list(per_date)
                self._directory[(segment_id, slot)] = [
                    self._store.append(payload)
                ]
            # Group commit: the tail page flushes once here instead of on
            # every record append, so building charges ~one page_write per
            # page instead of one per record.
            self._store.flush()
        self._built = True
        self.stats.num_entries = len(self._directory)
        self.stats.disk_pages = self.disk.num_pages

    def append_trajectories(self, trajectories) -> int:
        """Incrementally index additional matched trajectories.

        New days of data arrive continuously in a deployed system; instead
        of rebuilding, each affected (segment, slot) entry gains one more
        record in its chain, merged with the existing ones at read time.
        Returns the number of entries touched.

        Args:
            trajectories: iterable of
                :class:`~repro.trajectory.model.MatchedTrajectory`.
        """
        if not self._built:
            raise RuntimeError("build the ST-Index before appending")
        pending: dict[tuple[int, int], dict[int, set[tuple[int, int]]]] = {}
        for trajectory in trajectories:
            date = trajectory.date
            trajectory_id = trajectory.trajectory_id
            for visit in trajectory.visits:
                slot = self.slot_of(visit.time_s)
                second = int(min(max(0.0, visit.time_s), SECONDS_PER_DAY - 1))
                per_date = pending.setdefault((visit.segment_id, slot), {})
                per_date.setdefault(date, set()).add((trajectory_id, second))
        delta: list[tuple[int, int, int, int, int, int]] = []
        for key in sorted(pending):
            per_date = {d: sorted(visits) for d, visits in pending[key].items()}
            pointer = self._store.append(encode_time_list(per_date))
            self._directory.setdefault(key, []).append(pointer)
            delta.append(
                (
                    key[0],
                    key[1],
                    pointer.first_page,
                    pointer.num_pages,
                    pointer.offset,
                    pointer.length,
                )
            )
        self._store.flush()
        # Durability barrier: on a durable backend this journals every
        # page the append touched plus the directory delta, so the new
        # visits survive a crash without a snapshot rewrite.  On the
        # in-RAM backend it is a no-op.
        self.disk.commit(meta=encode_append_delta(self.delta_t_s, delta))
        # (Tail-page cache coherence is handled by the disk's write-through
        # invalidation of attached pools.)  The window-gather memo is keyed
        # by segment, not pointer, so grown chains must invalidate it; the
        # pointer-keyed decoded-record LRUs stay valid (records are
        # append-only and never mutate).
        with self._record_lock:
            self._window_gathers.clear()
            self._data_epoch += 1
        self.stats.num_entries = len(self._directory)
        self.stats.disk_pages = self.disk.num_pages
        return len(pending)

    # -- temporal lookups ---------------------------------------------------------

    def slot_of(self, time_s: float) -> int:
        """The slot containing ``time_s`` (clamped into the day)."""
        t = min(max(0.0, time_s), SECONDS_PER_DAY - 1)
        found = self._temporal.floor(t)
        assert found is not None, "temporal index must cover the whole day"
        return found[1]

    def _window_parts(
        self, start_s: float, end_s: float
    ) -> list[tuple[float, float]]:
        """``[start_s, end_s)`` as within-day parts, split at midnight.

        Time-of-day is cyclic: a window that runs past midnight continues
        in the early slots of the day (the same wrap-around the Con-Index
        slot hops use) instead of silently truncating at
        ``SECONDS_PER_DAY``.  A window spanning a full day or more covers
        every slot.
        """
        span = end_s - start_s
        if span <= 0:
            return []
        if span >= SECONDS_PER_DAY:
            return [(0.0, float(SECONDS_PER_DAY))]
        start = start_s % SECONDS_PER_DAY
        end = start + span
        if end <= SECONDS_PER_DAY:
            return [(start, end)]
        return [(start, float(SECONDS_PER_DAY)), (0.0, end - SECONDS_PER_DAY)]

    def _slots_in_part(self, start_s: float, end_s: float) -> list[int]:
        first_start = self.slot_of(start_s) * self.delta_t_s
        return [
            slot
            for _, slot in self._temporal.range(first_start, end_s - 1e-9)
        ]

    def slots_in_window(self, start_s: float, end_s: float) -> list[int]:
        """Slots overlapping ``[start_s, end_s)`` via B+-tree range scans.

        Windows crossing midnight are split at the day boundary and the
        wrapped part's slots follow the pre-midnight ones, so a late-night
        query window yields e.g. ``[287, 0, 1]`` instead of clamping.
        Each overlapped slot appears once even when the wrapped part
        re-enters the slot containing the window start.
        """
        slots: list[int] = []
        seen: set[int] = set()
        for lo, hi in self._window_parts(start_s, end_s):
            for slot in self._slots_in_part(lo, hi):
                if slot not in seen:
                    seen.add(slot)
                    slots.append(slot)
        return slots

    # -- spatial lookups -------------------------------------------------------------

    def find_start_segment(self, location: Point) -> int:
        """Map a query location ``s`` to its road segment ``r0`` (Fig. 3.4).

        Best-first R-tree nearest-neighbour with exact point-to-polyline
        distances.  Exact ties (the twin of a two-way road shares its
        polyline; a location on an intersection touches every incident
        segment) resolve to the smallest segment id, so the answer is a
        pure function of the geometry — independent of R-tree structure,
        which is what keeps a shard's sub-network lookup (see
        :mod:`repro.serving`) consistent with the full network's.
        """

        def exact(p: Point, sid: int) -> float:
            return self.network.segment(sid).distance_to_point(p)

        k = 2
        while True:
            matches = self._rtree.nearest(location, k=k, distance=exact)
            if not matches:
                raise ValueError("empty spatial index")
            distances = [exact(location, sid) for sid in matches]
            best = min(distances)
            # All ties with `best` are inside this result set when either
            # the tree is exhausted or the worst match is strictly farther.
            if len(matches) < k or distances[-1] > best:
                return min(
                    sid for sid, d in zip(matches, distances) if d == best
                )
            k *= 2

    @property
    def rtree(self) -> RTree:
        return self._rtree

    # -- time-list reads ----------------------------------------------------------------

    def time_entries(
        self, segment_id: int, slot: int, copy: bool = True
    ) -> dict[int, list[tuple[int, int]]]:
        """Read a (segment, slot) time list: ``date -> (id, second) visits``.

        Charged through the buffer pool; an absent entry (no trajectory ever
        hit the segment in the slot) is free, as the in-memory directory
        already proves absence.

        Mutability contract: with ``copy=True`` (the default) the caller
        owns the returned dict and its lists.  With ``copy=False`` a
        single-record entry is served as the memoized decoded record
        itself — a shared read-only view that internal read paths (the
        probability estimators, window filters) use to skip a fresh
        dict+list copy per access; callers taking a view must never
        mutate it.  Multi-record chains are merged fresh either way.
        """
        chain = self._directory.get((segment_id, slot))
        if chain is None:
            return {}
        if len(chain) == 1:
            # Bulk-built and per-append records are internally duplicate
            # free; only cross-record merges need the dedup below.
            decoded = self._read_record(chain[0])
            if not copy:
                return decoded
            return {date: list(visits) for date, visits in decoded.items()}
        merged: dict[int, set[tuple[int, int]]] = {}
        for pointer in chain:
            for date, visits in self._read_record(pointer).items():
                # Set-merge: a visit present in both the bulk record and an
                # appended record (same id, same second) must count once.
                merged.setdefault(date, set()).update(visits)
        return {date: sorted(visits) for date, visits in merged.items()}

    def _read_record(
        self, pointer: RecordPointer
    ) -> dict[int, list[tuple[int, int]]]:
        """One charged record read, with the decode memoized.

        The read always goes through the buffer pool (the paper's I/O
        accounting), but records are append-only and never mutate, so the
        decoded form is cached by pointer and served read-only — TBS/ES
        probability checks re-read the same handful of time lists for
        every candidate segment.  The LRU is shared by batch worker
        threads, so lookups and insert/evict run under a lock (the decode
        itself does not).
        """
        payload = self._store.read(pointer, pool=self.pool)
        if self.record_cache_size <= 0:
            return decode_time_list(payload)
        with self._record_lock:
            decoded = self._decoded_records.get(pointer)
            if decoded is not None:
                self._decoded_records.move_to_end(pointer)
                return decoded
        decoded = decode_time_list(payload)
        with self._record_lock:
            self._decoded_records[pointer] = decoded
            while len(self._decoded_records) > self.record_cache_size:
                self._decoded_records.popitem(last=False)
        return decoded

    def _read_record_columns(self, pointer: RecordPointer) -> ColumnarTimeList:
        """One charged record read decoded into visit columns (memoized).

        The charging is byte-for-byte identical to :meth:`_read_record`
        (the same ``PageStore.read`` through the same pool); only the
        decoded representation differs — flat packed-key/second arrays
        instead of a per-date dict — and gets its own pointer-keyed LRU.
        Served read-only: callers never mutate the cached arrays.
        """
        payload = self._store.read(pointer, pool=self.pool)
        if self.record_cache_size <= 0:
            return decode_time_list_columns(payload)
        with self._record_lock:
            decoded = self._columnar_records.get(pointer)
            if decoded is not None:
                self._columnar_records.move_to_end(pointer)
                return decoded
        decoded = decode_time_list_columns(payload)
        with self._record_lock:
            self._columnar_records[pointer] = decoded
            while len(self._columnar_records) > self.record_cache_size:
                self._columnar_records.popitem(last=False)
        return decoded

    def window_plan(
        self, start_s: float, end_s: float
    ) -> tuple[tuple[int, bool, float, float], ...]:
        """A window resolved to ``(slot, whole_slot, lo, hi)`` steps.

        Resolving ``[start_s, end_s)`` against the temporal B+-tree (the
        midnight split, the per-part slot range scans, the whole-vs-
        boundary classification) depends only on the window and Δt — not
        on any segment — so one query's estimator resolves it once and
        every candidate gather replays the memoized plan.  A small LRU
        keeps repeated query shapes free across estimators too.
        """
        key = (start_s, end_s)
        with self._record_lock:
            plan = self._window_plans.get(key)
            if plan is not None:
                self._window_plans.move_to_end(key)
                return plan
        steps: list[tuple[int, bool, float, float]] = []
        for lo, hi in self._window_parts(start_s, end_s):
            for slot in self._slots_in_part(lo, hi):
                slot_start = slot * self.delta_t_s
                whole_slot = (
                    lo <= slot_start and slot_start + self.delta_t_s <= hi
                )
                steps.append((slot, whole_slot, lo, hi))
        plan = tuple(steps)
        with self._record_lock:
            self._window_plans[key] = plan
            while len(self._window_plans) > 128:
                self._window_plans.popitem(last=False)
        return plan

    def window_keys_planned(
        self,
        segment_id: int,
        plan: tuple[tuple[int, bool, float, float], ...],
    ) -> np.ndarray:
        """Packed visit keys of a segment for a resolved window plan.

        Charges exactly the record reads of the dict-based
        :meth:`trajectories_in_window` path, in the same order (plan
        steps in window order, chain records in append order).  Visits
        may repeat across steps and chained records; membership callers
        are unaffected.
        """
        return self.gather_window_columns((segment_id,), plan)[0][0]

    @staticmethod
    def _assemble_window_keys(
        steps: list[tuple[RecordPointer, bool, float, float]],
        columns: dict[RecordPointer, ColumnarTimeList],
    ) -> np.ndarray:
        """Filter and concatenate one segment's decoded window records."""
        parts: list[np.ndarray] = []
        for pointer, whole_slot, lo, hi in steps:
            record = columns[pointer]
            if record.keys.size == 0:
                continue
            if whole_slot:
                parts.append(record.keys)
                continue
            mask = (record.seconds >= lo) & (record.seconds < hi)
            if mask.any():
                parts.append(record.keys[mask])
        if not parts:
            return _EMPTY_KEYS
        if len(parts) == 1:
            # Single whole-slot records dominate; avoid copying them.
            return parts[0]
        return np.concatenate(parts)

    def gather_window_columns(
        self,
        segment_ids,
        plan: tuple[tuple[int, bool, float, float], ...],
    ) -> tuple[list[np.ndarray], int, int]:
        """Batch window gather for a wave of segments (one charging pass).

        The wave-granular entry point behind every Eq. 3.1 gather: the
        page accesses of *all* requested segments' records are charged
        through one :meth:`~repro.storage.pagestore.BufferPool.get_pages`
        pass in exactly the order the per-segment scalar loop would read
        them (segment order, plan steps in window order, chain records in
        append order), so the buffer-pool and disk counters are identical
        to ``[window_keys_planned(s, plan) for s in segment_ids]`` — but
        the pool's lock shards are taken once per wave and segments whose
        filtered key array is already memoized skip the decode and filter
        work entirely (their page charges are still replayed).

        Returns:
            ``(keys, record_reads, page_reads)``: per-segment packed-key
            arrays aligned with ``segment_ids``, plus how many records
            and pages the gather charged (the ``batched_record_reads`` /
            ``prefetched_pages`` cost counters).
        """
        directory = self._directory
        cache_on = self.record_cache_size > 0
        results: list[np.ndarray | None] = []
        record_reads = 0
        page_ids: list[int] = []
        fresh_pointers: list[RecordPointer] = []
        # Per fresh segment: (result position, segment, filter steps,
        # and this segment's slice bounds within ``page_ids``).
        builds: list[
            tuple[
                int,
                int,
                list[tuple[RecordPointer, bool, float, float]],
                int,
                int,
            ]
        ] = []
        with self._record_lock:
            epoch = self._data_epoch
            gathers = self._window_gathers
            for segment_id in segment_ids:
                key = (segment_id, plan)
                entry = gathers.get(key) if cache_on else None
                if entry is not None:
                    gathers.move_to_end(key)
                    results.append(entry[0])
                    record_reads += len(entry[1])
                    page_ids.extend(entry[2])
                    continue
                steps: list[tuple[RecordPointer, bool, float, float]] = []
                pages_start = len(page_ids)
                for slot, whole_slot, lo, hi in plan:
                    chain = directory.get((segment_id, slot))
                    if chain is not None:
                        for pointer in chain:
                            steps.append((pointer, whole_slot, lo, hi))
                            fresh_pointers.append(pointer)
                            record_reads += 1
                            page_ids.extend(
                                range(
                                    pointer.first_page,
                                    pointer.first_page + pointer.num_pages,
                                )
                            )
                builds.append(
                    (len(results), segment_id, steps, pages_start, len(page_ids))
                )
                results.append(None)
        # One batched charge for the whole wave, in exactly the scalar
        # per-segment read order: ``page_ids`` interleaves the replayed
        # accesses of gather-cache hits with the pages of fresh pointers,
        # so the pool sees the same access sequence the per-segment loop
        # would produce.  The charged pages are pulled through the pool,
        # so the decode below never charges again.
        if fresh_pointers:
            self._store.ensure_committed(fresh_pointers)
        self.pool.get_pages(page_ids)
        if builds:
            needed: dict[RecordPointer, ColumnarTimeList | None] = {}
            missing: list[RecordPointer] = []
            with self._record_lock:
                columnar = self._columnar_records
                for _, _, steps, _, _ in builds:
                    for pointer, _, _, _ in steps:
                        if pointer in needed:
                            continue
                        record = columnar.get(pointer) if cache_on else None
                        if record is None:
                            missing.append(pointer)
                            needed[pointer] = None  # placeholder
                        else:
                            columnar.move_to_end(pointer)
                            needed[pointer] = record
            for pointer in missing:
                # Uncharged decode: the pages were charged (and pulled
                # through the pool) by the batched charge above, so the raw
                # extent read cannot double- or under-count.
                # repro-lint: disable=RL002
                needed[pointer] = decode_time_list_columns(
                    self.disk.extent_bytes(
                        pointer.first_page, pointer.offset, pointer.length
                    )
                )
            fresh: list[
                tuple[tuple[int, tuple], np.ndarray, tuple, tuple]
            ] = []
            for position, segment_id, steps, pages_start, pages_end in builds:
                keys = self._assemble_window_keys(steps, needed)
                results[position] = keys
                if cache_on:
                    fresh.append(
                        (
                            (segment_id, plan),
                            keys,
                            tuple(pointer for pointer, _, _, _ in steps),
                            tuple(page_ids[pages_start:pages_end]),
                        )
                    )
            if cache_on:
                with self._record_lock:
                    columnar = self._columnar_records
                    for pointer in missing:
                        columnar[pointer] = needed[pointer]
                    while len(columnar) > self.record_cache_size:
                        columnar.popitem(last=False)
                    if self._data_epoch == epoch:
                        # An append may have cleared the memo while this
                        # gather ran outside the lock; inserting the
                        # pre-append entry would resurrect stale data.
                        # (The pointer-keyed columnar records above stay
                        # valid either way — records never mutate.)
                        gathers = self._window_gathers
                        for key, keys, pointers, access_pages in fresh:
                            gathers[key] = (keys, pointers, access_pages)
                        while len(gathers) > self.record_cache_size:
                            gathers.popitem(last=False)
        return results, record_reads, len(page_ids)

    def window_keys(
        self, segment_id: int, start_s: float, end_s: float
    ) -> np.ndarray:
        """Packed ``(date << 32) | id`` visit keys within ``[start_s, end_s)``.

        The columnar twin of :meth:`trajectories_in_window`: slots fully
        inside the window contribute every stored visit, boundary slots
        are filtered by the per-visit seconds, and midnight-crossing
        windows are split at the day boundary.
        """
        return self.window_keys_planned(
            segment_id, self.window_plan(start_s, end_s)
        )

    def time_list(self, segment_id: int, slot: int) -> dict[int, set[int]]:
        """A (segment, slot) time list as ``date -> trajectory ids``."""
        return {
            date: {trajectory_id for trajectory_id, _ in visits}
            for date, visits in self.time_entries(segment_id, slot).items()
        }

    def trajectories_in_window(
        self, segment_id: int, start_s: float, end_s: float
    ) -> dict[int, set[int]]:
        """Per-date trajectory IDs passing a segment within ``[start_s, end_s)``.

        Slots fully inside the window contribute every stored ID; slots the
        window only partially overlaps are filtered by the per-visit seconds,
        so the window boundaries are exact rather than rounded out to whole
        Δt slots.  A window crossing midnight is split at the day boundary
        (time-of-day is cyclic) and both parts contribute.
        """
        merged: dict[int, set[int]] = {}
        for lo, hi in self._window_parts(start_s, end_s):
            for slot in self._slots_in_part(lo, hi):
                slot_start = slot * self.delta_t_s
                whole_slot = (
                    lo <= slot_start and slot_start + self.delta_t_s <= hi
                )
                entries = self.time_entries(segment_id, slot, copy=False)
                for date, visits in entries.items():
                    ids = {
                        trajectory_id
                        for trajectory_id, second in visits
                        if whole_slot or lo <= second < hi
                    }
                    if not ids:
                        continue
                    bucket = merged.get(date)
                    if bucket is None:
                        merged[date] = ids
                    else:
                        bucket |= ids
        return merged

    def has_entry(self, segment_id: int, slot: int) -> bool:
        return (segment_id, slot) in self._directory
