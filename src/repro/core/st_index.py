"""The Spatio-Temporal Index (§3.2.1).

Three components, exactly as Fig. 3.2 draws them:

* **Temporal index** — a B+-tree over Δt-granular time slots of the day;
* **Spatial index** — one R-tree over the (static) re-segmented road
  network, shared by every temporal leaf;
* **Time lists** — for each (road segment, time slot), a disk-resident list
  of per-date ``(trajectory ID, visit second)`` pairs for the trajectories
  that traversed the segment in that slot.  The two levels of temporal
  information (time-of-day slot and *date*) are what make Prob-reachable
  computation cheap: one record read yields every day's trajectory IDs for
  a segment-slot, and Eq. 3.1 only needs set intersections from there.
  The per-visit seconds additionally give windows sub-slot precision, so a
  query window that starts or ends mid-slot filters the boundary slots
  exactly instead of rounding out to whole slots.

Time-list payloads live on the :class:`~repro.storage.disk.SimulatedDisk`;
every access is charged through a buffer pool, which is the cost the query
algorithms compete on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.network.model import RoadNetwork
from repro.spatial.btree import BPlusTree
from repro.spatial.geometry import Point
from repro.spatial.rtree import RTree
from repro.storage.disk import SimulatedDisk
from repro.storage.pagestore import BufferPool, PageStore, RecordPointer
from repro.storage.serialization import SerializationError
from repro.trajectory.model import SECONDS_PER_DAY
from repro.trajectory.store import TrajectoryDatabase


def encode_time_list(per_date: dict[int, list[tuple[int, int]]]) -> bytes:
    """Serialize ``date -> [(trajectory id, visit second)]`` for one entry.

    Flat uint32 layout: ``[num_dates, (date, count, (id, second)*count)*]``.
    Visit seconds (whole seconds since midnight) give the time lists
    sub-slot precision, so query windows that start or end mid-slot can be
    filtered exactly instead of rounding out to whole slots.
    """
    values: list[int] = [len(per_date)]
    for date in sorted(per_date):
        visits = sorted(per_date[date])
        values.append(date)
        values.append(len(visits))
        for trajectory_id, second in visits:
            values.append(trajectory_id)
            values.append(second)
    return struct.pack(f"<{len(values)}I", *values)


def decode_time_list(payload: bytes) -> dict[int, list[tuple[int, int]]]:
    """Inverse of :func:`encode_time_list`."""
    if len(payload) % 4 != 0:
        raise SerializationError("time list payload not uint32-aligned")
    values = struct.unpack(f"<{len(payload) // 4}I", payload)
    num_dates = values[0]
    per_date: dict[int, list[tuple[int, int]]] = {}
    offset = 1
    for _ in range(num_dates):
        if offset + 2 > len(values):
            raise SerializationError("truncated time list header")
        date, count = values[offset], values[offset + 1]
        offset += 2
        if offset + 2 * count > len(values):
            raise SerializationError("truncated time list ids")
        per_date[date] = [
            (values[offset + 2 * i], values[offset + 2 * i + 1])
            for i in range(count)
        ]
        offset += 2 * count
    if offset != len(values):
        raise SerializationError("trailing values in time list payload")
    return per_date


@dataclass
class STIndexStats:
    """Construction statistics, for documentation and sanity tests."""

    num_slots: int = 0
    num_entries: int = 0
    disk_pages: int = 0


class STIndex:
    """The ST-Index over a road network and a matched-trajectory database.

    Args:
        network: re-segmented road network.
        delta_t_s: slot width Δt in seconds (the index granularity of
            Table 4.2, there 1/5/10/20 minutes).
        disk: simulated disk to hold time-list payloads (a fresh private
            disk is created when omitted).
        buffer_pool_pages: LRU page cache capacity for reads.
    """

    def __init__(
        self,
        network: RoadNetwork,
        delta_t_s: int,
        disk: SimulatedDisk | None = None,
        buffer_pool_pages: int = 512,
    ) -> None:
        if delta_t_s <= 0 or delta_t_s > SECONDS_PER_DAY:
            raise ValueError(f"bad slot width {delta_t_s}")
        self.network = network
        self.delta_t_s = delta_t_s
        self.num_slots = -(-SECONDS_PER_DAY // delta_t_s)  # ceil division
        self.disk = disk if disk is not None else SimulatedDisk()
        self._store = PageStore(self.disk)
        self.pool = BufferPool(self.disk, capacity=buffer_pool_pages)
        # Temporal index: slot start seconds -> slot id, as a B+-tree.
        self._temporal = BPlusTree(order=64)
        for slot in range(self.num_slots):
            self._temporal.insert(slot * delta_t_s, slot)
        # Spatial index: one shared R-tree over segment MBRs.
        self._rtree = RTree.bulk_load(
            [(seg.bbox, seg.segment_id) for seg in network.segments()]
        )
        # Time-list directory: (segment, slot) -> chain of record
        # pointers.  The bulk build writes one record per entry; appending
        # later days adds records to the chain (merged at read time), so
        # new data never forces an index rebuild.
        self._directory: dict[tuple[int, int], list[RecordPointer]] = {}
        self._built = False
        self.stats = STIndexStats(num_slots=self.num_slots)

    # -- construction ----------------------------------------------------------

    def build(self, database: TrajectoryDatabase) -> None:
        """Bulk-build the time lists from a matched-trajectory database.

        One vectorised pass: every (segment, slot, date, trajectory) visit
        tuple is concatenated, lexicographically sorted, grouped by
        (segment, slot), and each group is serialized as one disk record.
        """
        if self._built:
            raise RuntimeError("ST-Index already built")
        seg_parts, slot_parts, date_parts = [], [], []
        tid_parts, time_parts = [], []
        for trajectory_id, date, segments, times in database.iter_compact():
            n = len(segments)
            if n == 0:
                continue
            seconds = np.minimum(times, SECONDS_PER_DAY - 1).astype(np.int64)
            seg_parts.append(segments.astype(np.int64))
            slot_parts.append(seconds // self.delta_t_s)
            date_parts.append(np.full(n, date, dtype=np.int64))
            tid_parts.append(np.full(n, trajectory_id, dtype=np.int64))
            time_parts.append(seconds)
        if seg_parts:
            segments = np.concatenate(seg_parts)
            slots = np.concatenate(slot_parts)
            dates = np.concatenate(date_parts)
            tids = np.concatenate(tid_parts)
            seconds = np.concatenate(time_parts)
            order = np.lexsort((seconds, tids, dates, slots, segments))
            segments, slots = segments[order], slots[order]
            dates, tids = dates[order], tids[order]
            seconds = seconds[order]
            group_keys = segments * self.num_slots + slots
            _, starts = np.unique(group_keys, return_index=True)
            boundaries = np.append(starts, len(group_keys))
            for i in range(len(starts)):
                lo, hi = boundaries[i], boundaries[i + 1]
                segment_id = int(segments[lo])
                slot = int(slots[lo])
                per_date: dict[int, list[tuple[int, int]]] = {}
                group_dates = dates[lo:hi]
                group_tids = tids[lo:hi]
                group_seconds = seconds[lo:hi]
                date_starts = np.unique(group_dates, return_index=True)[1]
                date_bounds = np.append(date_starts, hi - lo)
                for j in range(len(date_starts)):
                    a, b = date_bounds[j], date_bounds[j + 1]
                    visits = sorted(
                        set(
                            zip(
                                group_tids[a:b].tolist(),
                                group_seconds[a:b].tolist(),
                            )
                        )
                    )
                    per_date[int(group_dates[a])] = visits
                payload = encode_time_list(per_date)
                self._directory[(segment_id, slot)] = [
                    self._store.append(payload)
                ]
        self._built = True
        self.stats.num_entries = len(self._directory)
        self.stats.disk_pages = self.disk.num_pages

    def append_trajectories(self, trajectories) -> int:
        """Incrementally index additional matched trajectories.

        New days of data arrive continuously in a deployed system; instead
        of rebuilding, each affected (segment, slot) entry gains one more
        record in its chain, merged with the existing ones at read time.
        Returns the number of entries touched.

        Args:
            trajectories: iterable of
                :class:`~repro.trajectory.model.MatchedTrajectory`.
        """
        if not self._built:
            raise RuntimeError("build the ST-Index before appending")
        pending: dict[tuple[int, int], dict[int, set[tuple[int, int]]]] = {}
        for trajectory in trajectories:
            date = trajectory.date
            trajectory_id = trajectory.trajectory_id
            for visit in trajectory.visits:
                slot = self.slot_of(visit.time_s)
                second = int(min(max(0.0, visit.time_s), SECONDS_PER_DAY - 1))
                per_date = pending.setdefault((visit.segment_id, slot), {})
                per_date.setdefault(date, set()).add((trajectory_id, second))
        for key in sorted(pending):
            per_date = {d: sorted(visits) for d, visits in pending[key].items()}
            pointer = self._store.append(encode_time_list(per_date))
            self._directory.setdefault(key, []).append(pointer)
        # (Tail-page cache coherence is handled by the disk's write-through
        # invalidation of attached pools.)
        self.stats.num_entries = len(self._directory)
        self.stats.disk_pages = self.disk.num_pages
        return len(pending)

    # -- temporal lookups ---------------------------------------------------------

    def slot_of(self, time_s: float) -> int:
        """The slot containing ``time_s`` (clamped into the day)."""
        t = min(max(0.0, time_s), SECONDS_PER_DAY - 1)
        found = self._temporal.floor(t)
        assert found is not None, "temporal index must cover the whole day"
        return found[1]

    def slots_in_window(self, start_s: float, end_s: float) -> list[int]:
        """Slots overlapping ``[start_s, end_s)`` via a B+-tree range scan."""
        if end_s <= start_s:
            return []
        first_start = self.slot_of(start_s) * self.delta_t_s
        end_clamped = min(end_s, SECONDS_PER_DAY)
        return [
            slot
            for _, slot in self._temporal.range(first_start, end_clamped - 1e-9)
        ]

    # -- spatial lookups -------------------------------------------------------------

    def find_start_segment(self, location: Point) -> int:
        """Map a query location ``s`` to its road segment ``r0`` (Fig. 3.4).

        Best-first R-tree nearest-neighbour with exact point-to-polyline
        distances.
        """
        matches = self._rtree.nearest(
            location,
            k=1,
            distance=lambda p, sid: self.network.segment(sid).distance_to_point(p),
        )
        if not matches:
            raise ValueError("empty spatial index")
        return matches[0]

    @property
    def rtree(self) -> RTree:
        return self._rtree

    # -- time-list reads ----------------------------------------------------------------

    def time_entries(
        self, segment_id: int, slot: int
    ) -> dict[int, list[tuple[int, int]]]:
        """Read a (segment, slot) time list: ``date -> (id, second) visits``.

        Charged through the buffer pool; an absent entry (no trajectory ever
        hit the segment in the slot) is free, as the in-memory directory
        already proves absence.
        """
        chain = self._directory.get((segment_id, slot))
        if chain is None:
            return {}
        merged: dict[int, list[tuple[int, int]]] = {}
        for pointer in chain:
            payload = self._store.read(pointer, pool=self.pool)
            for date, visits in decode_time_list(payload).items():
                merged.setdefault(date, []).extend(visits)
        return merged

    def time_list(self, segment_id: int, slot: int) -> dict[int, set[int]]:
        """A (segment, slot) time list as ``date -> trajectory ids``."""
        return {
            date: {trajectory_id for trajectory_id, _ in visits}
            for date, visits in self.time_entries(segment_id, slot).items()
        }

    def trajectories_in_window(
        self, segment_id: int, start_s: float, end_s: float
    ) -> dict[int, set[int]]:
        """Per-date trajectory IDs passing a segment within ``[start_s, end_s)``.

        Slots fully inside the window contribute every stored ID; slots the
        window only partially overlaps are filtered by the per-visit seconds,
        so the window boundaries are exact rather than rounded out to whole
        Δt slots.
        """
        merged: dict[int, set[int]] = {}
        for slot in self.slots_in_window(start_s, end_s):
            slot_start = slot * self.delta_t_s
            whole_slot = start_s <= slot_start and slot_start + self.delta_t_s <= end_s
            for date, visits in self.time_entries(segment_id, slot).items():
                ids = {
                    trajectory_id
                    for trajectory_id, second in visits
                    if whole_slot or start_s <= second < end_s
                }
                if not ids:
                    continue
                bucket = merged.get(date)
                if bucket is None:
                    merged[date] = ids
                else:
                    bucket |= ids
        return merged

    def has_entry(self, segment_id: int, slot: int) -> bool:
        return (segment_id, slot) in self._directory
