"""The paper's primary contribution: indexes and query processing.

Index and algorithm layers:

* :mod:`~repro.core.st_index` — the Spatio-Temporal Index (§3.2.1).
* :mod:`~repro.core.con_index` — the Connection Index (§3.2.2).
* :mod:`~repro.core.probability` — Eq. 3.1 reachability probabilities.
* :mod:`~repro.core.prob_kernel` — the columnar Eq. 3.1 kernel (packed
  visit keys, batched wave evaluation) behind both estimators.
* :mod:`~repro.core.sqmb` — Algorithm 1 (s-query max/min bounding region).
* :mod:`~repro.core.tbs` — Algorithm 2 (trace-back search).
* :mod:`~repro.core.mqmb` — Algorithm 3 (m-query bounding region).
* :mod:`~repro.core.baseline` — the exhaustive-search (ES) baseline and the
  naive multi-s-query baseline.
* :mod:`~repro.core.reverse` — reverse-reachability machinery.

Query-service layers (planner -> executors -> storage):

* :mod:`~repro.core.planner` — routes a query to an inspectable
  :class:`QueryPlan` (algorithm, bounding strategy, Δt slots).
* :mod:`~repro.core.executors` — the executor registry; one module per
  algorithm family, extensible via ``@register_executor``.
* :mod:`~repro.core.engine` — index-owning :class:`ReachabilityEngine`
  with the classic one-query facade.
* :mod:`~repro.core.region_cache` — the thread-safe, service-lifetime
  bounding-region LRU shared across batches.
* :mod:`~repro.core.service` — :class:`QueryService`, owner of the
  service-lifetime caches the client pipelines execute through (its
  classic query entry points are deprecated shims; the stable front door
  is :mod:`repro.api`).
* :mod:`~repro.core.explain` — ``EXPLAIN``-style plan + cost rendering.
* :mod:`~repro.core.legacy_expansion` /
  :mod:`~repro.core.legacy_probability` — pre-kernel reference
  implementations (equivalence tests and benchmark baselines).
"""

from repro.core.query import (
    BoundingRegion,
    MQuery,
    QueryCost,
    QueryResult,
    SQuery,
)
from repro.core.st_index import STIndex
from repro.core.con_index import ConnectionIndex, FrontierEntry
from repro.core.probability import ProbabilityEstimator
from repro.core.sqmb import sqmb_bounding_region
from repro.core.tbs import trace_back_search
from repro.core.mqmb import mqmb_bounding_region
from repro.core.baseline import (
    exhaustive_search,
    exhaustive_search_pruned,
    naive_m_query,
)
from repro.core.reverse import (
    ReverseProbabilityEstimator,
    reverse_bounding_region,
)
from repro.core.executors import (
    ExecutionContext,
    ExecutionOutcome,
    execute_plan,
    executor_names,
    get_executor,
    register_executor,
)
from repro.core.planner import QueryPlan, plan_query
from repro.core.engine import ReachabilityEngine
from repro.core.region_cache import RegionCache
from repro.core.service import BatchReport, QueryService, as_service

__all__ = [
    "QueryPlan",
    "plan_query",
    "ExecutionContext",
    "ExecutionOutcome",
    "execute_plan",
    "executor_names",
    "get_executor",
    "register_executor",
    "QueryService",
    "BatchReport",
    "RegionCache",
    "as_service",
    "SQuery",
    "MQuery",
    "QueryResult",
    "QueryCost",
    "BoundingRegion",
    "STIndex",
    "ConnectionIndex",
    "FrontierEntry",
    "ProbabilityEstimator",
    "sqmb_bounding_region",
    "trace_back_search",
    "mqmb_bounding_region",
    "exhaustive_search",
    "exhaustive_search_pruned",
    "naive_m_query",
    "ReverseProbabilityEstimator",
    "reverse_bounding_region",
    "ReachabilityEngine",
]
