"""The Connection Index (§3.2.2).

For each road segment and Δt time slot, the Con-Index records which
segments are certainly reachable within one slot (**Near** list, built from
the *minimum* observed speeds with zeros removed) and which are at most
reachable (**Far** list, built from the *maximum* observed speeds).  Both
are produced by the modified network-expansion algorithm of [21] with
per-slot travel times derived from historical speed statistics.

Entries are materialised lazily (or eagerly via :meth:`precompute`), written
to the simulated disk, and decoded entries are cached in memory with an LRU
bound — the SQMB hot path reads the same handful of entries for every query
in a sweep, which is precisely why the paper's query processing "skip[s]
some network expansion steps" cheaply.
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Literal

import numpy as np

from repro.network.expansion import time_bounded_expansion
from repro.network.model import RoadNetwork
from repro.storage.disk import SimulatedDisk
from repro.storage.pagestore import BufferPool, PageStore, RecordPointer
from repro.storage.serialization import _decode_varint, _encode_varint
from repro.trajectory.model import SECONDS_PER_DAY
from repro.trajectory.store import TrajectoryDatabase

Kind = Literal["far", "near", "far_rev", "near_rev"]


@dataclass(frozen=True)
class FrontierEntry:
    """One connection-table row: F(r, t) or N(r, t) of Table 2.1.

    Attributes:
        frontier: the outer shell of the one-slot expansion — the segments
            Fig. 3.3 lists as the Near/Far IDs.
        cover: every segment reachable within the slot (frontier included);
            accumulated by SQMB into the bounding-region area.
    """

    frontier: tuple[int, ...]
    cover: frozenset[int]

    def cover_ids(self) -> np.ndarray:
        """The cover as a sorted ``int64`` id array (cached per entry).

        The SQMB/MQMB step loops union entry covers into boolean row
        masks; materialising the array once per decoded entry keeps that
        union a single fancy-index store instead of a per-id set insert.
        """
        cached = getattr(self, "_cover_ids", None)
        if cached is None:
            cached = np.fromiter(
                self.cover, dtype=np.int64, count=len(self.cover)
            )
            cached.sort()
            object.__setattr__(self, "_cover_ids", cached)
        return cached


def encode_entry(entry: FrontierEntry) -> bytes:
    """Serialize an entry as two uint32 arrays."""
    frontier = sorted(entry.frontier)
    cover = sorted(entry.cover)
    values = [len(frontier), len(cover)] + frontier + cover
    return struct.pack(f"<{len(values)}I", *values)


def decode_entry(payload: bytes) -> FrontierEntry:
    """Inverse of :func:`encode_entry`."""
    count = len(payload) // 4
    values = struct.unpack(f"<{count}I", payload[: count * 4])
    n_frontier, n_cover = values[0], values[1]
    frontier = values[2 : 2 + n_frontier]
    cover = values[2 + n_frontier : 2 + n_frontier + n_cover]
    return FrontierEntry(frontier=tuple(frontier), cover=frozenset(cover))


def _encode_delta_list(values: list[int]) -> bytes:
    """Sorted ids as count-prefixed delta varints (ids cluster spatially,
    so deltas are small and mostly one byte)."""
    parts = [_encode_varint(len(values))]
    previous = 0
    for value in values:
        parts.append(_encode_varint(value - previous))
        previous = value
    return b"".join(parts)


def _decode_delta_list(payload: bytes, offset: int) -> tuple[list[int], int]:
    count, offset = _decode_varint(payload, offset)
    values: list[int] = []
    previous = 0
    for _ in range(count):
        delta, offset = _decode_varint(payload, offset)
        previous += delta
        values.append(previous)
    return values, offset


def encode_entry_compressed(entry: FrontierEntry) -> bytes:
    """Delta-varint entry codec — 2-4x smaller than the flat uint32 layout.

    §1.2 reviews index-compression work ([3, 12, 24]) motivated by exactly
    this: per-slot connection tables repeat near-identical id lists, and
    compressing them is what keeps the Con-Index "a reasonable size".
    """
    return _encode_delta_list(sorted(entry.frontier)) + _encode_delta_list(
        sorted(entry.cover)
    )


def decode_entry_compressed(payload: bytes) -> FrontierEntry:
    """Inverse of :func:`encode_entry_compressed`."""
    frontier, offset = _decode_delta_list(payload, 0)
    cover, _ = _decode_delta_list(payload, offset)
    return FrontierEntry(frontier=tuple(frontier), cover=frozenset(cover))


class ConnectionIndex:
    """Near/Far connection tables over (segment, slot) pairs.

    Args:
        network: re-segmented road network.
        database: trajectory database supplying observed speed bounds.
        delta_t_s: slot width Δt in seconds (same granularity as ST-Index).
        disk: simulated disk for entry payloads (private one when omitted).
        buffer_pool_pages: LRU page-cache capacity.
        entry_cache_size: decoded-entry LRU capacity (in-memory index cache).
        compressed: store entries with the delta-varint codec instead of
            flat uint32 arrays (smaller records, slightly dearer decode).
    """

    def __init__(
        self,
        network: RoadNetwork,
        database: TrajectoryDatabase,
        delta_t_s: int,
        disk: SimulatedDisk | None = None,
        buffer_pool_pages: int = 512,
        entry_cache_size: int = 100_000,
        compressed: bool = False,
    ) -> None:
        if delta_t_s <= 0 or delta_t_s > SECONDS_PER_DAY:
            raise ValueError(f"bad slot width {delta_t_s}")
        self.network = network
        self.database = database
        self.delta_t_s = delta_t_s
        self.num_slots = -(-SECONDS_PER_DAY // delta_t_s)
        self.disk = disk if disk is not None else SimulatedDisk()
        self._store = PageStore(self.disk)
        self.pool = BufferPool(self.disk, capacity=buffer_pool_pages)
        self._directory: dict[tuple[str, int, int], RecordPointer] = {}  # guarded_by: _entry_lock
        self._decoded: OrderedDict[tuple[str, int, int], FrontierEntry] = (  # guarded_by: _entry_lock
            OrderedDict()
        )
        self._entry_cache_size = entry_cache_size
        # Guards the lazy lookup/compute/append/evict sequence: batch
        # worker threads share one Con-Index per Δt.
        self._entry_lock = threading.RLock()
        self.compressed = compressed
        self._encode = encode_entry_compressed if compressed else encode_entry
        self._decode = decode_entry_compressed if compressed else decode_entry
        self.bytes_stored = 0  # guarded_by: _entry_lock
        self._segment_length = {
            sid: network.segment(sid).length for sid in network.segment_ids()
        }
        self._tt_vectors: dict[tuple[bool, int], np.ndarray] = {}  # guarded_by: _entry_lock
        self._tt_lists: dict[tuple[bool, int], list[float]] = {}  # guarded_by: _entry_lock
        # The CSR view the cached vectors were built for.
        self._tt_csr = None  # guarded_by: _entry_lock
        # Construction-side counter, for ablations.
        self.expansions = 0  # guarded_by: _entry_lock

    # -- slot helpers -------------------------------------------------------

    def slot_of(self, time_s: float) -> int:
        """The slot containing ``time_s``, wrapping modulo one day.

        Time-of-day is cyclic: a query hop that crosses midnight continues
        in the first slots of the (next) day rather than clamping at the
        last slot — the same wrap-around the residual-carry expansion has
        always used, so the memoized entry hops and the top-up now agree
        near midnight.
        """
        t = float(time_s) % SECONDS_PER_DAY
        return min(int(t // self.delta_t_s), self.num_slots - 1)

    def _slot_mid_time(self, slot: int) -> float:
        return (slot % self.num_slots) * self.delta_t_s + self.delta_t_s / 2.0

    def slot_hour(self, slot: int) -> int:
        """The hour-of-day whose speed statistics govern ``slot``.

        Entries and travel-time vectors are fully determined by
        ``(segment, kind, slot_hour(slot))`` because the database's speed
        bounds are hourly — the fact the hop loops exploit to skip
        re-expanding segments across same-hour steps.
        """
        return int(self._slot_mid_time(slot) // 3600) % 24

    # -- speed models ----------------------------------------------------------

    def travel_time_vector(self, kind: Kind, slot: int) -> np.ndarray:
        """Per-CSR-row traversal seconds under the slot's min/max speeds.

        Segments with no historical observations in (or near) the slot's
        hour are impassable (``inf``): a data-driven index cannot vouch
        for roads no trajectory ever used.  Speed bounds are hourly, so
        the vector is cached per ``(far/near, hour)`` — at most 48 arrays
        serve every slot of the day — and every expansion (entry
        construction and the residual-carry top-up alike) is a pure numpy
        gather against it.
        """
        csr = self.network.csr()
        # The caches are cleared by invalidate_entries() under _entry_lock,
        # so the stale-CSR swap and the fill must hold it too (reentrant:
        # entry() -> _compute() -> here is the common call path).
        with self._entry_lock:
            if csr is not self._tt_csr:
                # Topology changed (the network rebuilt its CSR view):
                # cached cost vectors have the old row count and must be
                # rebuilt.
                self._tt_vectors.clear()
                self._tt_lists.clear()
                self._tt_csr = csr
            hour = self.slot_hour(slot)
            pick_max = kind.startswith("far")
            key = (pick_max, hour)
            vector = self._tt_vectors.get(key)
            if vector is None:
                bounds_of = self.database.observed_speed_bounds
                probe_time = hour * 3600.0
                speeds = np.zeros(csr.n, dtype=np.float64)
                for row, segment_id in enumerate(csr.ids.tolist()):
                    bounds = bounds_of(segment_id, probe_time)
                    if bounds is not None:
                        speeds[row] = bounds[1] if pick_max else bounds[0]
                vector = np.full(csr.n, float("inf"))
                positive = speeds > 0
                vector[positive] = csr.lengths[positive] / speeds[positive]
                self._tt_vectors[key] = vector
            return vector

    def travel_time_list(self, kind: Kind, slot: int) -> list[float]:
        """:meth:`travel_time_vector` as a plain Python list (cached).

        The expansion kernels' scalar fast path walks costs in a Python
        loop; handing it a ready-made list avoids a per-expansion
        ``tolist`` conversion.
        """
        # Resolving the vector first also validates the CSR view (stale
        # caches are cleared there when the topology changed).  Holding the
        # (reentrant) lock across both steps keeps the list cache coherent
        # with the vector it was derived from.
        with self._entry_lock:
            vector = self.travel_time_vector(kind, slot)
            key = (kind.startswith("far"), self.slot_hour(slot))
            values = self._tt_lists.get(key)
            if values is None:
                values = vector.tolist()
                self._tt_lists[key] = values
            return values

    def travel_time(self, kind: Kind, slot: int):
        """Per-segment traversal seconds as a callable (classic interface).

        Reads from :meth:`travel_time_vector`, so both interfaces always
        agree on the speed model.
        """
        vector = self.travel_time_vector(kind, slot)
        csr = self.network.csr()

        def travel_time(segment_id: int) -> float:
            return float(vector[csr.row_of(segment_id)])

        return travel_time

    # -- entry access -------------------------------------------------------------

    def entry(self, segment_id: int, slot: int, kind: Kind) -> FrontierEntry:
        """F(segment, slot) for kind='far', N(segment, slot) for kind='near'.

        Thread-safe: batch worker threads materialise entries lazily, so
        the lookup / compute / append / LRU-evict sequence runs under one
        per-index lock — single-flight, like the buffer pool's miss
        handling, which keeps threaded `DiskStats` deterministic (an
        entry is computed, stored and charged exactly once).
        """
        slot %= self.num_slots
        key = (kind, segment_id, slot)
        with self._entry_lock:
            cached = self._decoded.get(key)
            if cached is not None:
                self._decoded.move_to_end(key)
                return cached
            pointer = self._directory.get(key)
            if pointer is None:
                entry = self._compute(segment_id, slot, kind)
                payload = self._encode(entry)
                self.bytes_stored += len(payload)
                self._directory[key] = self._store.append(payload)
                # Write through: a lazily materialised entry is durable
                # (and its page write charged) as soon as it exists,
                # keeping the query-time write accounting identical to
                # the pre-extent store.  Only the ST-Index *bulk build*
                # group-commits.
                self._store.flush()
            else:
                entry = self._decode(self._store.read(pointer, pool=self.pool))
            self._decoded[key] = entry
            if len(self._decoded) > self._entry_cache_size:
                self._decoded.popitem(last=False)
            return entry

    def far(self, segment_id: int, slot: int) -> FrontierEntry:
        return self.entry(segment_id, slot, "far")

    def near(self, segment_id: int, slot: int) -> FrontierEntry:
        return self.entry(segment_id, slot, "near")

    # repro-lint: holds=_entry_lock
    def _compute(self, segment_id: int, slot: int, kind: Kind) -> FrontierEntry:
        from repro.network import csr as csr_module

        self.expansions += 1
        # The Python cost list only feeds the scalar fast path; on larger
        # networks the kernel runs pure-vector and the list would be
        # built (and cached, 48x n floats) for nothing.
        scalar_path = self.network.csr().n <= csr_module.SCALAR_PATH_MAX_N
        result = time_bounded_expansion(
            self.network,
            segment_id,
            float(self.delta_t_s),
            self.travel_time_vector(kind, slot),
            reverse=kind.endswith("_rev"),
            cost_list=(
                self.travel_time_list(kind, slot) if scalar_path else None
            ),
        )
        return FrontierEntry(
            frontier=tuple(sorted(result.frontier)),
            cover=frozenset(result.arrival),
        )

    def invalidate_entries(self) -> None:
        """Discard memoized entries and speed vectors (data changed).

        Called when new trajectory data lands in the database: the
        Near/Far tables derive from observed speed bounds, so previously
        materialised entries may no longer be faithful.  Entries rebuild
        lazily on next access; the old on-disk records are simply
        abandoned (the simulated page store is append-only).
        """
        with self._entry_lock:
            self._directory.clear()
            self._decoded.clear()
            self._tt_vectors.clear()
            self._tt_lists.clear()

    # -- bulk construction ---------------------------------------------------------

    def precompute(
        self,
        segment_ids: Iterable[int] | None = None,
        slots: Iterable[int] | None = None,
        kinds: tuple[Kind, ...] = ("far", "near"),
    ) -> int:
        """Eagerly build entries (the paper's offline index construction).

        Returns the number of entries materialised.
        """
        seg_list = (
            list(segment_ids)
            if segment_ids is not None
            else sorted(self.network.segment_ids())
        )
        slot_list = (
            [s % self.num_slots for s in slots]
            if slots is not None
            else list(range(self.num_slots))
        )
        built = 0
        for slot in slot_list:
            for segment_id in seg_list:
                for kind in kinds:
                    self.entry(segment_id, slot, kind)
                    built += 1
        return built

    @property
    def num_entries(self) -> int:
        with self._entry_lock:
            return len(self._directory)
