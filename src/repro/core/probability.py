"""Reachability probabilities (Eq. 3.1).

``probability(r, r0) = m*/m`` where ``m*`` counts the days on which some
single trajectory both passed the start segment ``r0`` during the
departure window ``[T, T+min(W, L)]`` (``W`` fixed at the paper's
canonical 5-minute slot, independent of the index Δt) and passed ``r``
during the query window ``[T, T+L]``.  The estimator caches the start segment's per-day trajectory
sets, so each additional segment costs only its own time-list reads plus
per-day set intersections — the unit of work both ES and TBS pay per
probability check.

Direction handling: a two-way road is stored as a pair of directed twin
segments, but a *road* is reachable regardless of which carriageway the
historical taxi used, so the estimator merges a segment's time lists with
its twin's (and caches the result under both ids).  Query results are
therefore road-level, matching the map renderings of Figs 4.2/4.4/4.6.
"""

from __future__ import annotations

from repro.core.st_index import STIndex

#: Departure-window width ``W`` in seconds.  Eq. 3.1 counts trajectories
#: that left ``r0`` "during the first time slot"; tying that window to the
#: index granularity makes *results* depend on Δt (a 1-minute index
#: starves the start set, a 20-minute one inflates it), contradicting the
#: Δt-insensitivity of Figs 4.1(b)/4.7.  Since time lists store per-visit
#: seconds, the departure window can be fixed at the paper's canonical
#: 5-minute slot regardless of the index Δt — Δt then only affects query
#: *cost* (slot reads, bound tightness), exactly as the figures present.
DEPARTURE_WINDOW_S = 300.0


class ProbabilityEstimator:
    """Eq. 3.1 evaluator bound to one query's ``(r0, T, L)``.

    Args:
        index: the ST-Index to read time lists from.
        start_segment: ``r0``.
        start_time_s: ``T``.
        duration_s: ``L``.
        num_days: ``m``, the dataset's day span.
    """

    def __init__(
        self,
        index: STIndex,
        start_segment: int,
        start_time_s: float,
        duration_s: float,
        num_days: int,
    ) -> None:
        if num_days <= 0:
            raise ValueError(f"num_days must be positive, got {num_days}")
        self.index = index
        self.network = index.network
        self.start_segment = start_segment
        self.start_time_s = start_time_s
        self.duration_s = duration_s
        self.num_days = num_days
        self.checks = 0
        self._cache: dict[int, float] = {}
        # Tr(r0, [T, T+min(W, L)], d): trajectories departing the start
        # road in the departure window, per day, read once and reused for
        # every candidate.  The window is truncated to the query window —
        # a departure after T+L cannot contribute to reachability within
        # [T, T+L] — and is independent of the index Δt, so results stay
        # insensitive to the index granularity.
        self._start_sets = self._merged_window(
            start_segment,
            start_time_s,
            start_time_s + min(DEPARTURE_WINDOW_S, duration_s),
        )

    def _twin(self, segment_id: int) -> int | None:
        twin = self.network.segment(segment_id).twin_id
        if twin is not None and self.network.has_segment(twin):
            return twin
        return None

    def _merged_window(
        self, segment_id: int, start_s: float, end_s: float
    ) -> dict[int, set[int]]:
        """Per-day trajectory ids passing the *road* (either direction)."""
        merged = self.index.trajectories_in_window(segment_id, start_s, end_s)
        twin = self._twin(segment_id)
        if twin is not None:
            for date, ids in self.index.trajectories_in_window(
                twin, start_s, end_s
            ).items():
                bucket = merged.get(date)
                if bucket is None:
                    merged[date] = set(ids)
                else:
                    bucket |= ids
        return merged

    @property
    def start_days(self) -> int:
        """Days on which any trajectory left ``r0`` in the first slot."""
        return sum(1 for ids in self._start_sets.values() if ids)

    def probability(self, segment_id: int) -> float:
        """``probability(segment_id, r0)`` per Eq. 3.1 (cached, road-level)."""
        cached = self._cache.get(segment_id)
        if cached is not None:
            return cached
        self.checks += 1
        if not self._start_sets:
            value = 0.0
        else:
            target_sets = self._merged_window(
                segment_id,
                self.start_time_s,
                self.start_time_s + self.duration_s,
            )
            good_days = 0
            for date, start_ids in self._start_sets.items():
                target_ids = target_sets.get(date)
                if target_ids and not start_ids.isdisjoint(target_ids):
                    good_days += 1
            value = good_days / self.num_days
        self._cache[segment_id] = value
        twin = self._twin(segment_id)
        if twin is not None:
            self._cache[twin] = value
        return value

    def is_reachable(self, segment_id: int, prob: float) -> bool:
        """Whether ``segment_id`` meets the query's probability threshold."""
        return self.probability(segment_id) >= prob
