"""Reachability probabilities (Eq. 3.1).

``probability(r, r0) = m*/m`` where ``m*`` counts the days on which some
single trajectory both passed the start segment ``r0`` during the
departure window ``[T, T+min(W, L)]`` (``W`` fixed at the paper's
canonical 5-minute slot, independent of the index Δt) and passed ``r``
during the query window ``[T, T+L]``.  The estimator gathers the start
segment's visits once, as one sorted packed-key array; each additional
segment then costs only its own time-list reads plus one vectorized
membership probe — the unit of work both ES and TBS pay per probability
check.  Waves of candidates (a TBS boundary wave, an ES frontier level)
batch through :meth:`ProbabilityEstimator.probabilities` into a single
kernel call; see :mod:`repro.core.prob_kernel` for the columnar layout
and :mod:`repro.core.legacy_probability` for the preserved scalar path.

Direction handling: a two-way road is stored as a pair of directed twin
segments, but a *road* is reachable regardless of which carriageway the
historical taxi used, so the estimator merges a segment's time lists with
its twin's (and caches the result under both ids).  Query results are
therefore road-level, matching the map renderings of Figs 4.2/4.4/4.6.
"""

from __future__ import annotations

from repro.core.prob_kernel import ColumnarEq31Estimator

#: Departure-window width ``W`` in seconds.  Eq. 3.1 counts trajectories
#: that left ``r0`` "during the first time slot"; tying that window to the
#: index granularity makes *results* depend on Δt (a 1-minute index
#: starves the start set, a 20-minute one inflates it), contradicting the
#: Δt-insensitivity of Figs 4.1(b)/4.7.  Since time lists store per-visit
#: seconds, the departure window can be fixed at the paper's canonical
#: 5-minute slot regardless of the index Δt — Δt then only affects query
#: *cost* (slot reads, bound tightness), exactly as the figures present.
DEPARTURE_WINDOW_S = 300.0


class ProbabilityEstimator(ColumnarEq31Estimator):
    """Eq. 3.1 evaluator bound to one query's ``(r0, T, L)``.

    The fixed side is ``Tr(r0, [T, T+min(W, L)], d)``: trajectories
    departing the start road in the departure window, per day, read once
    and reused for every candidate.  The window is truncated to the query
    window — a departure after T+L cannot contribute to reachability
    within [T, T+L] — and is independent of the index Δt, so results stay
    insensitive to the index granularity.

    Args:
        index: the ST-Index to read time lists from.
        start_segment: ``r0``.
        start_time_s: ``T``.
        duration_s: ``L``.
        num_days: ``m``, the dataset's day span.
    """

    def _fixed_window(self) -> tuple[float, float]:
        return (
            self.start_time_s,
            self.start_time_s + min(DEPARTURE_WINDOW_S, self.duration_s),
        )

    def _candidate_window(self) -> tuple[float, float]:
        return (self.start_time_s, self.start_time_s + self.duration_s)
