"""Index ownership and the classic single-query facade.

:class:`ReachabilityEngine` owns the road network, the trajectory database,
one simulated disk, and per-Δt ST-Index / Con-Index pairs.  It no longer
dispatches algorithms itself: queries are planned by
:mod:`~repro.core.planner` and run by whichever executor the
:mod:`~repro.core.executors` registry holds for the plan — the ``s_query``
/ ``m_query`` / ``r_query`` methods are thin wrappers kept for the classic
one-query-at-a-time call sites.  Batch workloads should go through
:class:`~repro.core.service.QueryService`, which shares bounding-region
computations and warm buffer pools across queries.

Every execution returns a :class:`~repro.core.query.QueryResult` carrying
the Prob-reachable segments and the cost metrics (wall time, simulated disk
I/O, probability checks) the evaluation chapter reports.
"""

from __future__ import annotations

import warnings
import weakref

from repro.core.con_index import ConnectionIndex
from repro.core.executors import execute_plan, executor_names
from repro.core.planner import plan_query
from repro.core.query import MQuery, QueryResult, SQuery
from repro.core.st_index import STIndex
from repro.network.model import RoadNetwork
from repro.storage.disk import SimulatedDisk
from repro.trajectory.store import TrajectoryDatabase


# The classic algorithm tuples are registry lookups now: the module
# attributes S_QUERY_ALGORITHMS / M_QUERY_ALGORITHMS / R_QUERY_ALGORITHMS
# still read as tuples (membership and iteration keep working) but are
# computed from the executor registry at access time, so third-party
# registrations show up automatically.
_ALGORITHM_EXPORTS = {
    "S_QUERY_ALGORITHMS": "s",
    "M_QUERY_ALGORITHMS": "m",
    "R_QUERY_ALGORITHMS": "r",
}


def __getattr__(name: str) -> tuple[str, ...]:
    kind = _ALGORITHM_EXPORTS.get(name)
    if kind is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return executor_names(kind)


class ReachabilityEngine:
    """Build indexes over a dataset and answer ST reachability queries.

    Args:
        network: the (re-segmented) road network.
        database: the cleaned matched-trajectory database.
        disk: shared simulated disk; a private one is created when omitted.
        buffer_pool_pages: page-cache capacity per index.
    """

    def __init__(
        self,
        network: RoadNetwork,
        database: TrajectoryDatabase,
        disk: SimulatedDisk | None = None,
        buffer_pool_pages: int = 1024,
    ) -> None:
        self.network = network
        self.database = database
        # 1 KiB pages keep page counts proportional to time-list sizes, so
        # the I/O asymmetry between dense central segments and sparse
        # boundary segments is visible in the accounting.
        self.disk = disk if disk is not None else SimulatedDisk(page_size=1024)
        self.buffer_pool_pages = buffer_pool_pages
        self._st_indexes: dict[int, STIndex] = {}
        self._con_indexes: dict[int, ConnectionIndex] = {}
        self._data_change_hooks: list = []

    def use_disk(self, disk: SimulatedDisk) -> None:
        """Swap the storage backend before any index is built.

        Lets a caller route all index pages onto a durable
        :class:`~repro.storage.backends.FileBackedDisk` (or any other
        backend honouring the :class:`SimulatedDisk` contract).  Raises
        once indexes exist: they hold extent pointers into the old
        disk's pages, which a new backend cannot serve.
        """
        if self._st_indexes or self._con_indexes:
            raise RuntimeError(
                "cannot swap the disk backend after indexes are built; "
                "swap first or drop_indexes() and rebuild"
            )
        self.disk = disk

    def register_data_change_hook(self, callback) -> None:
        """Call ``callback`` whenever engine-level data/indexes change.

        Services register their region-cache invalidation here (via a
        weak reference, so registering does not pin a service alive), so
        derived caches stay correct even when trajectories are appended
        or indexes dropped directly on the engine rather than through one
        particular service.
        """
        self._data_change_hooks.append(weakref.WeakMethod(callback))

    def _notify_data_change(self) -> None:
        live = []
        for hook in self._data_change_hooks:
            callback = hook()
            if callback is not None:
                callback()
                live.append(hook)
        self._data_change_hooks = live

    # -- index management ------------------------------------------------------

    def st_index(self, delta_t_s: int) -> STIndex:
        """The ST-Index at granularity Δt, built on first use."""
        index = self._st_indexes.get(delta_t_s)
        if index is None:
            index = STIndex(
                self.network,
                delta_t_s,
                disk=self.disk,
                buffer_pool_pages=self.buffer_pool_pages,
            )
            index.build(self.database)
            self._st_indexes[delta_t_s] = index
        return index

    def install_st_index(self, delta_t_s: int, index: STIndex) -> None:
        """Install an externally constructed ST-Index at granularity Δt.

        The restore path for shard workers (:mod:`repro.serving`): a
        partition slice rebuilt via :meth:`~repro.core.st_index.STIndex.restore`
        is dropped in here so :meth:`st_index` serves it instead of
        building from trajectories.  The index must be backed by this
        engine's disk, or the accounting windows would miss its I/O.
        """
        if index.disk is not self.disk:
            raise ValueError("installed ST-Index must share the engine's disk")
        self._st_indexes[delta_t_s] = index

    def con_index(self, delta_t_s: int) -> ConnectionIndex:
        """The Con-Index at granularity Δt, entries built lazily."""
        index = self._con_indexes.get(delta_t_s)
        if index is None:
            index = ConnectionIndex(
                self.network,
                self.database,
                delta_t_s,
                disk=self.disk,
                buffer_pool_pages=self.buffer_pool_pages,
            )
            self._con_indexes[delta_t_s] = index
        return index

    def drop_indexes(self, delta_t_s: int | None = None) -> None:
        """Discard built indexes so they rebuild lazily on next use.

        Args:
            delta_t_s: drop only this granularity's pair, or every built
                index when omitted.
        """
        if delta_t_s is None:
            self._st_indexes.clear()
            self._con_indexes.clear()
        else:
            self._st_indexes.pop(delta_t_s, None)
            self._con_indexes.pop(delta_t_s, None)
        self._notify_data_change()

    def append_trajectories(
        self, trajectories, update_database: bool = True
    ) -> int:
        """Incrementally ingest new matched trajectories.

        Every built ST-Index gains the new time-list records (chained,
        merged at read time — no rebuild), and each built Con-Index drops
        its memoized entries and speed vectors, because the Near/Far
        tables derive from the database's observed speed bounds.

        Args:
            trajectories: iterable of
                :class:`~repro.trajectory.model.MatchedTrajectory`.
            update_database: also add the trajectories to the engine's
                database (pass ``False`` when the caller already did).

        Returns:
            (segment, slot) entries touched across the built ST-Indexes.
        """
        trajectory_list = list(trajectories)
        if update_database:
            for trajectory in trajectory_list:
                self.database.add(trajectory)
        touched = 0
        for index in self._st_indexes.values():
            touched += index.append_trajectories(trajectory_list)
        if trajectory_list:
            for con in self._con_indexes.values():
                con.invalidate_entries()
            self._notify_data_change()
        return touched

    def buffer_pools(self):
        """Every live buffer pool, for cache-effectiveness reporting."""
        for index in self._st_indexes.values():
            yield index.pool
        for index in self._con_indexes.values():
            yield index.pool

    def invalidate_caches(self) -> None:
        """Drop trajectory-data buffer pools so the next query pays cold I/O.

        Connection-index entries stay cached: the Con-Index is a compact
        derived structure (two ID lists per segment-slot) that a deployed
        system keeps memory-resident, whereas the trajectory time lists are
        the massive disk-resident data whose I/O the paper measures.
        """
        for pool in self.buffer_pools():
            pool.invalidate()

    # -- classic single-query facade -------------------------------------------
    #
    # Deprecated shims: the stable entry point is the request/response
    # client (repro.api.ReachabilityClient), which routes through the
    # service-lifetime caches and records its routing decisions.  These
    # wrappers keep the classic one-call-per-query protocol (no shared
    # region cache: every call pays its own expansion) for old call sites.

    def _deprecated(self, name: str) -> None:
        warnings.warn(
            f"ReachabilityEngine.{name} is deprecated; build a "
            "repro.api.Request and answer it with "
            "repro.api.ReachabilityClient.send",
            DeprecationWarning,
            stacklevel=3,
        )

    def s_query(
        self,
        query: SQuery,
        algorithm: str = "sqmb_tbs",
        delta_t_s: int = 300,
        warm: bool = False,
    ) -> QueryResult:
        """Deprecated: answer a single-location ST reachability query.

        Args:
            query: the s-query ``(S, T, L, Prob)``.
            algorithm: a registered s-query algorithm (``"sqmb_tbs"``,
                ``"es"``, ``"es_pruned"``, ...).
            delta_t_s: index granularity Δt in seconds.
            warm: keep buffer pools from previous queries (default: cold,
                so each execution pays its own I/O, matching the paper's
                per-query running-time measurements).
        """
        self._deprecated("s_query")
        plan = plan_query("s", query, algorithm, delta_t_s, warm=warm)
        return execute_plan(self, plan, query)

    def m_query(
        self,
        query: MQuery,
        algorithm: str = "mqmb_tbs",
        delta_t_s: int = 300,
        warm: bool = False,
    ) -> QueryResult:
        """Deprecated: answer a multi-location ST reachability query.

        Args:
            query: the m-query ``({s1..sn}, T, L, Prob)``.
            algorithm: a registered m-query algorithm (``"mqmb_tbs"``,
                ``"sqmb_tbs_each"``, ``"es_each"``, ...).
            delta_t_s: index granularity Δt in seconds.
            warm: as in :meth:`s_query`.
        """
        self._deprecated("m_query")
        plan = plan_query("m", query, algorithm, delta_t_s, warm=warm)
        return execute_plan(self, plan, query)

    def r_query(
        self,
        query: SQuery,
        algorithm: str = "sqmb_tbs",
        delta_t_s: int = 300,
        warm: bool = False,
    ) -> QueryResult:
        """Deprecated: answer a *reverse* reachability query: from which road segments
        can the query location be reached within ``[T, T+L]`` on at least a
        ``Prob`` fraction of days?  This is the dual that the paper's
        location-based-advertising application needs (Fig 1.2).

        Args:
            query: interpreted with ``query.location`` as the destination.
            algorithm: a registered r-query algorithm (``"sqmb_tbs"`` or
                ``"es"``).
            delta_t_s: index granularity Δt in seconds.
            warm: as in :meth:`s_query`.
        """
        self._deprecated("r_query")
        plan = plan_query("r", query, algorithm, delta_t_s, warm=warm)
        return execute_plan(self, plan, query)
