"""The user-facing reachability query engine.

:class:`ReachabilityEngine` owns the road network, the trajectory database,
one simulated disk, and per-Δt ST-Index / Con-Index pairs.  It exposes the
paper's two query types with pluggable algorithms:

* ``s_query`` — ``"sqmb_tbs"`` (the paper's method, Algorithms 1+2) or
  ``"es"`` (the exhaustive-search baseline);
* ``m_query`` — ``"mqmb_tbs"`` (Algorithm 3 + trace-back),
  ``"sqmb_tbs_each"`` (the paper's m-query baseline: one SQMB+TBS per
  location, unioned) or ``"es_each"`` (exhaustive per location).

Every execution returns a :class:`~repro.core.query.QueryResult` carrying
the Prob-reachable segments and the cost metrics (wall time, simulated disk
I/O, probability checks) the evaluation chapter reports.
"""

from __future__ import annotations

import time

from repro.core.baseline import exhaustive_search, exhaustive_search_pruned
from repro.core.con_index import ConnectionIndex
from repro.core.mqmb import mqmb_bounding_region
from repro.core.probability import ProbabilityEstimator
from repro.core.query import (
    BoundingRegion,
    MQuery,
    QueryCost,
    QueryResult,
    SQuery,
)
from repro.core.sqmb import sqmb_bounding_region
from repro.core.st_index import STIndex
from repro.core.tbs import trace_back_search
from repro.network.model import RoadNetwork
from repro.storage.disk import SimulatedDisk
from repro.trajectory.store import TrajectoryDatabase

S_QUERY_ALGORITHMS = ("sqmb_tbs", "es", "es_pruned")
M_QUERY_ALGORITHMS = ("mqmb_tbs", "sqmb_tbs_each", "es_each")


class ReachabilityEngine:
    """Build indexes over a dataset and answer ST reachability queries.

    Args:
        network: the (re-segmented) road network.
        database: the cleaned matched-trajectory database.
        disk: shared simulated disk; a private one is created when omitted.
        buffer_pool_pages: page-cache capacity per index.
    """

    def __init__(
        self,
        network: RoadNetwork,
        database: TrajectoryDatabase,
        disk: SimulatedDisk | None = None,
        buffer_pool_pages: int = 1024,
    ) -> None:
        self.network = network
        self.database = database
        # 1 KiB pages keep page counts proportional to time-list sizes, so
        # the I/O asymmetry between dense central segments and sparse
        # boundary segments is visible in the accounting.
        self.disk = disk if disk is not None else SimulatedDisk(page_size=1024)
        self.buffer_pool_pages = buffer_pool_pages
        self._st_indexes: dict[int, STIndex] = {}
        self._con_indexes: dict[int, ConnectionIndex] = {}

    # -- index management ------------------------------------------------------

    def st_index(self, delta_t_s: int) -> STIndex:
        """The ST-Index at granularity Δt, built on first use."""
        index = self._st_indexes.get(delta_t_s)
        if index is None:
            index = STIndex(
                self.network,
                delta_t_s,
                disk=self.disk,
                buffer_pool_pages=self.buffer_pool_pages,
            )
            index.build(self.database)
            self._st_indexes[delta_t_s] = index
        return index

    def con_index(self, delta_t_s: int) -> ConnectionIndex:
        """The Con-Index at granularity Δt, entries built lazily."""
        index = self._con_indexes.get(delta_t_s)
        if index is None:
            index = ConnectionIndex(
                self.network,
                self.database,
                delta_t_s,
                disk=self.disk,
                buffer_pool_pages=self.buffer_pool_pages,
            )
            self._con_indexes[delta_t_s] = index
        return index

    def invalidate_caches(self) -> None:
        """Drop trajectory-data buffer pools so the next query pays cold I/O.

        Connection-index entries stay cached: the Con-Index is a compact
        derived structure (two ID lists per segment-slot) that a deployed
        system keeps memory-resident, whereas the trajectory time lists are
        the massive disk-resident data whose I/O the paper measures.
        """
        for index in self._st_indexes.values():
            index.pool.invalidate()
        for index in self._con_indexes.values():
            index.pool.invalidate()

    # -- s-query -----------------------------------------------------------------

    def s_query(
        self,
        query: SQuery,
        algorithm: str = "sqmb_tbs",
        delta_t_s: int = 300,
        warm: bool = False,
    ) -> QueryResult:
        """Answer a single-location ST reachability query.

        Args:
            query: the s-query ``(S, T, L, Prob)``.
            algorithm: ``"sqmb_tbs"`` or ``"es"``.
            delta_t_s: index granularity Δt in seconds.
            warm: keep buffer pools from previous queries (default: cold,
                so each execution pays its own I/O, matching the paper's
                per-query running-time measurements).
        """
        if algorithm not in S_QUERY_ALGORITHMS:
            raise ValueError(f"unknown s-query algorithm {algorithm!r}")
        st = self.st_index(delta_t_s)
        if not warm:
            self.invalidate_caches()
        before = self.disk.snapshot()
        started = time.perf_counter()
        start_segment = st.find_start_segment(query.location)
        estimator = ProbabilityEstimator(
            st,
            start_segment,
            query.start_time_s,
            query.duration_s,
            self.database.num_days,
        )
        result = QueryResult(start_segments=(start_segment,))
        if estimator.start_days == 0:
            # No trajectory ever left r0 in the first slot: nothing is
            # Prob-reachable for any Prob > 0.
            self._finish(result, before, started, [estimator], examined=0)
            return result
        if algorithm in ("es", "es_pruned"):
            search = (
                exhaustive_search if algorithm == "es" else exhaustive_search_pruned
            )
            es = search(self.network, estimator, query.prob)
            result.segments = es.region
            result.probabilities = es.probabilities
            self._finish(result, before, started, [estimator], es.examined)
            return result
        con = self.con_index(delta_t_s)
        max_region = sqmb_bounding_region(
            con, start_segment, query.start_time_s, query.duration_s, "far"
        )
        min_region = sqmb_bounding_region(
            con, start_segment, query.start_time_s, query.duration_s, "near"
        )
        tbs = trace_back_search(
            self.network,
            {start_segment: estimator},
            query.prob,
            max_region,
            min_region,
        )
        result.segments = tbs.region
        result.probabilities = tbs.probabilities
        result.max_region = max_region
        result.min_region = min_region
        self._finish(result, before, started, [estimator], tbs.examined)
        return result

    # -- m-query -----------------------------------------------------------------

    def m_query(
        self,
        query: MQuery,
        algorithm: str = "mqmb_tbs",
        delta_t_s: int = 300,
        warm: bool = False,
    ) -> QueryResult:
        """Answer a multi-location ST reachability query.

        Args:
            query: the m-query ``({s1..sn}, T, L, Prob)``.
            algorithm: ``"mqmb_tbs"``, ``"sqmb_tbs_each"`` or ``"es_each"``.
            delta_t_s: index granularity Δt in seconds.
            warm: as in :meth:`s_query`.
        """
        if algorithm not in M_QUERY_ALGORITHMS:
            raise ValueError(f"unknown m-query algorithm {algorithm!r}")
        if algorithm in ("sqmb_tbs_each", "es_each"):
            return self._m_query_naive(query, algorithm, delta_t_s, warm)
        st = self.st_index(delta_t_s)
        con = self.con_index(delta_t_s)
        if not warm:
            self.invalidate_caches()
        before = self.disk.snapshot()
        started = time.perf_counter()
        start_segments = list(
            dict.fromkeys(
                st.find_start_segment(location) for location in query.locations
            )
        )
        estimators = {
            seed: ProbabilityEstimator(
                st, seed, query.start_time_s, query.duration_s,
                self.database.num_days,
            )
            for seed in start_segments
        }
        result = QueryResult(start_segments=tuple(start_segments))
        live = {
            seed: est for seed, est in estimators.items() if est.start_days > 0
        }
        if not live:
            self._finish(result, before, started, list(estimators.values()), 0)
            return result
        seeds = list(live)
        max_region = mqmb_bounding_region(
            con, seeds, query.start_time_s, query.duration_s, "far"
        )
        min_region = mqmb_bounding_region(
            con, seeds, query.start_time_s, query.duration_s, "near"
        )
        tbs = trace_back_search(
            self.network, live, query.prob, max_region, min_region
        )
        result.segments = tbs.region
        result.probabilities = tbs.probabilities
        result.max_region = max_region
        result.min_region = min_region
        self._finish(
            result, before, started, list(estimators.values()), tbs.examined
        )
        return result

    # -- reverse query -----------------------------------------------------------

    def r_query(
        self,
        query: SQuery,
        algorithm: str = "sqmb_tbs",
        delta_t_s: int = 300,
        warm: bool = False,
    ) -> QueryResult:
        """Answer a *reverse* reachability query: from which road segments
        can the query location be reached within ``[T, T+L]`` on at least a
        ``Prob`` fraction of days?  This is the dual that the paper's
        location-based-advertising application needs (Fig 1.2).

        Args:
            query: interpreted with ``query.location`` as the destination.
            algorithm: ``"sqmb_tbs"`` (reverse bounds + trace-back) or
                ``"es"`` (verify the whole road network).
            delta_t_s: index granularity Δt in seconds.
            warm: as in :meth:`s_query`.
        """
        from repro.core.reverse import (
            ReverseProbabilityEstimator,
            reverse_bounding_region,
            reverse_exhaustive_search,
        )

        if algorithm not in ("sqmb_tbs", "es"):
            raise ValueError(f"unknown r-query algorithm {algorithm!r}")
        st = self.st_index(delta_t_s)
        if not warm:
            self.invalidate_caches()
        before = self.disk.snapshot()
        started = time.perf_counter()
        target = st.find_start_segment(query.location)
        estimator = ReverseProbabilityEstimator(
            st, target, query.start_time_s, query.duration_s,
            self.database.num_days,
        )
        result = QueryResult(start_segments=(target,))
        if estimator.start_days == 0:
            self._finish(result, before, started, [estimator], examined=0)
            return result
        if algorithm == "es":
            es = reverse_exhaustive_search(self.network, estimator, query.prob)
            result.segments = es.region
            result.probabilities = es.probabilities
            self._finish(result, before, started, [estimator], es.examined)
            return result
        con = self.con_index(delta_t_s)
        max_region = reverse_bounding_region(
            con, target, query.start_time_s, query.duration_s, "far"
        )
        min_region = reverse_bounding_region(
            con, target, query.start_time_s, query.duration_s, "near"
        )
        tbs = trace_back_search(
            self.network, {target: estimator}, query.prob,
            max_region, min_region,
        )
        result.segments = tbs.region
        result.probabilities = tbs.probabilities
        result.max_region = max_region
        result.min_region = min_region
        self._finish(result, before, started, [estimator], tbs.examined)
        return result

    def _m_query_naive(
        self, query: MQuery, algorithm: str, delta_t_s: int, warm: bool
    ) -> QueryResult:
        """n independent s-queries, unioned (the paper's m-query baseline)."""
        sub_algorithm = "sqmb_tbs" if algorithm == "sqmb_tbs_each" else "es"
        if not warm:
            self.invalidate_caches()
        before = self.disk.snapshot()
        started = time.perf_counter()
        merged = QueryResult()
        starts: list[int] = []
        checks = 0
        examined = 0
        for sub_query in query.as_s_queries():
            # Each sub-query is an independent s-query (the whole point of
            # the baseline): it pays its own cold I/O, including re-reading
            # whatever overlaps earlier sub-queries already fetched.
            sub = self.s_query(
                sub_query, algorithm=sub_algorithm, delta_t_s=delta_t_s,
                warm=warm,
            )
            merged.segments |= sub.segments
            merged.probabilities.update(sub.probabilities)
            starts.extend(sub.start_segments)
            checks += sub.cost.probability_checks
            examined += sub.cost.segments_expanded
        merged.start_segments = tuple(dict.fromkeys(starts))
        diff = self.disk.snapshot() - before
        merged.cost = QueryCost(
            wall_time_s=time.perf_counter() - started,
            io=diff,
            # Reads only: page writes can only stem from lazy index
            # construction, which is offline work in the paper's model.
            simulated_io_ms=diff.page_reads * self.disk.read_latency_ms,
            probability_checks=checks,
            segments_expanded=examined,
        )
        return merged

    # -- internals -------------------------------------------------------------------

    def _finish(
        self,
        result: QueryResult,
        before,
        started: float,
        estimators: list[ProbabilityEstimator],
        examined: int,
    ) -> None:
        diff = self.disk.snapshot() - before
        result.cost = QueryCost(
            wall_time_s=time.perf_counter() - started,
            io=diff,
            # Reads only: page writes can only stem from lazy index
            # construction, which is offline work in the paper's model.
            simulated_io_ms=diff.page_reads * self.disk.read_latency_ms,
            probability_checks=sum(e.checks for e in estimators),
            segments_expanded=examined,
        )
