"""Pre-processing (§3.1): road re-segmentation + trajectory map matching."""

from repro.preprocessing.pipeline import PreprocessingPipeline, PipelineReport

__all__ = ["PreprocessingPipeline", "PipelineReport"]
