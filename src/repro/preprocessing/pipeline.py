"""The §3.1 pre-processing pipeline.

Converts raw trajectory data into the cleaned, map-matched trajectory
database on a re-segmented road network:

1. **Road re-segmentation** — chop long roads at the spatial granularity;
2. **Map matching** — snap raw GPS sequences onto the new network and emit
   segment-visit events with entry times and speeds.

This is the offline half of the framework of Fig. 2.2; the synthetic
benchmark datasets bypass it (their trajectories are born matched), but the
pipeline is exercised end-to-end by tests and the quickstart example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.network.model import RoadNetwork
from repro.network.segmentation import ResegmentationResult, resegment
from repro.trajectory.map_matching import MapMatcher, MatcherConfig
from repro.trajectory.model import RawTrajectory
from repro.trajectory.store import TrajectoryDatabase


@dataclass
class PipelineReport:
    """What the pipeline did, for logging and tests."""

    segments_before: int = 0
    segments_after: int = 0
    trajectories_in: int = 0
    trajectories_matched: int = 0
    points_in: int = 0
    visits_out: int = 0
    dropped_empty: int = 0


class PreprocessingPipeline:
    """Re-segment a network, then map-match raw trajectories onto it.

    Args:
        network: the original road network.
        granularity_m: re-segmentation granularity (paper example: 500 m).
        matcher_config: map-matcher tuning.
    """

    def __init__(
        self,
        network: RoadNetwork,
        granularity_m: float = 500.0,
        matcher_config: MatcherConfig | None = None,
    ) -> None:
        self.original_network = network
        self.resegmentation: ResegmentationResult = resegment(
            network, granularity=granularity_m
        )
        self.network = self.resegmentation.network
        self.matcher = MapMatcher(self.network, config=matcher_config)
        self.report = PipelineReport(
            segments_before=network.num_segments,
            segments_after=self.network.num_segments,
        )

    def run(
        self,
        raw_trajectories: Iterable[RawTrajectory],
        num_taxis: int,
        num_days: int,
    ) -> TrajectoryDatabase:
        """Match every raw trajectory and return the cleaned database.

        Trajectories that match to no segments at all (e.g. all points fell
        outside the candidate radius) are dropped, and counted in the
        report.
        """
        database = TrajectoryDatabase(num_taxis=num_taxis, num_days=num_days)
        for raw in raw_trajectories:
            self.report.trajectories_in += 1
            self.report.points_in += len(raw.points)
            matched = self.matcher.match(raw)
            if not matched.visits:
                self.report.dropped_empty += 1
                continue
            matched.check_monotone()
            database.add(matched)
            self.report.trajectories_matched += 1
            self.report.visits_out += len(matched.visits)
        database.finalize()
        return database
