"""Time-of-day speed profiles with rush-hour congestion.

The paper's Figures 4.5/4.6 hinge on traffic dynamics: "at around 7am and
6pm, the running time drops significantly ... The traffic condition goes
down during these rush hours, which leads to smaller reachable regions".
This module produces exactly that structure for the synthetic fleet: a
smooth congestion factor over the day with deep dips at the morning and
evening rush hours, free-flow speeds by road level, and per-sample noise.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.network.model import RoadLevel
from repro.trajectory.model import SECONDS_PER_DAY


#: Free-flow speeds (metres/second) by road level.
DEFAULT_FREE_FLOW_MPS: dict[RoadLevel, float] = {
    RoadLevel.PRIMARY: 16.7,  # ~60 km/h arterials
    RoadLevel.SECONDARY: 8.3,  # ~30 km/h local roads
}


@dataclass(frozen=True)
class RushHour:
    """One congestion dip: a Gaussian well in the speed factor."""

    center_s: float
    width_s: float
    depth: float  # 0 < depth < 1; factor bottoms out at (1 - depth)

    def factor_at(self, time_s: float) -> float:
        z = (time_s - self.center_s) / self.width_s
        return 1.0 - self.depth * math.exp(-0.5 * z * z)


@dataclass
class SpeedProfile:
    """Deterministic time-of-day speed model.

    ``speed(level, time_s)`` returns the typical travel speed for a road of
    ``level`` at ``time_s`` seconds after midnight; :meth:`sample_speed`
    adds lognormal-ish noise from a caller-supplied RNG so different
    taxis/days observe different speeds (which is what gives the Con-Index
    distinct Near/Far bounds).

    Attributes:
        free_flow_mps: free-flow speed per road level.
        rush_hours: congestion dips (defaults: 07:45 and 18:00).
        night_boost: multiplicative bonus in the dead of night.
        noise_sigma: std-dev of the multiplicative noise (lognormal scale).
    """

    free_flow_mps: dict[RoadLevel, float] = field(
        default_factory=lambda: dict(DEFAULT_FREE_FLOW_MPS)
    )
    rush_hours: list[RushHour] = field(
        default_factory=lambda: [
            RushHour(center_s=7.75 * 3600, width_s=3600.0, depth=0.60),
            RushHour(center_s=18.0 * 3600, width_s=3900.0, depth=0.65),
        ]
    )
    night_boost: float = 1.15
    noise_sigma: float = 0.18

    def congestion_factor(self, time_s: float) -> float:
        """Speed multiplier in (0, night_boost]; dips during rush hours."""
        t = time_s % SECONDS_PER_DAY
        factor = 1.0
        for rush in self.rush_hours:
            # Wrap-around: evaluate the dip at t, t±day so 23:59 feels an
            # early-morning rush if one straddles midnight.
            f = min(
                rush.factor_at(t),
                rush.factor_at(t - SECONDS_PER_DAY),
                rush.factor_at(t + SECONDS_PER_DAY),
            )
            factor = min(factor, f)
        # Late night (00:00-05:00) enjoys a mild boost, tapering linearly.
        if t < 5 * 3600:
            night = self.night_boost - (self.night_boost - 1.0) * (t / (5 * 3600))
            factor *= night
        return factor

    def speed(self, level: RoadLevel, time_s: float) -> float:
        """Typical (noise-free) speed for a road level at a time of day."""
        return self.free_flow_mps[level] * self.congestion_factor(time_s)

    def sample_speed(
        self, level: RoadLevel, time_s: float, rng: random.Random
    ) -> float:
        """One noisy speed observation (always > 0.5 m/s).

        The paper's Near list removes zero speeds (§3.2.2); we floor samples
        at 0.5 m/s so stationary GPS glitches never poison min-speed stats.
        """
        base = self.speed(level, time_s)
        noise = math.exp(rng.gauss(0.0, self.noise_sigma))
        return max(0.5, base * noise)

    def speed_bounds(
        self, level: RoadLevel, time_s: float, spread: float = 2.0
    ) -> tuple[float, float]:
        """Analytic (min, max) speed envelope at ``spread`` noise sigmas.

        Handy for tests that need ground truth without sampling.
        """
        base = self.speed(level, time_s)
        low = max(0.5, base * math.exp(-spread * self.noise_sigma))
        high = base * math.exp(spread * self.noise_sigma)
        return low, high
