"""The cleaned trajectory database.

Holds the map-matched trajectories that pre-processing emits and index
construction consumes, plus the aggregate statistics the paper reports in
Table 4.1 (taxis, days, record counts).  Per-segment per-hour speed
statistics — the raw material for the Con-Index's Near/Far bounds — are
computed in one vectorised pass at :meth:`finalize`.

Trajectories are stored *compactly* (numpy arrays per taxi-day) because the
synthetic fleet produces millions of segment visits; :meth:`__iter__`
reconstructs :class:`~repro.trajectory.model.MatchedTrajectory` objects
lazily for convenience, while index construction uses the zero-copy
:meth:`iter_compact` path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.trajectory.model import MatchedTrajectory, SegmentVisit

HOURS_PER_DAY = 24


@dataclass(frozen=True)
class SpeedStats:
    """Observed min/max/mean speed for one (segment, hour-of-day) bucket."""

    min_mps: float
    max_mps: float
    mean_mps: float
    count: int


@dataclass
class DatasetStats:
    """Aggregate dataset description (cf. Table 4.1)."""

    num_taxis: int = 0
    num_days: int = 0
    num_trajectories: int = 0
    num_visits: int = 0

    def as_rows(self) -> list[tuple[str, str]]:
        return [
            ("Number of taxis", f"{self.num_taxis:,} unique taxis"),
            ("Duration", f"{self.num_days} days"),
            ("Number of trajectories", f"{self.num_trajectories:,}"),
            ("Number of segment-visit records", f"{self.num_visits:,}"),
        ]


@dataclass
class _CompactTrajectory:
    trajectory_id: int
    taxi_id: int
    date: int
    segments: np.ndarray  # int32
    times: np.ndarray  # float64 seconds since midnight
    speeds: np.ndarray  # float32 m/s


class TrajectoryDatabase:
    """Matched-trajectory store with vectorised speed statistics.

    Args:
        num_taxis: fleet size (trajectory-id codec parameter).
        num_days: dataset span ``m`` — the denominator of Eq. 3.1.
    """

    def __init__(self, num_taxis: int, num_days: int) -> None:
        if num_taxis <= 0 or num_days <= 0:
            raise ValueError("num_taxis and num_days must be positive")
        self.num_taxis = num_taxis
        self.num_days = num_days
        self._trajectories: dict[int, _CompactTrajectory] = {}
        self._stats_min: dict[int, float] = {}
        self._stats_max: dict[int, float] = {}
        self._stats_sum: dict[int, float] = {}
        self._stats_count: dict[int, int] = {}
        self._finalized = False

    # -- ingestion ------------------------------------------------------------

    def add(self, trajectory: MatchedTrajectory) -> None:
        """Ingest one matched trajectory (compacted immediately)."""
        if trajectory.trajectory_id in self._trajectories:
            raise ValueError(f"duplicate trajectory id {trajectory.trajectory_id}")
        if not 0 <= trajectory.date < self.num_days:
            raise ValueError(
                f"trajectory date {trajectory.date} outside [0, {self.num_days})"
            )
        visits = trajectory.visits
        compact = _CompactTrajectory(
            trajectory_id=trajectory.trajectory_id,
            taxi_id=trajectory.taxi_id,
            date=trajectory.date,
            segments=np.fromiter(
                (v.segment_id for v in visits), dtype=np.int32, count=len(visits)
            ),
            times=np.fromiter(
                (v.time_s for v in visits), dtype=np.float64, count=len(visits)
            ),
            speeds=np.fromiter(
                (v.speed_mps for v in visits), dtype=np.float32, count=len(visits)
            ),
        )
        self._trajectories[trajectory.trajectory_id] = compact
        self._finalized = False

    def add_all(self, trajectories: Iterable[MatchedTrajectory]) -> None:
        for trajectory in trajectories:
            self.add(trajectory)

    def add_arrays(
        self,
        trajectory_id: int,
        taxi_id: int,
        date: int,
        segments,
        times,
        speeds,
    ) -> None:
        """Fast ingestion path from parallel sequences (no visit objects)."""
        if trajectory_id in self._trajectories:
            raise ValueError(f"duplicate trajectory id {trajectory_id}")
        if not 0 <= date < self.num_days:
            raise ValueError(f"trajectory date {date} outside [0, {self.num_days})")
        self._trajectories[trajectory_id] = _CompactTrajectory(
            trajectory_id=trajectory_id,
            taxi_id=taxi_id,
            date=date,
            segments=np.asarray(segments, dtype=np.int32),
            times=np.asarray(times, dtype=np.float64),
            speeds=np.asarray(speeds, dtype=np.float32),
        )
        self._finalized = False

    def finalize(self) -> None:
        """Recompute speed statistics in one vectorised pass (idempotent)."""
        if self._finalized:
            return
        self._stats_min.clear()
        self._stats_max.clear()
        self._stats_sum.clear()
        self._stats_count.clear()
        seg_parts = []
        hour_parts = []
        speed_parts = []
        for compact in self._trajectories.values():
            if len(compact.segments) == 0:
                continue
            seg_parts.append(compact.segments.astype(np.int64))
            hour_parts.append(
                (compact.times // 3600).astype(np.int64) % HOURS_PER_DAY
            )
            speed_parts.append(compact.speeds.astype(np.float64))
        if not seg_parts:
            self._finalized = True
            return
        segments = np.concatenate(seg_parts)
        hours = np.concatenate(hour_parts)
        speeds = np.concatenate(speed_parts)
        positive = speeds > 0  # paper: zero speeds removed from statistics
        segments, hours, speeds = segments[positive], hours[positive], speeds[positive]
        keys = segments * HOURS_PER_DAY + hours
        order = np.argsort(keys, kind="stable")
        keys, speeds = keys[order], speeds[order]
        unique_keys, starts = np.unique(keys, return_index=True)
        mins = np.minimum.reduceat(speeds, starts)
        maxs = np.maximum.reduceat(speeds, starts)
        sums = np.add.reduceat(speeds, starts)
        counts = np.diff(np.append(starts, len(speeds)))
        self._stats_min = dict(zip(unique_keys.tolist(), mins.tolist()))
        self._stats_max = dict(zip(unique_keys.tolist(), maxs.tolist()))
        self._stats_sum = dict(zip(unique_keys.tolist(), sums.tolist()))
        self._stats_count = dict(zip(unique_keys.tolist(), counts.tolist()))
        self._finalized = True

    def extend_days(self, new_num_days: int) -> None:
        """Grow the dataset's day span (for incrementally appended data).

        ``num_days`` is the denominator ``m`` of Eq. 3.1, so extending it
        changes every probability; it can only grow.
        """
        if new_num_days < self.num_days:
            raise ValueError(
                f"cannot shrink num_days from {self.num_days} to {new_num_days}"
            )
        self.num_days = new_num_days

    # -- access -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._trajectories)

    def __iter__(self) -> Iterator[MatchedTrajectory]:
        for compact in self._trajectories.values():
            yield self._inflate(compact)

    def get(self, trajectory_id: int) -> MatchedTrajectory | None:
        compact = self._trajectories.get(trajectory_id)
        return self._inflate(compact) if compact is not None else None

    def iter_compact(
        self,
    ) -> Iterator[tuple[int, int, np.ndarray, np.ndarray]]:
        """Fast path: yield ``(trajectory_id, date, segments, times)``."""
        for compact in self._trajectories.values():
            yield (
                compact.trajectory_id,
                compact.date,
                compact.segments,
                compact.times,
            )

    @staticmethod
    def _inflate(compact: _CompactTrajectory) -> MatchedTrajectory:
        visits = [
            SegmentVisit(int(s), float(t), float(v))
            for s, t, v in zip(compact.segments, compact.times, compact.speeds)
        ]
        return MatchedTrajectory(
            trajectory_id=compact.trajectory_id,
            taxi_id=compact.taxi_id,
            date=compact.date,
            visits=visits,
        )

    # -- speed statistics -----------------------------------------------------------

    def speed_stats(self, segment_id: int, hour: int) -> SpeedStats | None:
        """Observed stats for a segment at an hour of day, if any."""
        self.finalize()
        key = segment_id * HOURS_PER_DAY + (hour % HOURS_PER_DAY)
        count = self._stats_count.get(key)
        if not count:
            return None
        return SpeedStats(
            min_mps=self._stats_min[key],
            max_mps=self._stats_max[key],
            mean_mps=self._stats_sum[key] / count,
            count=int(count),
        )

    def observed_speed_bounds(
        self, segment_id: int, time_s: float
    ) -> tuple[float, float] | None:
        """(min, max) observed speed for the hour containing ``time_s``.

        Falls back to the neighbouring hours so sparsely travelled segments
        still get bounds (the paper's 21k-taxi fleet is dense enough to
        avoid this; small synthetic fleets are not).  Returns None for a
        segment with no observations at all near that hour.
        """
        self.finalize()
        hour = int(time_s // 3600) % HOURS_PER_DAY
        lo = float("inf")
        hi = 0.0
        found = False
        for probe in (hour, (hour - 1) % 24, (hour + 1) % 24):
            key = segment_id * HOURS_PER_DAY + probe
            if self._stats_count.get(key):
                lo = min(lo, self._stats_min[key])
                hi = max(hi, self._stats_max[key])
                found = True
            if found and probe == hour:
                # the exact hour has data; neighbours not needed
                break
        if not found:
            return None
        return lo, hi

    def max_observed_speed_mps(self) -> float:
        """The fastest observed speed anywhere in the dataset.

        The conservative ``v_max`` for halo sizing in the sharded serving
        layer (:mod:`repro.serving`): no expansion can outrun the fastest
        speed any estimator will ever use.  Returns 0.0 for an empty
        dataset.
        """
        self.finalize()
        return max(self._stats_max.values(), default=0.0)

    def export_speed_model(
        self, segment_ids: Iterable[int] | None = None
    ) -> dict:
        """Extract the finalized per-(segment, hour) speed statistics.

        The Con-Index derives entirely from :meth:`observed_speed_bounds`
        plus the network topology, and every executor reads only
        ``num_days`` — so a worker process can serve queries from this
        statistics-only payload without shipping raw trajectories.

        Args:
            segment_ids: restrict the export to these segments (None:
                everything).  Statistics for a kept segment are exported
                for all 24 hours.

        Returns:
            A picklable dict for :meth:`from_speed_model`.
        """
        self.finalize()
        if segment_ids is None:
            keep = None
        else:
            keep = set(segment_ids)

        def _filter(stats: dict) -> dict:
            if keep is None:
                return dict(stats)
            return {
                key: value
                for key, value in stats.items()
                if key // HOURS_PER_DAY in keep
            }

        return {
            "num_taxis": self.num_taxis,
            "num_days": self.num_days,
            "num_trajectories": len(self._trajectories),
            "stats_min": _filter(self._stats_min),
            "stats_max": _filter(self._stats_max),
            "stats_sum": _filter(self._stats_sum),
            "stats_count": _filter(self._stats_count),
        }

    @classmethod
    def from_speed_model(cls, model: dict) -> "TrajectoryDatabase":
        """Rebuild a statistics-only database from :meth:`export_speed_model`.

        The result answers :meth:`speed_stats` / :meth:`observed_speed_bounds`
        and carries ``num_days`` (Eq. 3.1's ``m``) identically to the
        source, but holds no trajectories — :meth:`__iter__` is empty and
        adding new data would wrongly reset the imported statistics, so
        ingestion is not supported on a restored instance.
        """
        database = cls(num_taxis=model["num_taxis"], num_days=model["num_days"])
        database._stats_min = dict(model["stats_min"])
        database._stats_max = dict(model["stats_max"])
        database._stats_sum = dict(model["stats_sum"])
        database._stats_count = dict(model["stats_count"])
        database._finalized = True
        return database

    def stats(self) -> DatasetStats:
        return DatasetStats(
            num_taxis=self.num_taxis,
            num_days=self.num_days,
            num_trajectories=len(self._trajectories),
            num_visits=sum(
                len(c.segments) for c in self._trajectories.values()
            ),
        )
