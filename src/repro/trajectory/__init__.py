"""Trajectory substrate.

Models GPS trajectories (§2.1), generates a synthetic taxi fleet standing in
for the Shenzhen dataset (Table 4.1), map-matches raw GPS onto the
re-segmented network (§3.1, in the spirit of the interactive-voting matcher
[29]), and stores the cleaned matched-trajectory database that index
construction consumes.
"""

from repro.trajectory.model import (
    GPSPoint,
    MatchedTrajectory,
    RawTrajectory,
    SegmentVisit,
    day_time,
    make_trajectory_id,
)
from repro.trajectory.speed_profile import SpeedProfile
from repro.trajectory.generator import FleetConfig, TaxiFleetGenerator
from repro.trajectory.map_matching import MapMatcher
from repro.trajectory.store import TrajectoryDatabase

__all__ = [
    "GPSPoint",
    "RawTrajectory",
    "SegmentVisit",
    "MatchedTrajectory",
    "day_time",
    "make_trajectory_id",
    "SpeedProfile",
    "TaxiFleetGenerator",
    "FleetConfig",
    "MapMatcher",
    "TrajectoryDatabase",
]
