"""Synthetic taxi-fleet trajectory generator.

Stand-in for the Shenzhen dataset (Table 4.1): a fleet of taxis, each
producing *one trajectory per day* (§3.1), driving purposeful trips through
the road network.  Two movement models:

* ``"trips"`` (default) — each taxi repeatedly picks a destination (biased
  toward the city centre, where real taxi demand concentrates) and follows
  the shortest-time route there, with short idle gaps between trips.
  Purposeful routing is what makes historical reach *ballistic* — a taxi
  passing a segment keeps going outward — which is the geometric property
  the Con-Index's Far bounds rely on.
* ``"walk"`` — a speed-weighted random walk; cheaper, diffusive reach; kept
  for unit tests and ablations.

Speeds come from the time-of-day
:class:`~repro.trajectory.speed_profile.SpeedProfile` (rush-hour dips), with
two noise components: tight lognormal jitter, and an occasional *slow
traversal* (traffic light, passenger pickup).  The slow tail is what keeps
the minimum observed speeds — and therefore the Con-Index Near bounds —
far below the typical speeds, exactly as in real traffic.

The generator can emit both ground-truth matched trajectories (consumed
directly by index construction) and raw ~30-second GPS samples (used to
exercise the §3.1 map-matching pipeline).
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.network.model import RoadLevel, RoadNetwork
from repro.spatial.geometry import interpolate_along
from repro.trajectory.model import (
    SECONDS_PER_DAY,
    GPSPoint,
    MatchedTrajectory,
    RawTrajectory,
    SegmentVisit,
    make_trajectory_id,
)
from repro.trajectory.speed_profile import SpeedProfile


@dataclass
class FleetConfig:
    """Knobs for the synthetic fleet.

    Attributes:
        num_taxis: taxis in the fleet (21,385 in the paper; far fewer here).
        num_days: days of data (30 in the paper).
        seed: master RNG seed; everything downstream is deterministic.
        mode: ``"trips"`` (shortest-path trips) or ``"walk"`` (random walk).
        gps_interval_s: raw GPS sampling period (~30 s in the paper).
        day_start_s / day_end_s: active window of each taxi-day; narrowing
            it bounds generation cost for tests.
        primary_preference: walk mode only — junction preference for
            primary roads (1.0 = indifferent).
        center_bias: walk mode — preference for turns toward downtown;
            trips mode — strength of the centre bias in origin/destination
            sampling (larger = more concentrated downtown).
        idle_mean_s: trips mode — mean idle gap between trips.
        dest_uniform_mix: trips mode — fraction of destinations drawn
            uniformly (so the periphery still sees traffic).
        taxi_speed_sigma: per-taxi persistent speed factor (driver style).
        slow_prob: probability a traversal is a slow one (light/pickup).
        slow_range: multiplicative speed factor range for slow traversals.
    """

    num_taxis: int = 40
    num_days: int = 30
    seed: int = 42
    mode: str = "trips"
    gps_interval_s: float = 30.0
    day_start_s: float = 0.0
    day_end_s: float = float(SECONDS_PER_DAY)
    primary_preference: float = 3.0
    center_bias: float = 2.5
    idle_mean_s: float = 180.0
    dest_uniform_mix: float = 0.25
    taxi_speed_sigma: float = 0.05
    slow_prob: float = 0.08
    slow_range: tuple[float, float] = (0.2, 0.45)

    def __post_init__(self) -> None:
        if self.num_taxis <= 0 or self.num_days <= 0:
            raise ValueError("fleet needs >= 1 taxi and >= 1 day")
        if not 0 <= self.day_start_s < self.day_end_s <= SECONDS_PER_DAY:
            raise ValueError(
                f"bad active window [{self.day_start_s}, {self.day_end_s}]"
            )
        if self.mode not in ("trips", "walk"):
            raise ValueError(f"unknown fleet mode {self.mode!r}")
        if not 0 <= self.slow_prob < 1:
            raise ValueError(f"slow_prob must be in [0, 1), got {self.slow_prob}")


class TaxiFleetGenerator:
    """Generates matched (and optionally raw) taxi trajectories.

    Args:
        network: the (re-segmented) road network to drive on.
        profile: time-of-day speed model.
        config: fleet parameters.
    """

    def __init__(
        self,
        network: RoadNetwork,
        profile: SpeedProfile | None = None,
        config: FleetConfig | None = None,
    ) -> None:
        self.network = network
        self.profile = profile if profile is not None else SpeedProfile()
        self.config = config if config is not None else FleetConfig()
        self._segment_ids = sorted(network.segment_ids())
        if not self._segment_ids:
            raise ValueError("cannot generate trajectories on an empty network")
        self._index_of = {sid: i for i, sid in enumerate(self._segment_ids)}
        self._successors: dict[int, list[int]] = {
            sid: network.successors(sid) for sid in self._segment_ids
        }
        self._length: dict[int, float] = {
            sid: network.segment(sid).length for sid in self._segment_ids
        }
        self._level: dict[int, RoadLevel] = {
            sid: network.segment(sid).level for sid in self._segment_ids
        }
        self._free_flow: dict[int, float] = {
            sid: self.profile.free_flow_mps[self._level[sid]]
            for sid in self._segment_ids
        }
        # Per-minute congestion table; the analytic profile is smooth at
        # that resolution and table lookups keep the hot loop cheap.
        self._factor_table = [
            self.profile.congestion_factor(minute * 60.0) for minute in range(1441)
        ]
        if self.config.mode == "trips":
            self._prepare_trips()
        else:
            self._prepare_walk()

    # -- public API -------------------------------------------------------

    def generate_matched(self) -> Iterator[MatchedTrajectory]:
        """Yield one matched trajectory per taxi-day, deterministic order."""
        for date in range(self.config.num_days):
            for taxi_id in range(self.config.num_taxis):
                yield self._one_day(taxi_id, date)

    def generate_raw(self) -> Iterator[tuple[RawTrajectory, MatchedTrajectory]]:
        """Yield (raw GPS, ground-truth matched) pairs per taxi-day."""
        for date in range(self.config.num_days):
            for taxi_id in range(self.config.num_taxis):
                matched = self._one_day(taxi_id, date)
                yield self._sample_gps(matched), matched

    def generate_into(self, database) -> None:
        """Fast path: stream the whole fleet into a TrajectoryDatabase."""
        for date in range(self.config.num_days):
            for taxi_id in range(self.config.num_taxis):
                segs, times, speeds = self._one_day_lists(taxi_id, date)
                database.add_arrays(
                    trajectory_id=make_trajectory_id(
                        taxi_id, date, self.config.num_taxis
                    ),
                    taxi_id=taxi_id,
                    date=date,
                    segments=segs,
                    times=times,
                    speeds=speeds,
                )
        database.finalize()

    # -- preparation ---------------------------------------------------------

    def _prepare_trips(self) -> None:
        """All-pairs shortest routes + centre-biased endpoint sampling."""
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import dijkstra

        n = len(self._segment_ids)
        rows, cols, weights = [], [], []
        for sid, succs in self._successors.items():
            i = self._index_of[sid]
            for succ in succs:
                rows.append(i)
                cols.append(self._index_of[succ])
                weights.append(self._length[succ] / self._free_flow[succ])
        graph = csr_matrix((weights, (rows, cols)), shape=(n, n))
        dist, predecessors = dijkstra(graph, return_predecessors=True)
        self._trip_dist = dist
        self._predecessors = predecessors.astype(np.int32)
        # Centre-biased endpoint distribution (mixture with uniform).
        center = self.network.bounds().center
        bounds = self.network.bounds()
        scale = max(bounds.width, bounds.height) / 5.0
        raw_weights = []
        for sid in self._segment_ids:
            d = self.network.segment(sid).midpoint.distance_to(center)
            biased = math.exp(-d / scale) ** math.log1p(self.config.center_bias)
            raw_weights.append(
                self.config.dest_uniform_mix
                + (1.0 - self.config.dest_uniform_mix) * biased
            )
        cumulative = []
        total = 0.0
        for w in raw_weights:
            total += w
            cumulative.append(total)
        self._endpoint_cdf = [c / total for c in cumulative]

    def _prepare_walk(self) -> None:
        center = self.network.bounds().center
        center_dist = {
            sid: self.network.segment(sid).midpoint.distance_to(center)
            for sid in self._segment_ids
        }
        bias = self.config.center_bias

        def turn_weight(from_id: int, to_id: int) -> float:
            weight = (
                self.config.primary_preference
                if self._level[to_id] == RoadLevel.PRIMARY
                else 1.0
            )
            if bias != 1.0:
                if center_dist[to_id] < center_dist[from_id]:
                    weight *= bias
                else:
                    weight /= bias
            return weight

        self._walk_weights: dict[int, list[float]] = {
            sid: [turn_weight(sid, succ) for succ in succs]
            for sid, succs in self._successors.items()
        }

    # -- internals ---------------------------------------------------------

    def _rng_for(self, taxi_id: int, date: int) -> random.Random:
        return random.Random(f"{self.config.seed}:{taxi_id}:{date}")

    def _taxi_style(self, taxi_id: int) -> float:
        """Persistent per-driver speed multiplier."""
        rng = random.Random(f"{self.config.seed}:style:{taxi_id}")
        return max(0.7, rng.gauss(1.0, self.config.taxi_speed_sigma))

    def _sample_endpoint(self, rng: random.Random) -> int:
        index = bisect.bisect_left(self._endpoint_cdf, rng.random())
        if index >= len(self._segment_ids):
            index = len(self._segment_ids) - 1
        return index  # dense index, not segment id

    def _route(self, src_index: int, dst_index: int) -> list[int] | None:
        """Segment-id route from src to dst via the predecessor matrix."""
        if not np.isfinite(self._trip_dist[src_index, dst_index]):
            return None
        path_indices = [dst_index]
        predecessors = self._predecessors
        node = dst_index
        while node != src_index:
            node = int(predecessors[src_index, node])
            if node < 0:
                return None
            path_indices.append(node)
        path_indices.reverse()
        ids = self._segment_ids
        return [ids[i] for i in path_indices]

    def _sample_speed(
        self, segment: int, time_now: float, style: float, rng: random.Random
    ) -> float:
        minute = int(time_now // 60.0)
        if minute > 1440:
            minute = 1440
        base = self._free_flow[segment] * self._factor_table[minute] * style
        if rng.random() < self.config.slow_prob:
            lo, hi = self.config.slow_range
            speed = base * rng.uniform(lo, hi)
        else:
            z = rng.gauss(0.0, self.profile.noise_sigma)
            if z > 1.0:
                z = 1.0
            elif z < -1.0:
                z = -1.0
            speed = base * math.exp(z)
        return speed if speed > 0.5 else 0.5

    def _one_day_lists(
        self, taxi_id: int, date: int
    ) -> tuple[list[int], list[float], list[float]]:
        if self.config.mode == "trips":
            return self._one_day_trips(taxi_id, date)
        return self._one_day_walk(taxi_id, date)

    def _one_day_trips(
        self, taxi_id: int, date: int
    ) -> tuple[list[int], list[float], list[float]]:
        """One taxi-day of shortest-path trips with idle gaps."""
        cfg = self.config
        rng = self._rng_for(taxi_id, date)
        style = self._taxi_style(taxi_id)
        time_now = cfg.day_start_s
        day_end = cfg.day_end_s
        segs: list[int] = []
        times: list[float] = []
        speeds: list[float] = []
        lengths = self._length
        sample_speed = self._sample_speed
        position = self._sample_endpoint(rng)
        while time_now < day_end:
            destination = self._sample_endpoint(rng)
            if destination == position:
                continue
            route = self._route(position, destination)
            if route is None or len(route) < 2:
                position = self._sample_endpoint(rng)
                continue
            for segment in route:
                if time_now >= day_end:
                    break
                speed = sample_speed(segment, time_now, style, rng)
                segs.append(segment)
                times.append(time_now)
                speeds.append(speed)
                time_now += lengths[segment] / speed
            position = destination
            time_now += rng.expovariate(1.0 / cfg.idle_mean_s)
        return segs, times, speeds

    def _one_day_walk(
        self, taxi_id: int, date: int
    ) -> tuple[list[int], list[float], list[float]]:
        """One taxi-day as a weighted random walk (test/ablation mode)."""
        cfg = self.config
        rng = self._rng_for(taxi_id, date)
        style = self._taxi_style(taxi_id)
        segment = rng.choice(self._segment_ids)
        time_now = cfg.day_start_s
        day_end = cfg.day_end_s
        segs: list[int] = []
        times: list[float] = []
        speeds: list[float] = []
        lengths = self._length
        successors_of = self._successors
        weights_of = self._walk_weights
        sample_speed = self._sample_speed
        choices = rng.choices
        while time_now < day_end:
            speed = sample_speed(segment, time_now, style, rng)
            segs.append(segment)
            times.append(time_now)
            speeds.append(speed)
            time_now += lengths[segment] / speed
            successors = successors_of[segment]
            if not successors:
                segment = rng.choice(self._segment_ids)
            elif len(successors) == 1:
                segment = successors[0]
            else:
                segment = choices(successors, weights=weights_of[segment])[0]
        return segs, times, speeds

    def _one_day(self, taxi_id: int, date: int) -> MatchedTrajectory:
        segs, times, speeds = self._one_day_lists(taxi_id, date)
        return MatchedTrajectory(
            trajectory_id=make_trajectory_id(
                taxi_id, date, self.config.num_taxis
            ),
            taxi_id=taxi_id,
            date=date,
            visits=[
                SegmentVisit(s, t, v) for s, t, v in zip(segs, times, speeds)
            ],
        )

    def _sample_gps(self, matched: MatchedTrajectory) -> RawTrajectory:
        """Raw GPS points every ``gps_interval_s`` along the matched route."""
        cfg = self.config
        rng = random.Random(f"{cfg.seed}:gps:{matched.trajectory_id}")
        points: list[GPSPoint] = []
        next_sample = matched.visits[0].time_s if matched.visits else 0.0
        for visit in matched.visits:
            segment = self.network.segment(visit.segment_id)
            duration = segment.length / visit.speed_mps
            if next_sample < visit.time_s:
                # Idle gap (between trips): resume sampling at entry.
                next_sample = visit.time_s
            while next_sample < visit.time_s + duration:
                progress = (next_sample - visit.time_s) * visit.speed_mps
                pos = interpolate_along(segment.shape, progress)
                noisy = pos.translated(rng.gauss(0, 12.0), rng.gauss(0, 12.0))
                points.append(
                    GPSPoint(
                        trajectory_id=matched.trajectory_id,
                        position=noisy,
                        time_s=next_sample,
                        speed_mps=visit.speed_mps,
                    )
                )
                next_sample += cfg.gps_interval_s
        return RawTrajectory(
            trajectory_id=matched.trajectory_id,
            taxi_id=matched.taxi_id,
            date=matched.date,
            points=points,
        )
