"""Trajectory data models (§2.1).

A trajectory is a sequence of spatio-temporal points, each carrying a
trajectory ID, spatial information, a timestamp and properties such as
speed.  Following the paper, *one moving object has one trajectory per day*
and "the same taxi at different dates [counts] as different trajectories,
e.g., with different trajectory IDs" (§4.1) — :func:`make_trajectory_id`
encodes exactly that.

Times within a day are seconds since local midnight (0 .. 86400); dates are
dense day indices ``0 .. m-1`` over the dataset span.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spatial.geometry import Point

SECONDS_PER_DAY = 86_400


def make_trajectory_id(taxi_id: int, date: int, num_taxis: int) -> int:
    """Unique trajectory ID for one taxi-day."""
    if not 0 <= taxi_id < num_taxis:
        raise ValueError(f"taxi_id {taxi_id} out of range [0, {num_taxis})")
    if date < 0:
        raise ValueError(f"date must be >= 0, got {date}")
    return date * num_taxis + taxi_id


def split_trajectory_id(trajectory_id: int, num_taxis: int) -> tuple[int, int]:
    """Inverse of :func:`make_trajectory_id` -> ``(taxi_id, date)``."""
    return trajectory_id % num_taxis, trajectory_id // num_taxis


def day_time(hours: int, minutes: int = 0, seconds: int = 0) -> int:
    """Seconds since midnight for ``hh:mm:ss``."""
    if not (0 <= hours < 24 and 0 <= minutes < 60 and 0 <= seconds < 60):
        raise ValueError(f"invalid time {hours:02d}:{minutes:02d}:{seconds:02d}")
    return hours * 3600 + minutes * 60 + seconds


@dataclass(frozen=True, slots=True)
class GPSPoint:
    """One raw GPS record: the five core attributes of §4.1.

    Attributes:
        trajectory_id: owning trajectory (taxi-day).
        position: location in the local metric plane.
        time_s: seconds since midnight of the trajectory's date.
        speed_mps: instantaneous speed in metres/second.
    """

    trajectory_id: int
    position: Point
    time_s: float
    speed_mps: float


@dataclass
class RawTrajectory:
    """A day of raw GPS records for one taxi."""

    trajectory_id: int
    taxi_id: int
    date: int
    points: list[GPSPoint]

    def __len__(self) -> int:
        return len(self.points)

    def check_monotone(self) -> None:
        for a, b in zip(self.points, self.points[1:]):
            if b.time_s < a.time_s:
                raise ValueError(
                    f"trajectory {self.trajectory_id} timestamps go backwards"
                )


@dataclass(frozen=True, slots=True)
class SegmentVisit:
    """A map-matched traversal event: the trajectory entered a segment.

    Attributes:
        segment_id: re-segmented road segment traversed.
        time_s: entry time, seconds since midnight.
        speed_mps: observed travel speed on the segment.
    """

    segment_id: int
    time_s: float
    speed_mps: float


@dataclass
class MatchedTrajectory:
    """A cleaned, map-matched trajectory: ordered segment visits for one day."""

    trajectory_id: int
    taxi_id: int
    date: int
    visits: list[SegmentVisit]

    def __len__(self) -> int:
        return len(self.visits)

    def segments(self) -> list[int]:
        return [visit.segment_id for visit in self.visits]

    def check_monotone(self) -> None:
        for a, b in zip(self.visits, self.visits[1:]):
            if b.time_s < a.time_s:
                raise ValueError(
                    f"trajectory {self.trajectory_id} visit times go backwards"
                )
