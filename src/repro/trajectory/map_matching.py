"""Map matching: raw GPS points -> road-segment routes (§3.1).

The thesis delegates this step to the interactive-voting based matcher of
Yuan et al. [29].  We implement a matcher with the same structure as that
family of algorithms:

1. *candidate generation* — for each GPS point, the nearby segments within a
   search radius (found through a grid index);
2. *scoring* — an emission score (Gaussian in the GPS-to-segment distance)
   plus a transition score rewarding candidate pairs that are topologically
   adjacent and whose along-road displacement matches the GPS displacement;
3. *global resolution* — Viterbi dynamic programming over the candidate
   lattice (the "voting" step collapses to the optimal path here).

The output is the cleaned matched trajectory: segment visits with entry
times and observed speeds, exactly what index construction consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.network.model import RoadNetwork
from repro.spatial.geometry import BBox, Point
from repro.spatial.grid import GridIndex
from repro.trajectory.model import (
    MatchedTrajectory,
    RawTrajectory,
    SegmentVisit,
)


@dataclass
class MatcherConfig:
    """Tuning knobs for :class:`MapMatcher`.

    Attributes:
        search_radius_m: candidate segments must lie within this distance of
            the GPS point.
        gps_sigma_m: expected GPS noise (emission model scale).
        beta_m: transition tolerance — how much along-road displacement may
            deviate from GPS displacement before being penalised.
        max_candidates: cap on candidates per point (nearest kept).
    """

    search_radius_m: float = 60.0
    gps_sigma_m: float = 15.0
    beta_m: float = 80.0
    max_candidates: int = 8


class MapMatcher:
    """Match raw GPS trajectories onto a road network."""

    def __init__(self, network: RoadNetwork, config: MatcherConfig | None = None):
        self.network = network
        self.config = config if config is not None else MatcherConfig()
        bounds = network.bounds()
        # Cell size ~ candidate radius keeps candidate lookups near O(1).
        cell = max(50.0, self.config.search_radius_m)
        self._grid = GridIndex(bounds, cell_size=cell)
        for segment in network.segments():
            self._grid.insert(segment.bbox, segment.segment_id)
        self._successor_sets = {
            sid: set(network.successors(sid)) for sid in network.segment_ids()
        }

    # -- candidate generation --------------------------------------------

    def candidates(self, point: Point) -> list[tuple[int, float]]:
        """Nearby ``(segment_id, distance)`` pairs, nearest first."""
        radius = self.config.search_radius_m
        window = BBox.around(point, radius)
        found: list[tuple[int, float]] = []
        for segment_id in self._grid.search(window):
            distance = self.network.segment(segment_id).distance_to_point(point)
            if distance <= radius:
                found.append((segment_id, distance))
        found.sort(key=lambda pair: pair[1])
        return found[: self.config.max_candidates]

    # -- scoring ------------------------------------------------------------

    def _emission(self, distance: float) -> float:
        z = distance / self.config.gps_sigma_m
        return -0.5 * z * z

    def _transition(
        self, prev_segment: int, next_segment: int, gps_displacement: float
    ) -> float:
        if prev_segment == next_segment:
            return 0.0
        road_gap = self.network.euclidean_distance(prev_segment, next_segment)
        penalty = -abs(road_gap - gps_displacement) / self.config.beta_m
        if next_segment in self._successor_sets[prev_segment]:
            return penalty  # adjacent: no topology penalty
        twin = self.network.segment(prev_segment).twin_id
        if twin is not None and next_segment == twin:
            return penalty - 1.0  # U-turn: discouraged but possible
        return penalty - 3.0  # teleport: strongly discouraged

    # -- matching -------------------------------------------------------------

    def match(self, raw: RawTrajectory) -> MatchedTrajectory:
        """Match one raw trajectory; gaps with no candidates are skipped."""
        lattice: list[tuple[float, list[tuple[int, float]]]] = []
        positions: list[Point] = []
        for gps in raw.points:
            cands = self.candidates(gps.position)
            if cands:
                lattice.append((gps.time_s, cands))
                positions.append(gps.position)
        if not lattice:
            return MatchedTrajectory(
                trajectory_id=raw.trajectory_id,
                taxi_id=raw.taxi_id,
                date=raw.date,
                visits=[],
            )
        # Viterbi over the candidate lattice.
        _, first_cands = lattice[0]
        scores = [self._emission(d) for _, d in first_cands]
        backptr: list[list[int]] = [[-1] * len(first_cands)]
        for step in range(1, len(lattice)):
            _, cands = lattice[step]
            displacement = positions[step].distance_to(positions[step - 1])
            prev_cands = lattice[step - 1][1]
            new_scores: list[float] = []
            pointers: list[int] = []
            for segment_id, distance in cands:
                best_score = -math.inf
                best_prev = 0
                emit = self._emission(distance)
                for prev_index, (prev_segment, _) in enumerate(prev_cands):
                    score = (
                        scores[prev_index]
                        + self._transition(prev_segment, segment_id, displacement)
                        + emit
                    )
                    if score > best_score:
                        best_score = score
                        best_prev = prev_index
                new_scores.append(best_score)
                pointers.append(best_prev)
            scores = new_scores
            backptr.append(pointers)
        # Backtrack.
        best_index = max(range(len(scores)), key=scores.__getitem__)
        chosen: list[int] = []
        index = best_index
        for step in range(len(lattice) - 1, -1, -1):
            chosen.append(lattice[step][1][index][0])
            index = backptr[step][index]
        chosen.reverse()
        return self._to_visits(raw, lattice, chosen)

    def _to_visits(
        self,
        raw: RawTrajectory,
        lattice: list[tuple[float, list[tuple[int, float]]]],
        chosen: list[int],
    ) -> MatchedTrajectory:
        """Collapse per-point assignments into segment entry events."""
        visits: list[SegmentVisit] = []
        previous_segment: int | None = None
        for (time_s, _), segment_id in zip(lattice, chosen):
            if segment_id != previous_segment:
                speed = self._speed_at(raw, time_s)
                visits.append(SegmentVisit(segment_id, time_s, speed))
                previous_segment = segment_id
        return MatchedTrajectory(
            trajectory_id=raw.trajectory_id,
            taxi_id=raw.taxi_id,
            date=raw.date,
            visits=visits,
        )

    @staticmethod
    def _speed_at(raw: RawTrajectory, time_s: float) -> float:
        for gps in raw.points:
            if gps.time_s >= time_s:
                return max(0.5, gps.speed_mps)
        return max(0.5, raw.points[-1].speed_mps) if raw.points else 0.5
