"""Ablation: start-segment lookup — R-tree vs grid index vs linear scan.

The ST-Index uses an R-tree to resolve a query location to its road segment
(§3.2.1); SETI-style systems use grids (§5.1).  This ablation compares the
three lookup strategies on the benchmark network.
"""

import random

import pytest

from repro.eval.tables import format_table
from repro.spatial.geometry import BBox, Point
from repro.spatial.grid import GridIndex
from repro.spatial.rtree import RTree


@pytest.fixture(scope="module")
def lookups(bench_dataset):
    network = bench_dataset.network
    rtree = RTree.bulk_load(
        [(seg.bbox, seg.segment_id) for seg in network.segments()]
    )
    grid = GridIndex(network.bounds(), cell_size=500.0)
    for seg in network.segments():
        grid.insert(seg.bbox, seg.segment_id)

    def exact(point: Point, sid: int) -> float:
        return network.segment(sid).distance_to_point(point)

    return network, rtree, grid, exact


@pytest.fixture(scope="module")
def probes(bench_dataset):
    rng = random.Random(11)
    bounds = bench_dataset.network.bounds()
    return [
        Point(
            rng.uniform(bounds.min_x, bounds.max_x),
            rng.uniform(bounds.min_y, bounds.max_y),
        )
        for _ in range(50)
    ]


def test_all_strategies_agree(lookups, probes):
    network, rtree, grid, exact = lookups
    for probe in probes:
        linear = network.nearest_segment_linear(probe)
        via_rtree = rtree.nearest(probe, k=1, distance=exact)[0]
        via_grid = grid.nearest(probe, k=1, distance=exact)[0]
        d_linear = exact(probe, linear)
        assert exact(probe, via_rtree) == pytest.approx(d_linear)
        assert exact(probe, via_grid) == pytest.approx(d_linear)


def test_bench_rtree_lookup(lookups, probes, benchmark):
    _, rtree, _, exact = lookups
    result = benchmark(
        lambda: [rtree.nearest(p, k=1, distance=exact)[0] for p in probes]
    )
    assert len(result) == len(probes)


def test_bench_grid_lookup(lookups, probes, benchmark):
    _, _, grid, exact = lookups
    result = benchmark(
        lambda: [grid.nearest(p, k=1, distance=exact)[0] for p in probes]
    )
    assert len(result) == len(probes)


def test_bench_linear_lookup(lookups, probes, benchmark, emit):
    network, _, _, _ = lookups
    result = benchmark(
        lambda: [network.nearest_segment_linear(p) for p in probes]
    )
    assert len(result) == len(probes)
    emit(
        "ablation_spatial",
        format_table(
            "Ablation — start-segment lookup strategies",
            [("strategies", "rtree / grid / linear (see benchmark table)"),
             ("probes", str(len(probes)))],
        ),
    )
