"""Table 4.1: dataset description.

Paper: Shenzhen, 400 sq miles, 3M people, 30 days (Nov 2014), 21,385 taxis,
407,040,083 GPS records.  Ours: the ShenzhenLike synthetic city at
laptop scale — same structure, smaller numbers.  The benchmark measures the
dataset-statistics scan.
"""

from repro.eval.tables import format_table


def test_tab41_dataset_description(bench_dataset, benchmark, emit):
    stats = benchmark(bench_dataset.database.stats)
    rows = bench_dataset.describe()
    emit("tab41_dataset", format_table("Table 4.1 — Dataset Description", rows))
    assert stats.num_trajectories == (
        bench_dataset.config.num_taxis * bench_dataset.config.num_days
    )
    assert stats.num_visits > 1_000_000
