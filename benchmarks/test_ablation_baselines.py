"""Ablation: baseline strength — ES (paper) vs support-pruned ES vs SQMB+TBS.

The paper's ES verifies every road-connected segment.  A smarter baseline
(not in the paper) prunes branches with zero historical support.  This
ablation quantifies how much of SQMB+TBS's advantage survives against the
stronger baseline — i.e. how much is due to the Con-Index bounds rather
than to the weak baseline.
"""

from client_protocol import s_query
from repro.core.query import SQuery
from repro.eval import config
from repro.eval.tables import format_table


def _query(minutes: int) -> SQuery:
    return SQuery(
        config.CENTER_LOCATION,
        config.DEFAULT_SETTINGS.start_time_s,
        minutes * 60,
        0.2,
    )


def test_ablation_baseline_strength(bench_client, benchmark, emit):
    rows = []
    for minutes in (10, 20, 35):
        ours = s_query(bench_client, _query(minutes), algorithm="sqmb_tbs")
        pruned = s_query(bench_client, _query(minutes), algorithm="es_pruned")
        full = s_query(bench_client, _query(minutes), algorithm="es")
        rows.append(
            (
                f"L={minutes}min",
                f"sqmb={ours.cost.total_cost_ms:8.0f}ms  "
                f"es_pruned={pruned.cost.total_cost_ms:8.0f}ms  "
                f"es={full.cost.total_cost_ms:8.0f}ms",
            )
        )
        assert ours.cost.total_cost_ms < full.cost.total_cost_ms
        assert pruned.cost.total_cost_ms <= full.cost.total_cost_ms
    emit(
        "ablation_baselines",
        format_table("Ablation — baseline strength (running time)", rows),
    )
    result = benchmark.pedantic(
        lambda: s_query(bench_client, _query(10), algorithm="es_pruned"),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert result.segments
