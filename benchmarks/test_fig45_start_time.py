"""Fig 4.5: effect of the start time T over the day.

(a) running time vs T — dips around the 07:45 and 18:00 rush hours
    (slower speeds -> smaller bounding regions -> fewer candidates);
(b) reachable road length vs T — same dips.
"""

import pytest

from client_protocol import s_query
from repro.core.query import SQuery
from repro.eval import config
from repro.eval.runner import run_start_time_sweep
from repro.eval.tables import format_series
from repro.trajectory.model import day_time


@pytest.fixture(scope="module")
def sweep(bench_engine, emit):
    points = run_start_time_sweep(
        bench_engine,
        config.CENTER_LOCATION,
        config.START_TIMES_S,
        durations_s=(300, 600),
        prob=0.2,
        delta_t_s=config.DEFAULT_SETTINGS.delta_t_s,
    )
    for point in points:
        point.x = point.x / 3600.0  # hours for readability
    emit(
        "fig45a_runtime",
        format_series(
            "Fig 4.5(a) — running time (ms) vs start time (h)",
            points, metric="running_time_ms", x_name="T (h)",
        ),
    )
    emit(
        "fig45b_length",
        format_series(
            "Fig 4.5(b) — reachable road length (km) vs start time (h)",
            points, metric="road_length_km", x_name="T (h)",
            value_format="{:.2f}",
        ),
    )
    return points


def test_fig45_rush_hour_dips(sweep):
    curve = {
        p.x: p.road_length_km for p in sweep
        if p.algorithm == "sqmb_tbs" and p.label == "L=10min"
    }
    rush = min(curve.get(8.0, 1e9), curve.get(18.0, 1e9))
    offpeak = max(curve.get(12.0, 0.0), curve.get(14.0, 0.0), curve.get(2.0, 0.0))
    assert rush < offpeak, "rush-hour region must be smaller than off-peak"


def test_fig45_runtime_tracks_region(sweep):
    times = {
        p.x: p.running_time_ms for p in sweep
        if p.algorithm == "sqmb_tbs" and p.label == "L=10min"
    }
    lengths = {
        p.x: p.road_length_km for p in sweep
        if p.algorithm == "sqmb_tbs" and p.label == "L=10min"
    }
    # Correlation sign check: the largest-region hour should not be the
    # cheapest hour, and the smallest-region hour not the dearest.
    biggest = max(lengths, key=lengths.get)
    smallest = min(lengths, key=lengths.get)
    assert times[biggest] >= times[smallest]


def test_bench_rush_hour_query(bench_client, benchmark, sweep):
    query = SQuery(config.CENTER_LOCATION, day_time(18), 600, 0.2)
    result = benchmark(lambda: s_query(bench_client, query))
    assert isinstance(result.segments, set)
