"""Shared benchmark fixtures: engines over the benchmark datasets.

Datasets and indexes are built once per session; each figure module then
runs its parameter sweep, prints the paper-style series, writes it to
``benchmarks/results/`` and feeds one representative query per curve to
pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.engine import ReachabilityEngine
from repro.core.query import SQuery
from repro.datasets.shenzhen_like import default_dataset
from repro.eval.config import DEFAULT_SETTINGS, SMALL_SETTINGS

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_configure(config):
    # The figure benchmarks deliberately measure the classic engine
    # facade (the paper's cold one-call-per-query protocol); its
    # deprecation in favour of the client API is intentional noise here,
    # and thousands of per-call warnings would drown real ones.
    config.addinivalue_line(
        "filterwarnings",
        "ignore:.*deprecated. build a repro.api.Request.*:DeprecationWarning",
    )


@pytest.fixture(scope="session")
def bench_dataset():
    """The full-size benchmark dataset (ShenzhenLike defaults)."""
    return default_dataset(DEFAULT_SETTINGS.dataset)


@pytest.fixture(scope="session")
def bench_engine(bench_dataset):
    """Engine over the benchmark dataset with the 5-minute index built and
    the downtown Con-Index entries warmed (index construction is offline
    work in the paper's model)."""
    engine = ReachabilityEngine(bench_dataset.network, bench_dataset.database)
    engine.st_index(DEFAULT_SETTINGS.delta_t_s)
    # Warm the downtown con-index entries for the default start time by
    # running the longest default query once.
    engine.s_query(
        SQuery(
            DEFAULT_SETTINGS.location,
            DEFAULT_SETTINGS.start_time_s,
            35 * 60,
            DEFAULT_SETTINGS.prob,
        ),
        delta_t_s=DEFAULT_SETTINGS.delta_t_s,
    )
    return engine


@pytest.fixture(scope="session")
def small_dataset():
    """Reduced dataset for the expensive Δt-granularity sweeps."""
    return default_dataset(SMALL_SETTINGS.dataset)


@pytest.fixture(scope="session")
def small_engine(small_dataset):
    engine = ReachabilityEngine(small_dataset.network, small_dataset.database)
    engine.st_index(SMALL_SETTINGS.delta_t_s)
    return engine


@pytest.fixture(scope="session")
def emit():
    """Print a named results block and persist it under benchmarks/results."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
