"""Shared benchmark fixtures: engines and clients over the benchmark
datasets.

Datasets and indexes are built once per session; each figure module then
runs its parameter sweep, prints the paper-style series, writes it to
``benchmarks/results/`` and feeds one representative query per curve to
pytest-benchmark.  All query execution goes through the
:class:`~repro.api.client.ReachabilityClient` API (see
``client_protocol.py`` for the cold per-query helpers); the legacy
engine shims are linter-gated out of this tree.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from client_protocol import s_query
from repro.api.client import ReachabilityClient
from repro.core.engine import ReachabilityEngine
from repro.core.query import SQuery
from repro.datasets.shenzhen_like import default_dataset
from repro.eval.config import DEFAULT_SETTINGS, SMALL_SETTINGS

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_dataset():
    """The full-size benchmark dataset (ShenzhenLike defaults)."""
    return default_dataset(DEFAULT_SETTINGS.dataset)


@pytest.fixture(scope="session")
def bench_engine(bench_dataset):
    """Engine over the benchmark dataset with the 5-minute index built and
    the downtown Con-Index entries warmed (index construction is offline
    work in the paper's model)."""
    engine = ReachabilityEngine(bench_dataset.network, bench_dataset.database)
    engine.st_index(DEFAULT_SETTINGS.delta_t_s)
    # Warm the downtown con-index entries for the default start time by
    # running the longest default query once.
    with ReachabilityClient(engine) as warmer:
        s_query(
            warmer,
            SQuery(
                DEFAULT_SETTINGS.location,
                DEFAULT_SETTINGS.start_time_s,
                35 * 60,
                DEFAULT_SETTINGS.prob,
            ),
            delta_t_s=DEFAULT_SETTINGS.delta_t_s,
        )
    return engine


@pytest.fixture(scope="session")
def bench_client(bench_engine):
    """Session client over the benchmark engine (cold-protocol sends)."""
    with ReachabilityClient(bench_engine) as client:
        yield client


@pytest.fixture(scope="session")
def small_dataset():
    """Reduced dataset for the expensive Δt-granularity sweeps."""
    return default_dataset(SMALL_SETTINGS.dataset)


@pytest.fixture(scope="session")
def small_engine(small_dataset):
    engine = ReachabilityEngine(small_dataset.network, small_dataset.database)
    engine.st_index(SMALL_SETTINGS.delta_t_s)
    return engine


@pytest.fixture(scope="session")
def small_client(small_engine):
    with ReachabilityClient(small_engine) as client:
        yield client


@pytest.fixture(scope="session")
def emit():
    """Print a named results block and persist it under benchmarks/results."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
